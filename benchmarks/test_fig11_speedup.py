"""Figure 11: loop (11a) and whole-program (11b) speedups of the
expanded code at 1/2/4/8 threads."""

from repro.bench import get
from repro.bench.report import fig11_speedup, harmonic_mean
from repro.frontend import parse_and_analyze
from repro.runtime import run_parallel
from repro.transform import expand_for_threads


def test_fig11_series(results, benchmark):
    text = benchmark.pedantic(lambda: fig11_speedup(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        # monotone-ish rise from 1 to 4 threads for every benchmark
        assert r.expansion[2].loop_speedup > 1.2, name
        assert r.expansion[4].loop_speedup > r.expansion[2].loop_speedup, name
        # single-core runs show only privatization+runtime overhead
        # (paper Figure 11a also dips below 1 at one core)
        assert r.expansion[1].loop_speedup > 0.65, name


def test_fig11_doall_kernels_scale(results):
    for name in ("md5", "mpeg2-encoder", "h263-encoder"):
        assert results[name].expansion[8].loop_speedup > 4.0, name


def test_fig11_doacross_and_membound_plateau(results):
    """bzip2/dijkstra plateau (sync, cache); lbm hits the bandwidth
    wall past 4 threads — the paper's observations."""
    for name in ("256.bzip2", "dijkstra", "470.lbm"):
        r = results[name]
        gain_2_to_4 = (r.expansion[4].loop_speedup
                       / r.expansion[2].loop_speedup)
        gain_4_to_8 = (r.expansion[8].loop_speedup
                       / r.expansion[4].loop_speedup)
        assert gain_4_to_8 < gain_2_to_4, name


def test_fig11_total_harmonic_means(results):
    hm4 = harmonic_mean(
        [r.expansion[4].total_speedup for r in results.values()]
    )
    hm8 = harmonic_mean(
        [r.expansion[8].total_speedup for r in results.values()]
    )
    # paper: 1.93 @4 cores and 2.24 @8 cores
    assert 1.5 < hm4 < 4.0, hm4
    assert hm8 > hm4, (hm4, hm8)


def test_bench_parallel_run_8_threads(benchmark):
    """Timing: an 8-thread expanded run of md5."""
    spec = get("md5")
    program, sema = parse_and_analyze(spec.source)
    tresult = expand_for_threads(program, sema, spec.loop_labels)

    def run_once():
        return run_parallel(tresult, 8)

    outcome = benchmark.pedantic(run_once, rounds=2, iterations=1)
    assert not outcome.races
