"""Prints the complete paper-vs-ours report (every table and figure) at
the end of a full bench run; the same text seeds EXPERIMENTS.md."""

from repro.bench.report import full_report


def test_full_report(results, benchmark):
    text = benchmark.pedantic(lambda: full_report(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    # one row per benchmark in each section
    assert text.count("dijkstra") >= 9
    assert "harmonic mean" in text
