"""Figure 13: loop speedup when privatization is done at run time
(SpiceC-style) instead of by expansion."""

from repro.bench.report import fig13_rtpriv_speedup


def test_fig13_mostly_no_speedup(results, benchmark):
    text = benchmark.pedantic(lambda: fig13_rtpriv_speedup(results),
                              rounds=1, iterations=1)
    print("\n" + text)
    # paper: "for most of the benchmarks, there is nearly no speedup
    # due to the large runtime overhead"
    slow = [
        name for name, r in results.items()
        if r.rtpriv[8].loop_speedup < 2.5
    ]
    assert len(slow) >= 5, slow


def test_fig13_expansion_beats_runtime_priv(results):
    for name, r in results.items():
        if name == "md5":
            continue  # few private accesses: monitoring is cheap there
        assert (r.expansion[8].loop_speedup
                > r.rtpriv[8].loop_speedup), name


def test_fig13_sync_only_is_worst(results):
    """Without any privatization the loops do not speed up at all
    (the paper's §4.3 observation)."""
    for name, r in results.items():
        assert r.sync_only_speedup < 1.3, (name, r.sync_only_speedup)
