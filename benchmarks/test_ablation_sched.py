"""Ablation: DOACROSS dynamic-scheduling chunk size.

The paper fixes chunk size 1 for DOACROSS loops.  Larger chunks
amortize the dequeue cost but delay the pipeline: a whole chunk's
serialized sections stack up on one thread before the next thread can
enter its own.
"""

import pytest

from repro.bench import get
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import expand_for_threads

CHUNKS = (1, 2, 4)


@pytest.fixture(scope="module")
def bzip2_setup():
    spec = get("256.bzip2")
    program, sema = parse_and_analyze(spec.source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, spec.loop_labels)
    return spec, base, result


def test_chunk_sweep(bzip2_setup, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, base, result = bzip2_setup
    print("\nDOACROSS chunk-size sweep (256.bzip2, 8 threads):")
    makespans = {}
    for chunk in CHUNKS:
        outcome = run_parallel(result, 8, chunk=chunk)
        assert outcome.output == base.output
        ex = outcome.loop(spec.loop_labels[0])
        makespans[chunk] = ex.makespan + ex.runtime_cycles
        bd = ex.breakdown()
        stalled = (bd["wait"] + bd["sync"]) / (sum(bd.values()) or 1)
        print(f"  chunk={chunk}: loop cycles {makespans[chunk]:,.0f} "
              f"(stalled {stalled:.0%})")
    # chunk=1 (the paper's choice) pipelines best on sync-bound loops
    assert makespans[1] <= makespans[4] * 1.1


def test_chunking_preserves_semantics(bzip2_setup):
    spec, base, result = bzip2_setup
    for chunk in CHUNKS:
        for n in (2, 5):
            outcome = run_parallel(result, n, chunk=chunk)
            assert outcome.output == base.output
