"""Figure 14: memory usage of both privatization methods as a multiple
of the sequential program."""

from repro.bench.report import fig14_memory


def test_fig14_bounds(results, benchmark):
    text = benchmark.pedantic(lambda: fig14_memory(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        for n in (4, 8):
            m = r.expansion[n].memory_multiple
            # expanded structures grow at most xN; the rest is shared
            assert 0.95 <= m <= n + 0.6, (name, n, m)


def test_fig14_grows_with_threads(results):
    for name, r in results.items():
        assert (r.expansion[8].memory_multiple
                >= r.expansion[4].memory_multiple - 1e-6), name


def test_fig14_lbm_is_lean(results):
    """lbm privatizes only tiny per-cell scratch: memory stays ~1x
    (its big grids are shared) — visible in the paper's Figure 14."""
    assert results["470.lbm"].expansion[8].memory_multiple < 1.2


def test_fig14_rtpriv_uses_at_least_necessary_memory(results):
    """The paper regards runtime privatization's footprint as the
    necessary minimum; expansion stays in the same ballpark."""
    near = [
        name for name, r in results.items()
        if r.expansion[8].memory_multiple
        <= r.rtpriv[8].memory_multiple + 1.0
    ]
    assert len(near) >= 6, near
