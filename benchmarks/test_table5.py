"""Table 5: number of dynamic data structures privatized per benchmark."""

from repro.bench import get
from repro.bench.report import table5
from repro.frontend import parse_and_analyze
from repro.transform import expand_for_threads


def test_table5_privatized_counts(results, benchmark):
    text = benchmark.pedantic(lambda: table5(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        assert r.num_privatized > 0, f"{name}: nothing privatized"
        # our structure accounting tracks the paper's within +/-2
        # (the paper does not define its counting rule precisely)
        assert abs(r.num_privatized - r.spec.paper.privatized) <= 2, (
            f"{name}: {r.num_privatized} vs paper "
            f"{r.spec.paper.privatized}"
        )


def test_exact_matches(results):
    """The counts match the paper exactly on every benchmark."""
    mismatched = {
        name: (r.num_privatized, r.spec.paper.privatized)
        for name, r in results.items()
        if r.num_privatized != r.spec.paper.privatized
    }
    assert not mismatched, mismatched


def test_bench_expansion_pipeline(benchmark):
    """Timing: the full expansion pipeline on the dijkstra kernel."""
    spec = get("dijkstra")
    program, sema = parse_and_analyze(spec.source)

    def run_pipeline():
        return expand_for_threads(program, sema, spec.loop_labels)

    result = benchmark.pedantic(run_pipeline, rounds=2, iterations=1)
    assert result.num_privatized == 2
