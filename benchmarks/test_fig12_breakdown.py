"""Figure 12: where the cycles go in 8-thread runs (work vs sync vs
wait vs runtime library)."""

from repro.bench.report import fig12_breakdown


def test_fig12_shape(results, benchmark):
    text = benchmark.pedantic(lambda: fig12_breakdown(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        bd = r.expansion[8].breakdown
        assert bd["work"] > 0, name
        for key in ("sync", "wait", "runtime"):
            assert bd[key] >= 0, (name, key)


def test_fig12_doacross_wait_dominates(results):
    """Paper: for 256.bzip2 (DOACROSS) inter-thread synchronization
    takes the majority of running time at 8 cores."""
    bd = results["256.bzip2"].expansion[8].breakdown
    total = sum(bd.values())
    stalled = (bd["wait"] + bd["sync"]) / total
    assert stalled > 0.4, stalled


def test_fig12_doall_mostly_works(results):
    bd = results["md5"].expansion[8].breakdown
    total = sum(bd.values())
    assert bd["work"] / total > 0.75, bd
