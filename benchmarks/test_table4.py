"""Table 4: benchmark characteristics (suite, LOC, function, nesting
level, parallelism kind, fraction of time in the candidate loop)."""

from repro.bench import all_benchmarks
from repro.bench.report import table4
from repro.frontend import parse_and_analyze


def test_table4_characteristics(results, benchmark):
    text = benchmark.pedantic(lambda: table4(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        spec = r.spec
        assert spec.parallelism in ("DOALL", "DOACROSS")
        assert 1 <= spec.level <= 3
        # the candidate loop dominates runtime, as in the paper; the
        # exact fraction tracks the paper's within a loose band
        assert r.pct_time > 0.5, f"{name}: loop only {r.pct_time:.0%}"
        assert abs(100 * r.pct_time - spec.paper.pct_time) < 35


def test_parallelism_kind_matches_pragma(results):
    for name, r in results.items():
        from repro.frontend import ast
        program, _ = parse_and_analyze(r.spec.source)
        for label in r.spec.loop_labels:
            loop = ast.find_loop(program, label)
            joined = " ".join(loop.pragmas).lower()
            assert r.spec.parallelism.lower() in joined


def test_bench_frontend_throughput(benchmark):
    """Timing: parse + analyze every benchmark kernel."""
    sources = [spec.source for spec in all_benchmarks()]

    def parse_all():
        for source in sources:
            parse_and_analyze(source)

    benchmark.pedantic(parse_all, rounds=3, iterations=1)
