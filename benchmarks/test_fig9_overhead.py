"""Figure 9: sequential overhead of expansion without (9a) and with
(9b) the section-3.4 optimizations."""

from repro.bench import get
from repro.bench.report import fig9_overhead, harmonic_mean
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.transform import expand_for_threads


def test_fig9_shape(results, benchmark):
    text = benchmark.pedantic(lambda: fig9_overhead(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        assert r.overhead_opt <= r.overhead_unopt + 1e-9, name
        # optimized code never doubles the runtime
        assert r.overhead_opt < 1.6, (name, r.overhead_opt)


def test_fig9_means(results):
    opt = harmonic_mean([r.overhead_opt for r in results.values()])
    unopt = harmonic_mean([r.overhead_unopt for r in results.values()])
    # paper: <5% optimized, ~1.8x un-optimized (harmonic means); our
    # interpreter-based costs land in the same bands
    assert opt < 1.15, opt
    assert unopt > 1.4, unopt


def test_optimizations_matter_most_where_spans_are_dynamic(results):
    """hmmer (two ambiguous malloc sites) and bzip2 (promoted recast
    pointers) gain the most from the optimizations."""
    for name in ("456.hmmer", "256.bzip2"):
        r = results[name]
        assert r.overhead_unopt - r.overhead_opt > 0.5, name


def test_bench_transformed_sequential_run(benchmark):
    """Timing: one sequential run of the optimized transformed bzip2."""
    spec = get("256.bzip2")
    program, sema = parse_and_analyze(spec.source)
    tresult = expand_for_threads(program, sema, spec.loop_labels)

    def run_once():
        machine = Machine(tresult.program, tresult.sema)
        machine.nthreads = 1
        machine.run()
        return machine

    machine = benchmark.pedantic(run_once, rounds=2, iterations=1)
    assert machine.output
