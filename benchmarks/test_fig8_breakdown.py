"""Figure 8: breakdown of the candidate loops' dynamic memory accesses
into free-of-carried-dep / expandable / stuck-with-carried-dep."""

from repro.analysis import profile_loop
from repro.bench import get
from repro.bench.report import fig8_breakdown
from repro.frontend import ast, parse_and_analyze


def test_fig8_shape(results, benchmark):
    text = benchmark.pedantic(lambda: fig8_breakdown(results), rounds=1,
                              iterations=1)
    print("\n" + text)
    for name, r in results.items():
        f = r.breakdown.fractions()
        # every kernel has expandable accesses (that is why it is in
        # the suite) ...
        assert f["expandable"] > 0.02, (name, f)
        # ... and almost nothing is stuck in unremovable carried deps
        # within the parallel part (DOACROSS serial sections aside)
        assert f["carried"] < 0.25, (name, f)


def test_fig8_expandable_dominates_for_scratch_kernels(results):
    """Kernels whose loops are built around reused scratch structures
    show a large expandable share."""
    for name in ("256.bzip2", "456.hmmer", "mpeg2-encoder"):
        f = results[name].breakdown.fractions()
        assert f["expandable"] > 0.2, (name, f)


def test_bench_dependence_profiler(benchmark):
    """Timing: dynamic dependence profiling of the md5 kernel."""
    spec = get("md5")
    program, sema = parse_and_analyze(spec.source)
    loop = ast.find_loop(program, spec.loop_labels[0])

    def profile():
        return profile_loop(program, sema, loop)

    profile_result = benchmark.pedantic(profile, rounds=2, iterations=1)
    assert profile_result.iterations > 0
