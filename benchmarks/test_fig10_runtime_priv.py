"""Figure 10: static expansion vs SpiceC-style runtime privatization,
sequential overhead."""

from repro.analysis import build_access_classes, classify, profile_loop
from repro.baselines import run_runtime_privatization
from repro.bench import get
from repro.bench.report import fig10_runtime_priv
from repro.frontend import ast, parse_and_analyze


def test_fig10_shape(results, benchmark):
    text = benchmark.pedantic(lambda: fig10_runtime_priv(results),
                              rounds=1, iterations=1)
    print("\n" + text)
    worse = [
        name for name, r in results.items()
        if r.overhead_rtpriv > r.overhead_opt + 0.05
    ]
    # paper: "for most of the benchmarks ... runtime privatization
    # incurs much higher time overhead than ours"
    assert len(worse) >= 6, worse


def test_monitoring_cost_scales_with_private_accesses(results):
    """md5 issues few private accesses (only the X buffer), so its
    monitoring overhead is low — the exception the paper points out."""
    md5 = results["md5"]
    heavy = results["256.bzip2"]
    assert md5.overhead_rtpriv < heavy.overhead_rtpriv


def test_bench_runtime_privatization_run(benchmark):
    """Timing: a 1-thread runtime-privatized run of dijkstra."""
    spec = get("dijkstra")
    program, sema = parse_and_analyze(spec.source)
    profiles, privs = {}, {}
    for label in spec.loop_labels:
        loop = ast.find_loop(program, label)
        profile = profile_loop(program, sema, loop)
        profiles[label] = profile
        privs[label] = classify(
            profile.ddg, build_access_classes(profile.ddg)
        )

    def run_once():
        return run_runtime_privatization(
            program, sema, spec.loop_labels, profiles, privs, nthreads=1
        )

    outcome = benchmark.pedantic(run_once, rounds=2, iterations=1)
    assert outcome.output
