"""Ablation: bonded vs interleaved copy layout (paper Figure 2, §3.1).

The paper prefers bonded mode because (a) interleaved mode "fails to
work in some cases in which a data structure is recast between
different-sized types" — 256.bzip2's zptr — and (b) bonded placement
keeps one thread's data contiguous.  This bench demonstrates (a)
mechanically: interleaved expansion *refuses* kernels with
heap-allocated expansion targets, and works (correctly, race-free) on
kernels whose privatized structures are named variables.
"""

import pytest

from repro.bench import all_benchmarks, get
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import TransformError, expand_for_threads

HEAP_KERNELS = ("256.bzip2", "456.hmmer", "dijkstra")
VAR_KERNELS = ("md5", "mpeg2-decoder", "470.lbm")


@pytest.mark.parametrize("name", HEAP_KERNELS)
def test_interleaved_refuses_recastable_heap_structures(name):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    with pytest.raises(TransformError, match="interleaved"):
        expand_for_threads(program, sema, spec.loop_labels,
                           layout="interleaved")


@pytest.mark.parametrize("name", VAR_KERNELS)
def test_interleaved_works_on_named_structures(name):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, spec.loop_labels,
                                layout="interleaved")
    outcome = run_parallel(result, 4)
    assert outcome.output == base.output
    assert not outcome.races


def test_layout_comparison_table(benchmark):
    """Timing + cycle comparison of the two layouts on md5."""
    spec = get("md5")
    program, sema = parse_and_analyze(spec.source)
    base = Machine(program, sema)
    base.run()
    rows = []
    for layout in ("bonded", "interleaved"):
        result = expand_for_threads(program, sema, spec.loop_labels,
                                    layout=layout)
        outcome = run_parallel(result, 8)
        assert outcome.output == base.output
        ex = outcome.loop(spec.loop_labels[0])
        rows.append((layout, ex.makespan))
    print("\nLayout ablation (md5, 8 threads):")
    for layout, makespan in rows:
        print(f"  {layout:<12} loop makespan {makespan:,.0f} cycles")

    def run_interleaved():
        result = expand_for_threads(program, sema, spec.loop_labels,
                                    layout="interleaved")
        return run_parallel(result, 8)

    benchmark.pedantic(run_interleaved, rounds=1, iterations=1)
