"""Shared fixtures for the table/figure regenerators.

The full harness (8 benchmarks x {sequential, profiled, transformed
opt/unopt, runtime-priv, 1/2/4/8-thread parallel, sync-only}) runs once
per pytest session; every regenerator reads from the cached results.
"""

import pytest

from repro.bench import Harness, all_benchmarks


@pytest.fixture(scope="session")
def harness():
    return Harness()


@pytest.fixture(scope="session")
def results(harness, request):
    """name -> BenchmarkResult for the whole suite (Table 4 order)."""
    out = {}
    for spec in all_benchmarks():
        out[spec.name] = harness.result(spec.name)
    request.session._repro_results = out
    return out


@pytest.fixture(scope="session", autouse=True)
def _emit_full_report(request):
    """After the session, print every regenerated table/figure straight
    to the terminal (bypassing capture, so `pytest benchmarks/ | tee`
    archives them).  Lazy: only fires if some test computed the full
    suite, so the ablation benches can run standalone."""
    yield
    results = getattr(request.session, "_repro_results", None)
    if not results:
        return
    from repro.bench.report import full_report
    text = "\n\n" + full_report(results) + "\n"
    cap = request.config.pluginmanager.getplugin("capturemanager")
    if cap is not None:
        with cap.global_and_fixture_disabled():
            print(text)
    else:  # pragma: no cover
        print(text)


def pytest_collection_modifyitems(items):
    """Run the ablation benches after the figure regenerators so the
    expensive full-suite fixture is computed exactly once up front."""
    items.sort(key=lambda item: "ablation" in item.nodeid)
