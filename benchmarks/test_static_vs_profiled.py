"""The paper's §4.1 justification for profiling, made mechanical:
"current compile-time data dependence analysis algorithms are still too
conservative and they report false positives that prevent loop
parallelization."

For every benchmark we build a representative static (may-alias,
no-distance) dependence graph and run the same Definition 4/5 pipeline
on it: conservatism erases nearly all privatization opportunities that
the profiled graph exposes.
"""

import pytest

from repro.analysis import static_parallelizability_report
from repro.bench import all_benchmarks, get
from repro.frontend import ast, parse_and_analyze

NAMES = [s.name for s in all_benchmarks()]


@pytest.fixture(scope="module")
def reports():
    out = {}
    for spec in all_benchmarks():
        program, sema = parse_and_analyze(spec.source)
        loop = ast.find_loop(program, spec.loop_labels[0])
        out[spec.name] = static_parallelizability_report(
            program, sema, loop
        )
    return out


def test_static_vs_profiled_table(reports, benchmark):
    benchmark.pedantic(lambda: dict(reports), rounds=1, iterations=1)
    print("\nStatic (compile-time) vs profiled dependence graphs:")
    print(f"{'benchmark':<16} {'private sites (static)':>24} "
          f"{'private sites (profiled)':>26}")
    for name, rep in reports.items():
        print(f"{name:<16} {rep['static_private']:>24} "
              f"{rep['profiled_private']:>26}")


@pytest.mark.parametrize("name", NAMES)
def test_profiling_unlocks_privatization(name, reports):
    rep = reports[name]
    assert rep["profiled_private"] > rep["static_private"], rep


@pytest.mark.parametrize("name", NAMES)
def test_static_graph_is_denser(name, reports):
    """False positives: the static graph assumes far more carried
    dependences than actually occur."""
    rep = reports[name]
    assert rep["static_carried_edges"] > rep["profiled_carried_edges"], rep
