"""Ablation: which §3.4 optimization buys how much?

DESIGN.md calls out selective promotion, trivial-span elimination,
constant spans, and redirection hoisting as separable design choices;
this bench disables them one at a time and reports the sequential
overhead impact on the two most span-sensitive kernels.
"""

import pytest

from repro.bench import get
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.transform import OptFlags, expand_for_threads

KERNELS = ("256.bzip2", "456.hmmer")

VARIANTS = {
    "all-on": OptFlags(),
    "no-selective-promotion": OptFlags(selective_promotion=False),
    "no-trivial-span-elim": OptFlags(trivial_span_elim=False),
    "no-constant-spans": OptFlags(constant_spans=False),
    "no-hoisting": OptFlags(hoisting=False),
    "all-off": OptFlags.all_off(),
}


@pytest.fixture(scope="module")
def overheads():
    out = {}
    for name in KERNELS:
        spec = get(name)
        program, sema = parse_and_analyze(spec.source)
        base = Machine(program, sema)
        base.run()
        row = {}
        for variant, flags in VARIANTS.items():
            result = expand_for_threads(
                program, sema, spec.loop_labels, optimize=flags
            )
            machine = Machine(result.program, result.sema)
            machine.nthreads = 1
            machine.run()
            assert machine.output == base.output, (name, variant)
            row[variant] = machine.cost.cycles / base.cost.cycles
        out[name] = row
    return out


def test_ablation_table(overheads, benchmark):
    benchmark.pedantic(lambda: dict(overheads), rounds=1, iterations=1)
    print("\nAblation: sequential overhead by disabled optimization")
    header = ["kernel"] + list(VARIANTS)
    print("  ".join(f"{h:<24}" for h in header))
    for name, row in overheads.items():
        cells = [name] + [f"{row[v]:.3f}x" for v in VARIANTS]
        print("  ".join(f"{c:<24}" for c in cells))


def test_every_optimization_helps_or_is_neutral(overheads):
    for name, row in overheads.items():
        for variant in VARIANTS:
            if variant in ("all-on",):
                continue
            assert row[variant] >= row["all-on"] - 0.02, (name, variant)


def test_hoisting_is_the_big_lever(overheads):
    """Redirection cost is per-access without hoisting: disabling it
    hurts more than disabling constant spans alone."""
    for name, row in overheads.items():
        assert row["no-hoisting"] > row["all-on"] + 0.05, name


def test_all_off_matches_unoptimized_mode(overheads):
    for name in KERNELS:
        spec = get(name)
        program, sema = parse_and_analyze(spec.source)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(
            program, sema, spec.loop_labels, optimize=False
        )
        machine = Machine(result.program, result.sema)
        machine.nthreads = 1
        machine.run()
        ratio = machine.cost.cycles / base.cost.cycles
        assert abs(ratio - overheads[name]["all-off"]) < 0.02
