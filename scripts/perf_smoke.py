"""Engine-vs-engine wall-clock smoke over the benchmark suite.

Runs every registered benchmark kernel sequentially, end to end, under
each interpreter tier and prints a comparison table.  Three properties
are enforced, matching the bytecode tier's drop-in contract:

* identical program output and exit code on every kernel;
* identical simulated cost counters (cycles, instructions, loads,
  stores) between ``ast`` and the instrumented ``bytecode`` tier;
* zero compile fallbacks (every construct the suite exercises is
  compiled, none interpreted through the walker escape hatch);
* a geometric-mean end-to-end speedup of at least ``--min-speedup``
  (default 2.0) for ``bytecode`` over ``ast``.

Usage:  python scripts/perf_smoke.py [--repeat N] [--min-speedup X]
        [--json PATH]

Exit status 0 when all kernels pass, 1 on any parity or speedup
failure.  ``--json`` additionally dumps the raw numbers for archival
(the CI bench-smoke job uploads this as an artifact).
"""

import argparse
import json
import math
import sys
import time

from repro.bench import all_benchmarks
from repro.frontend import parse_and_analyze
from repro.interp import Machine

ENGINES = ("ast", "bytecode", "bytecode-bare")


def run_once(program, sema, engine):
    """One end-to-end sequential run; returns (seconds, fingerprint)."""
    machine = Machine(program, sema, engine=engine)
    start = time.perf_counter()
    code = machine.run()
    elapsed = time.perf_counter() - start
    cost = machine.cost
    fingerprint = {
        "exit": code,
        "output": list(machine.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
    }
    compiler = getattr(machine, "compiler", None)
    if compiler is not None and compiler.fallbacks:
        raise AssertionError(
            f"{engine}: {compiler.fallbacks} compile fallback(s)"
        )
    return elapsed, fingerprint


def measure(spec, repeat):
    """Best-of-``repeat`` seconds per engine + parity verdicts."""
    row = {"name": spec.name}
    prints = {}
    for engine in ENGINES:
        # fresh parse per engine so no tier benefits from warm caches
        program, sema = parse_and_analyze(spec.source)
        best = math.inf
        for _ in range(repeat):
            elapsed, fingerprint = run_once(program, sema, engine)
            best = min(best, elapsed)
        row[engine] = best
        prints[engine] = fingerprint
    # the bare tier skips observer fan-out but must still compute the
    # same answer and charge the same costs
    row["parity"] = (prints["ast"] == prints["bytecode"]
                     == prints["bytecode-bare"])
    row["speedup"] = row["ast"] / row["bytecode"]
    row["speedup_bare"] = row["ast"] / row["bytecode-bare"]
    return row


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed runs per (kernel, engine); best "
                             "is kept (default 3)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required geomean bytecode-over-ast "
                             "end-to-end speedup (default 2.0)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw numbers as JSON")
    args = parser.parse_args(argv)

    rows = []
    for spec in all_benchmarks():
        print(f"measuring {spec.name} ...", file=sys.stderr)
        rows.append(measure(spec, args.repeat))

    header = (f"{'kernel':<16} {'ast(s)':>8} {'bytecode':>9} "
              f"{'speedup':>8} {'bare':>8} {'speedup':>8}  parity")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:<16} {row['ast']:>8.3f} "
              f"{row['bytecode']:>9.3f} {row['speedup']:>7.2f}x "
              f"{row['bytecode-bare']:>8.3f} "
              f"{row['speedup_bare']:>7.2f}x  "
              f"{'OK' if row['parity'] else 'DIVERGED'}")
    gm = geomean([r["speedup"] for r in rows])
    gm_bare = geomean([r["speedup_bare"] for r in rows])
    print("-" * len(header))
    print(f"{'geomean':<16} {'':>8} {'':>9} {gm:>7.2f}x "
          f"{'':>8} {gm_bare:>7.2f}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"rows": rows, "geomean": gm,
                       "geomean_bare": gm_bare,
                       "min_speedup": args.min_speedup}, fh, indent=1)
            fh.write("\n")
        print(f"[raw numbers written to {args.json}]", file=sys.stderr)

    failed = False
    for row in rows:
        if not row["parity"]:
            print(f"FAIL: {row['name']} diverged between engines",
                  file=sys.stderr)
            failed = True
    if gm < args.min_speedup:
        print(f"FAIL: geomean speedup {gm:.2f}x < "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
