"""Engine-vs-engine wall-clock smoke over the benchmark suite.

Runs every registered benchmark kernel sequentially, end to end, under
each interpreter tier and prints a comparison table.  Three properties
are enforced, matching the bytecode tier's drop-in contract:

* identical program output and exit code on every kernel;
* identical simulated cost counters (cycles, instructions, loads,
  stores) between ``ast`` and the instrumented ``bytecode`` tier;
* zero compile fallbacks (every construct the suite exercises is
  compiled, none interpreted through the walker escape hatch);
* a geometric-mean end-to-end speedup of at least ``--min-speedup``
  (default 2.0) for ``bytecode`` over ``ast``.

``--backend process`` switches to the multi-core differential smoke
instead: every kernel is expanded and run under both parallel backends
(simulated vs real worker processes over shared memory) and must be
bit-identical — program output, diagnostics (minus the informational
``MC-*`` fallback notes), modeled cycles/makespans, and the final live
GLOBAL+HEAP heap image, byte for byte.  The process backend's
wall-clock scaling (1 worker vs ``--workers``) is reported, and the
``--min-mc-speedup`` geomean gate (default 1.8) is enforced when the
host actually has ``--workers`` cores.

``--engine native`` switches to the native lowering tier's smoke:
every kernel runs sequentially under the walker and under compiled C
(``--backend engines``, the default) with bit-identical output/exit
and identical modeled cost counters, zero ``NL-*`` lowering fallbacks
(a fallback is a hard failure here), and a geomean wall-clock speedup
of at least ``--min-native-speedup`` (default 10) over the walker.
With ``--backend process`` the multi-core differential instead runs
its worker pool on the native tier — DOALL chunks dispatch into the
compiled entry points — and additionally requires zero accounted
native fallbacks across the suite.

``--membench`` appends the zero-copy memory micro-benchmark: bulk
``read_bytes``/``write_bytes``/``read_cstring`` against the historical
per-byte scalar walk, with a sanity floor on the bulk speedup.

Usage:  python scripts/perf_smoke.py [--repeat N] [--min-speedup X]
        [--json PATH] [--backend {engines,process}] [--workers N]
        [--engine {bytecode,native}] [--membench]

Exit status 0 when all kernels pass, 1 on any parity or speedup
failure.  ``--json`` additionally dumps the raw numbers for archival
(the CI bench-smoke job uploads this as an artifact).
"""

import argparse
import json
import math
import os
import sys
import time

from repro.bench import all_benchmarks
from repro.frontend import parse_and_analyze
from repro.interp import Machine

ENGINES = ("ast", "bytecode", "bytecode-bare")


def run_once(program, sema, engine):
    """One end-to-end sequential run; returns (seconds, fingerprint)."""
    machine = Machine(program, sema, engine=engine)
    start = time.perf_counter()
    code = machine.run()
    elapsed = time.perf_counter() - start
    cost = machine.cost
    fingerprint = {
        "exit": code,
        "output": list(machine.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
    }
    compiler = getattr(machine, "compiler", None)
    if compiler is not None and compiler.fallbacks:
        raise AssertionError(
            f"{engine}: {compiler.fallbacks} compile fallback(s)"
        )
    return elapsed, fingerprint


def measure(spec, repeat):
    """Best-of-``repeat`` seconds per engine + parity verdicts."""
    row = {"name": spec.name}
    prints = {}
    for engine in ENGINES:
        # fresh parse per engine so no tier benefits from warm caches
        program, sema = parse_and_analyze(spec.source)
        best = math.inf
        for _ in range(repeat):
            elapsed, fingerprint = run_once(program, sema, engine)
            best = min(best, elapsed)
        row[engine] = best
        prints[engine] = fingerprint
    # the bare tier skips observer fan-out but must still compute the
    # same answer and charge the same costs
    row["parity"] = (prints["ast"] == prints["bytecode"]
                     == prints["bytecode-bare"])
    row["speedup"] = row["ast"] / row["bytecode"]
    row["speedup_bare"] = row["ast"] / row["bytecode-bare"]
    return row


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# native lowering tier smoke (--engine native)
# ---------------------------------------------------------------------------

def run_native_once(program, sema):
    """One sequential native run; any lowering fallback is a failure
    (the smoke gate's zero-silent-fallback contract)."""
    machine = Machine(program, sema, engine="native")
    start = time.perf_counter()
    code = machine.run()
    elapsed = time.perf_counter() - start
    if machine.native_diag is not None:
        raise AssertionError(
            f"native tier fell back wholesale: {machine.native_diag}")
    low = machine._low
    if low is None or low.nl:
        raise AssertionError(
            f"NL lowering fallbacks: {dict(low.nl) if low else 'none'}")
    if machine.native_dispatches == 0:
        raise AssertionError("no native entry point was dispatched")
    cost = machine.cost
    fingerprint = {
        "exit": code,
        "output": list(machine.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
    }
    return elapsed, fingerprint


def native_smoke(args):
    """Sequential walker-vs-native differential + the >=10x wall-clock
    gate over the whole kernel suite."""
    from repro.interp.native import native_backend_available

    ok, why = native_backend_available()
    if not ok:
        print(f"SKIP: native tier unavailable ({why})", file=sys.stderr)
        return 0

    rows = []
    for spec in all_benchmarks():
        print(f"measuring {spec.name} ...", file=sys.stderr)
        row = {"name": spec.name}
        prints = {}
        program, sema = parse_and_analyze(spec.source)
        best = math.inf
        for _ in range(args.repeat):
            elapsed, prints["ast"] = run_once(program, sema, "ast")
            best = min(best, elapsed)
        row["ast"] = best
        program, sema = parse_and_analyze(spec.source)
        best = math.inf
        for _ in range(args.repeat):
            elapsed, prints["native"] = run_native_once(program, sema)
            best = min(best, elapsed)
        row["native"] = best
        row["parity"] = prints["ast"] == prints["native"]
        if not row["parity"]:
            row["diff"] = sorted(
                k for k in prints["ast"]
                if prints["ast"][k] != prints["native"][k])
        row["speedup"] = row["ast"] / row["native"]
        rows.append(row)

    header = (f"{'kernel':<16} {'ast(s)':>8} {'native':>9} "
              f"{'speedup':>9}  parity")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:<16} {row['ast']:>8.3f} "
              f"{row['native']:>9.4f} {row['speedup']:>8.1f}x  "
              f"{'OK' if row['parity'] else 'DIVERGED'}")
    gm = geomean([r["speedup"] for r in rows])
    print("-" * len(header))
    print(f"{'geomean':<16} {'':>8} {'':>9} {gm:>8.1f}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"mode": "native", "rows": rows, "geomean": gm,
                       "min_native_speedup": args.min_native_speedup},
                      fh, indent=1)
            fh.write("\n")
        print(f"[raw numbers written to {args.json}]", file=sys.stderr)

    failed = False
    for row in rows:
        if not row["parity"]:
            print(f"FAIL: {row['name']} diverged between walker and "
                  f"native ({', '.join(row.get('diff', []))})",
                  file=sys.stderr)
            failed = True
    if gm < args.min_native_speedup:
        print(f"FAIL: geomean native speedup {gm:.2f}x < "
              f"required {args.min_native_speedup:.2f}x",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# multi-core backend differential smoke (--backend process)
# ---------------------------------------------------------------------------

def _heap_image(memory):
    """The live GLOBAL+HEAP allocations as (kind, label, addr, size,
    bytes) — the bit-identity fingerprint of the final address space."""
    image = []
    for rec in memory._allocs:
        if rec.live and rec.kind in ("global", "heap"):
            image.append((rec.kind, rec.label, rec.addr, rec.size,
                          bytes(memory.data[rec.addr:rec.end])))
    return image


def _parallel_fingerprint(tresult, nthreads, backend, workers=None,
                          engine="bytecode"):
    """One parallel run; returns (seconds, fingerprint dict, metrics).

    The fingerprint covers everything the bit-identity contract
    promises: output, exit code, modeled cost counters, per-loop
    makespans/iterations, non-``MC-*`` diagnostics, and the final live
    heap image.  (``peak_memory`` is deliberately excluded — worker
    stack allocations live in private arenas.)
    """
    from repro.runtime import ParallelRunner

    kwargs = {}
    tracer = None
    if engine == "native":
        from repro.obs import Tracer

        # race-check observers would pin the parent machine to the
        # bytecode fallback; the tracer collects the fallback audit
        tracer = Tracer()
        kwargs["check_races"] = False
    runner = ParallelRunner(tresult, nthreads, engine=engine,
                            backend=backend, workers=workers,
                            tracer=tracer, **kwargs)
    start = time.perf_counter()
    outcome = runner.run()
    elapsed = time.perf_counter() - start
    cost = runner.machine.cost
    fingerprint = {
        "exit": outcome.exit_code,
        "output": list(outcome.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
        "loops": {
            label: (ex.makespan, ex.iterations)
            for label, ex in outcome.loops.items()
        },
        "diagnostics": [
            d.render() for d in outcome.diagnostics
            if not d.code.startswith("MC-")
        ],
        "heap": _heap_image(runner.machine.memory),
    }
    metrics = tracer.metrics.as_dict() if tracer is not None else {}
    return elapsed, fingerprint, metrics


def measure_process(spec, repeat, workers, engine="bytecode"):
    """Differential simulated-vs-process measurement of one kernel."""
    from repro.transform import expand_for_threads

    program, sema = parse_and_analyze(spec.source)
    tresult = expand_for_threads(program, sema, spec.loop_labels,
                                 optimize=True)
    row = {"name": spec.name}
    prints = {}
    # simulated reference + process at full width + process at width 1
    # (the wall-clock scaling baseline)
    configs = (
        ("simulated", workers, "simulated"),
        ("process", workers, "process"),
        ("process1", 1, "process"),
    )
    for key, nthreads, backend in configs:
        best, fingerprint = math.inf, None
        for _ in range(repeat):
            elapsed, fingerprint, metrics = _parallel_fingerprint(
                tresult, nthreads, backend, workers=nthreads,
                engine=engine)
            best = min(best, elapsed)
        row[key] = best
        prints[key] = fingerprint
        if key == "process" and engine == "native":
            row["native_chunks"] = metrics.get(
                "runtime.native_chunks", 0)
            row["native_fallbacks"] = metrics.get(
                "runtime.native_fallbacks", 0)
    row["parity"] = prints["simulated"] == prints["process"]
    if not row["parity"]:
        row["diff"] = sorted(
            k for k in prints["simulated"]
            if prints["simulated"][k] != prints["process"][k]
        )
    row["mc_speedup"] = row["process1"] / row["process"]
    return row


def process_smoke(args):
    """The ``--backend process`` mode: bit-identity differential over
    every kernel plus the wall-clock scaling gate."""
    from repro.runtime import process_backend_available

    ok, why = process_backend_available()
    if not ok:
        print(f"SKIP: process backend unavailable ({why})",
              file=sys.stderr)
        return 0
    engine = getattr(args, "engine", "bytecode")
    if engine == "native":
        from repro.interp.native import native_backend_available

        ok, why = native_backend_available()
        if not ok:
            print(f"SKIP: native tier unavailable ({why})",
                  file=sys.stderr)
            return 0

    rows = []
    for spec in all_benchmarks():
        print(f"measuring {spec.name} ...", file=sys.stderr)
        rows.append(measure_process(spec, args.repeat, args.workers,
                                    engine=engine))

    header = (f"{'kernel':<16} {'simulated':>10} {'process':>9} "
              f"{'proc@1':>8} {'scaling':>8}  parity")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:<16} {row['simulated']:>9.3f}s "
              f"{row['process']:>8.3f}s {row['process1']:>7.3f}s "
              f"{row['mc_speedup']:>7.2f}x  "
              f"{'OK' if row['parity'] else 'DIVERGED'}")
    gm = geomean([r["mc_speedup"] for r in rows])
    print("-" * len(header))
    print(f"{'geomean':<16} {'':>10} {'':>9} {'':>8} {gm:>7.2f}x")

    if args.json:
        payload = [
            {k: v for k, v in row.items()} for row in rows
        ]
        with open(args.json, "w") as fh:
            json.dump({"mode": "process", "workers": args.workers,
                       "engine": engine,
                       "rows": payload, "geomean_mc": gm,
                       "min_mc_speedup": args.min_mc_speedup,
                       "cpu_count": os.cpu_count()}, fh, indent=1)
            fh.write("\n")
        print(f"[raw numbers written to {args.json}]", file=sys.stderr)

    failed = False
    for row in rows:
        if not row["parity"]:
            print(f"FAIL: {row['name']} diverged between backends "
                  f"({', '.join(row.get('diff', []))})", file=sys.stderr)
            failed = True
        if engine == "native" and row.get("native_fallbacks", 0):
            print(f"FAIL: {row['name']} ran "
                  f"{row['native_fallbacks']} chunk(s) on the Python "
                  f"loop instead of the native entry point",
                  file=sys.stderr)
            failed = True
    if engine == "native" and not any(
            r.get("native_chunks", 0) for r in rows):
        print("FAIL: no DOALL chunk dispatched into a native entry "
              "point across the whole suite", file=sys.stderr)
        failed = True
    cores = os.cpu_count() or 1
    if cores >= args.workers:
        if gm < args.min_mc_speedup:
            print(f"FAIL: geomean multi-core speedup {gm:.2f}x < "
                  f"required {args.min_mc_speedup:.2f}x "
                  f"({args.workers} workers on {cores} cores)",
                  file=sys.stderr)
            failed = True
    else:
        print(f"[speedup gate skipped: {cores} core(s) < "
              f"{args.workers} workers]", file=sys.stderr)
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# zero-copy memory micro-benchmark (--membench)
# ---------------------------------------------------------------------------

def membench(repeat=3, size=1 << 20, min_bulk_speedup=2.0):
    """Bulk read/write/cstring against the per-byte scalar walk.

    Returns 0 on pass.  The floor is deliberately loose (the real gap
    is orders of magnitude): it only guards against the bulk paths
    regressing to a Python-level per-byte loop.
    """
    from repro.interp.memory import Memory

    mem = Memory(check_bounds=False)
    addr = mem.alloc(size + 1, kind="heap", label="membench")
    payload = bytes(range(256)) * (size // 256)

    def best(fn):
        b = math.inf
        for _ in range(repeat):
            t = time.perf_counter()
            fn()
            b = min(b, time.perf_counter() - t)
        return b

    # per-byte scalar walks (the historical access pattern)
    def write_scalar_walk():
        write = mem.write_scalar
        for i in range(size):
            write(addr + i, "B", payload[i])

    def read_scalar_walk():
        read = mem.read_scalar
        acc = 0
        for i in range(size):
            acc ^= read(addr + i, "B", 1)
        return acc

    t_w_scalar = best(write_scalar_walk)
    t_r_scalar = best(read_scalar_walk)
    # bulk paths
    t_w_bulk = best(lambda: mem.write_bytes(addr, payload))
    t_r_bulk = best(lambda: mem.read_bytes(addr, size))
    got = mem.read_bytes(addr, size)
    assert got == payload, "membench: bulk round-trip corrupted data"

    # cstring: NUL-terminate and compare against a per-byte scan
    text = b"x" * (size - 1)
    mem.write_bytes(addr, text + b"\0")

    def cstring_walk():
        read = mem.read_scalar
        chars = []
        i = addr
        while True:
            b = read(i, "B", 1)
            if b == 0:
                break
            chars.append(chr(b))
            i += 1
        return "".join(chars)

    t_c_scalar = best(cstring_walk)
    t_c_bulk = best(lambda: mem.read_cstring(addr))
    assert mem.read_cstring(addr) == cstring_walk(), \
        "membench: read_cstring mismatch"

    mb = size / (1 << 20)
    print(f"membench ({mb:.0f} MiB block, best of {repeat}):")
    rows = (
        ("write", t_w_scalar, t_w_bulk),
        ("read", t_r_scalar, t_r_bulk),
        ("cstring", t_c_scalar, t_c_bulk),
    )
    failed = False
    for name, scalar_s, bulk_s in rows:
        ratio = scalar_s / bulk_s if bulk_s > 0 else math.inf
        print(f"  {name:<8} per-byte {scalar_s * 1e3:>9.2f}ms  "
              f"bulk {bulk_s * 1e6:>9.1f}us  ({ratio:,.0f}x)")
        if ratio < min_bulk_speedup:
            print(f"FAIL: bulk {name} only {ratio:.2f}x over the "
                  f"per-byte walk (< {min_bulk_speedup:.1f}x)",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed runs per (kernel, engine); best "
                             "is kept (default 3)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required geomean bytecode-over-ast "
                             "end-to-end speedup (default 2.0)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw numbers as JSON")
    parser.add_argument("--backend", choices=("engines", "process"),
                        default="engines",
                        help="'engines' compares interpreter tiers "
                             "(default); 'process' runs the multi-core "
                             "backend differential instead")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-backend worker count (default 4)")
    parser.add_argument("--min-mc-speedup", type=float, default=1.8,
                        help="required geomean process-backend scaling "
                             "(workers vs 1), enforced only when the "
                             "host has that many cores (default 1.8)")
    parser.add_argument("--engine", choices=("bytecode", "native"),
                        default="bytecode",
                        help="worker/measurement tier: 'native' runs "
                             "the compiled-C smoke (sequential "
                             "differential + >=10x gate, or native "
                             "workers with --backend process)")
    parser.add_argument("--min-native-speedup", type=float, default=10.0,
                        help="required geomean native-over-walker "
                             "sequential speedup (default 10.0)")
    parser.add_argument("--membench", action="store_true",
                        help="also run the zero-copy memory "
                             "micro-benchmark")
    args = parser.parse_args(argv)

    status = 0
    if args.membench:
        status = membench(repeat=args.repeat) or status
    if args.backend == "process":
        return process_smoke(args) or status
    if args.engine == "native":
        return native_smoke(args) or status

    rows = []
    for spec in all_benchmarks():
        print(f"measuring {spec.name} ...", file=sys.stderr)
        rows.append(measure(spec, args.repeat))

    header = (f"{'kernel':<16} {'ast(s)':>8} {'bytecode':>9} "
              f"{'speedup':>8} {'bare':>8} {'speedup':>8}  parity")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:<16} {row['ast']:>8.3f} "
              f"{row['bytecode']:>9.3f} {row['speedup']:>7.2f}x "
              f"{row['bytecode-bare']:>8.3f} "
              f"{row['speedup_bare']:>7.2f}x  "
              f"{'OK' if row['parity'] else 'DIVERGED'}")
    gm = geomean([r["speedup"] for r in rows])
    gm_bare = geomean([r["speedup_bare"] for r in rows])
    print("-" * len(header))
    print(f"{'geomean':<16} {'':>8} {'':>9} {gm:>7.2f}x "
          f"{'':>8} {gm_bare:>7.2f}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"rows": rows, "geomean": gm,
                       "geomean_bare": gm_bare,
                       "min_speedup": args.min_speedup}, fh, indent=1)
            fh.write("\n")
        print(f"[raw numbers written to {args.json}]", file=sys.stderr)

    failed = False
    for row in rows:
        if not row["parity"]:
            print(f"FAIL: {row['name']} diverged between engines",
                  file=sys.stderr)
            failed = True
    if gm < args.min_speedup:
        print(f"FAIL: geomean speedup {gm:.2f}x < "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    return 1 if failed or status else 0


if __name__ == "__main__":
    sys.exit(main())
