"""Serve-mode smoke: the compile-once/serve-many contract, end to end.

Boots a real ``repro serve`` daemon (subprocess, Unix socket, fresh
cache root), submits every benchmark kernel **twice**, and asserts the
resident-service guarantees:

* **bit-identical outputs** — round 2 must reproduce round 1's program
  output, exit code and verification verdict exactly;
* **100% stage hits on round 2** — the second identical job must do
  zero compile work: ``cache_hits == cache_stages`` on every kernel;
* **warm session reuse** — on the process backend, round 2 must draw
  its worker session from the pool (``session_reused``) instead of
  forking a fresh one (waived with a notice on hosts without the
  process backend);
* **warm latency** — the p50 round-2 daemon request must be at least
  ``--min-ratio`` (default 5) times faster than a cold ``repro
  parallel`` subprocess of the same kernel, demonstrating what the
  resident process actually buys.
* **zero warm compiles** — the daemon runs with ``$REPRO_NATIVE_CC_LOG``
  pointing at an audit file; round 2 must add **zero** C-compiler
  invocations regardless of engine (with ``--engine native`` round 1
  compiles each kernel's ``.so`` exactly once, and the warm round
  serves every job from the stage cache).

``--engine native`` submits every job on the native lowering tier and
skips gracefully (exit 0) when the host has no C toolchain.

The cell-by-cell report lands in ``--json``; ``--trajectory`` appends
the measurement as the additive ``serve`` block of a
``BENCH_*.json``-style trajectory for cross-commit diffing.

Usage:  python scripts/serve_smoke.py [--backend auto|simulated|process]
        [--engine bytecode|native] [--threads N] [--min-ratio R]
        [--json PATH] [--trajectory PATH]

Exit status 0 when every assertion holds, 1 otherwise.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.bench import all_benchmarks                    # noqa: E402
from repro.service import Job, request                    # noqa: E402


def start_daemon(socket_path, cache_dir, max_sessions, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir,
         "--max-sessions", str(max_sessions)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 15.0
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"serve daemon died on startup (exit {proc.returncode})")
        if os.path.exists(socket_path):
            try:
                request(socket_path, {"op": "ping"}, timeout=5.0)
                return proc
            except OSError:
                pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("serve daemon never came up")


def cold_cli_run(spec, path, threads):
    """One cold ``repro parallel`` subprocess; returns seconds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro", "parallel", path,
           "-n", str(threads)]
    for label in spec.loop_labels:
        cmd += ["--loop", label]
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE)
    elapsed = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"cold repro parallel failed for {spec.name}: "
            f"{proc.stderr.decode()[-400:]}")
    return elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend",
                        choices=("auto", "simulated", "process"),
                        default="auto",
                        help="job backend (auto probes the host)")
    parser.add_argument("--engine", choices=("bytecode", "native"),
                        default="bytecode",
                        help="interpreter tier for every job (native "
                             "skips gracefully without a C toolchain)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--min-ratio", type=float, default=5.0,
                        help="required p50 cold-CLI / warm-daemon "
                             "latency ratio (default 5)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the cell-by-cell report here")
    parser.add_argument("--trajectory", metavar="PATH", default=None,
                        help="emit a trajectory JSON whose 'serve' "
                             "block records this measurement")
    args = parser.parse_args(argv)

    if args.engine == "native":
        from repro.interp.native import native_backend_available
        ok, why = native_backend_available()
        if not ok:
            print(f"SKIP: native tier unavailable ({why})",
                  file=sys.stderr)
            return 0

    backend = args.backend
    if backend == "auto":
        from repro.runtime import process_backend_available
        ok, why = process_backend_available()
        backend = "process" if ok else "simulated"
        if not ok:
            print(f"[process backend unavailable ({why}); "
                  f"running simulated]", file=sys.stderr)
    check_reuse = backend == "process"

    specs = list(all_benchmarks())
    failures = []
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        sock = os.path.join(tmp, "repro.sock")
        cache_dir = os.path.join(tmp, "cache")
        # the daemon appends one line per C-compiler invocation here;
        # the round-boundary counts prove the warm round compiled nothing
        cc_log = os.path.join(tmp, "cc.log")
        proc = start_daemon(sock, cache_dir, max_sessions=len(specs),
                            extra_env={"REPRO_NATIVE_CC_LOG": cc_log})

        def cc_invocations():
            try:
                with open(cc_log) as fh:
                    return sum(1 for _ in fh)
            except OSError:
                return 0

        engine = None if args.engine == "bytecode" else args.engine
        cc_per_round = []
        try:
            pong = request(sock, {"op": "ping"})
            assert pong["ok"], pong
            jobs = {}
            for spec in specs:
                jobs[spec.name] = Job.from_kwargs(
                    spec.source, spec.loop_labels, args.threads,
                    True, backend=backend, workers=args.threads,
                    engine=engine,
                    # race observers would gate the native parent tier
                    check_races=(args.engine != "native"),
                )
            results = {}          # name -> [round1, round2]
            for round_no in (1, 2):
                for spec in specs:
                    t0 = time.perf_counter()
                    resp = request(
                        sock, {"op": "run",
                               "job": jobs[spec.name].to_dict()})
                    elapsed = time.perf_counter() - t0
                    if not resp.get("ok"):
                        failures.append(
                            f"{spec.name}/r{round_no}: daemon error "
                            f"{resp.get('error')}")
                        continue
                    result = resp["result"]
                    result["_latency_s"] = elapsed
                    results.setdefault(spec.name, []).append(result)
                cc_per_round.append(cc_invocations())
            stats = request(sock, {"op": "stats"})["result"]
        finally:
            try:
                request(sock, {"op": "shutdown"}, timeout=5.0)
            except OSError:
                pass
            proc.wait(timeout=15.0)

        # cold-CLI comparison runs (daemon already gone; same host,
        # same kernels, fresh interpreter + full compile per run)
        cold_times = {}
        for spec in specs:
            if spec.name not in results or len(results[spec.name]) != 2:
                continue
            path = os.path.join(tmp, f"{spec.name}.c")
            with open(path, "w") as fh:
                fh.write(spec.source)
            cold_times[spec.name] = cold_cli_run(spec, path,
                                                 args.threads)

    warm_latencies = []
    for spec in specs:
        pair = results.get(spec.name, [])
        if len(pair) != 2:
            if not any(spec.name in f for f in failures):
                failures.append(f"{spec.name}: missing round results")
            continue
        r1, r2 = pair
        verdicts = []
        if (r1["output"], r1["exit_code"], r1["verified"]) != \
                (r2["output"], r2["exit_code"], r2["verified"]):
            verdicts.append("rounds diverged")
        if not r1["verified"]:
            verdicts.append("round 1 not verified")
        if r2["cache_stages"] == 0 or \
                r2["cache_hits"] != r2["cache_stages"]:
            verdicts.append(
                f"round 2 stage hits {r2['cache_hits']}/"
                f"{r2['cache_stages']} (want 100%)")
        if check_reuse and not r2["session_reused"]:
            verdicts.append("round 2 session not reused")
        warm_latencies.append(r2["_latency_s"])
        row = {
            "kernel": spec.name,
            "ok": not verdicts,
            "why": "; ".join(verdicts),
            "backend": r2["backend"],
            "cold_cli_s": round(cold_times.get(spec.name, 0.0), 4),
            "cold_daemon_s": round(r1["_latency_s"], 4),
            "warm_daemon_s": round(r2["_latency_s"], 4),
            "round1_hits": r1["cache_hits"],
            "round2_hits": f"{r2['cache_hits']}/{r2['cache_stages']}",
            "session_reused": r2["session_reused"],
        }
        rows.append(row)
        mark = "ok" if row["ok"] else "FAIL"
        print(f"{spec.name:<16} {mark:>4}  "
              f"cold-cli={row['cold_cli_s']:.2f}s "
              f"cold={row['cold_daemon_s']:.3f}s "
              f"warm={row['warm_daemon_s']:.3f}s "
              f"hits={row['round2_hits']} "
              f"reused={row['session_reused']}"
              f"{'  [' + row['why'] + ']' if verdicts else ''}")
        if verdicts:
            failures.append(f"{spec.name}: {row['why']}")

    ratio = 0.0
    p50_cold = p50_warm = 0.0
    if warm_latencies and cold_times:
        p50_cold = statistics.median(cold_times.values())
        p50_warm = statistics.median(warm_latencies)
        ratio = p50_cold / p50_warm if p50_warm else 0.0
        print("-" * 60)
        print(f"p50 cold CLI {p50_cold:.3f}s vs p50 warm daemon "
              f"{p50_warm:.3f}s -> {ratio:.1f}x "
              f"(required >= {args.min_ratio:g}x)")
        if ratio < args.min_ratio:
            failures.append(
                f"warm-daemon speedup {ratio:.1f}x < "
                f"{args.min_ratio:g}x")

    cc_cold = cc_per_round[0] if cc_per_round else 0
    cc_warm = (cc_per_round[1] - cc_per_round[0]) \
        if len(cc_per_round) == 2 else 0
    print(f"C compiler invocations: round 1 = {cc_cold}, "
          f"round 2 = +{cc_warm}")
    if cc_warm:
        failures.append(
            f"warm round invoked the C compiler {cc_warm} time(s); "
            "the stage cache must serve round 2 without compiling")
    if args.engine == "native" and cc_cold == 0:
        failures.append(
            "native round 1 never invoked the C compiler "
            "(no kernel was actually lowered)")

    serve_block = {
        "backend": backend,
        "engine": args.engine,
        "cc_invocations_cold": cc_cold,
        "cc_invocations_warm": cc_warm,
        "threads": args.threads,
        "kernels": len(rows),
        "p50_cold_cli_s": p50_cold,
        "p50_warm_daemon_s": p50_warm,
        "warm_speedup": ratio,
        "min_ratio": args.min_ratio,
        "daemon_stats": stats,
        "cells": rows,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(serve_block, fh, indent=1)
            fh.write("\n")
        print(f"[report written to {args.json}]", file=sys.stderr)
    if args.trajectory:
        from repro.bench.trajectory import emit_trajectory
        path = emit_trajectory({}, args.trajectory, serve=serve_block)
        print(f"[trajectory written to {path}]", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
