"""Process-level chaos smoke for the self-healing multi-core backend.

Every benchmark kernel — plus two synthetic kernels that pin down the
DOALL retry and DOACROSS lease-recovery paths — is expanded under both
structure layouts (bonded / interleaved) and run on the process
backend while a chaos schedule fails the worker pool from underneath
it: SIGKILLing workers at chunk boundaries, dropping sync-token posts,
and stalling heartbeats.  Each disturbed run must

* produce a fingerprint **bit-identical** to the undisturbed run of
  the same (kernel, layout) — output, exit code, modeled cost
  counters, per-loop makespans/iterations, non-``MC-*`` diagnostics,
  and the final live GLOBAL+HEAP heap image, byte for byte;
* finish **without degrading** off the process backend
  (``runtime.mc_degraded`` absent): the supervisor must heal the pool,
  not abandon it.  The one sanctioned exception is a *mid-chunk* kill
  of a DOALL loop the retry-safety audit cannot prove idempotent —
  there the only sound answer is the degradation ladder, and the cell
  instead asserts graceful permissive recovery (exit code and program
  output still bit-identical; modeled timing and scratch-structure
  bytes necessarily differ under sequential re-execution); and
* actually exercise the machinery it claims to (a kill schedule must
  record restarts, a drop schedule token re-issues) — asserted only
  where the kernel dispatches to workers at all: kernels whose loops
  the capability audit routes to the simulated backend (``MC-ALLOC``
  etc., a pre-existing limitation independent of supervision) are
  still run and bit-identity-checked, with the fire assertion waived
  and the waiver recorded in the report (no silent coverage gaps).

Layout combinations the transform itself rejects (interleaved cannot
expand heap-allocated structures) are recorded as explicit skips.

Schedules are deterministic and seeded; ``--seeds`` replays the whole
matrix under that many injector seeds.  The CI ``chaos-smoke`` job
runs >= 8 seeds and uploads the JSON report.

Usage:  python scripts/chaos_smoke.py [--seeds N] [--workers N]
        [--kernel NAME] [--json PATH]

Exit status 0 when every (kernel x layout x schedule x seed) cell
passes, 1 on any divergence/degradation, and 0 with a SKIP notice when
the host cannot run the process backend at all (no /dev/shm).
"""

import argparse
import json
import os
import sys
import time

from repro.bench import all_benchmarks
from repro.diagnostics import DiagnosticSink
from repro.frontend import parse_and_analyze
from repro.obs import Tracer
from repro.runtime import (
    HeartbeatStaller, ParallelRunner, TokenPostDropper, WorkerKiller,
    audit_retry_safety,
)
from repro.transform import expand_for_threads
from repro.transform.promote import TransformError

LAYOUTS = ("bonded", "interleaved")

# Synthetic kernels: small, audit-clean loops that are guaranteed to
# dispatch to real workers, so every supervision path gets exercised
# even though some benchmark kernels fall back for unrelated reasons.
SX_DOALL = """
int buf[16];
int out[24];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 24; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 24; i++) print_int(out[i]);
    return 0;
}
"""

SX_DOACROSS = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 24; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""


class _SynthSpec:
    def __init__(self, name, source, loop_labels):
        self.name = name
        self.source = source
        self.loop_labels = loop_labels


def all_kernels():
    return list(all_benchmarks()) + [
        _SynthSpec("sx-doall", SX_DOALL, ["L"]),
        _SynthSpec("sx-doacross", SX_DOACROSS, ["L"]),
    ]


#: schedule name -> (injector factory taking a seed, per-run mc
#: options, metric that must fire when the kernel dispatches, whether
#: the assertion needs a DOACROSS loop on workers, and whether the
#: schedule kills a worker *mid-chunk* — past the write fence, where
#: the retry-safety audit decides between in-place retry and the
#: degradation ladder)
SCHEDULES = {
    # boundary kill of each of the first three dispatches in turn: the
    # worker dies before the task lands, the respawn re-runs it whole
    "kill-t0": (lambda s: [WorkerKiller(seed=s, task=0)], None,
                "runtime.mc_restart", False, False),
    "kill-t1": (lambda s: [WorkerKiller(seed=s, task=1)], None,
                "runtime.mc_restart", False, False),
    "kill-t2": (lambda s: [WorkerKiller(seed=s, task=2)], None,
                "runtime.mc_restart", False, False),
    # self-SIGKILL after the first committed local iteration: DOACROSS
    # resumes from the drained lease boundary, DOALL re-runs when the
    # audit proves the chunk idempotent — otherwise the supervisor
    # must degrade *gracefully* (permissive sequential recovery with
    # correct output and final heap, just different modeled timing)
    "kill-mid": (lambda s: [WorkerKiller(seed=s, task=1, after_iter=0)],
                 None, "runtime.mc_restart", False, True),
    # every sync-token post of task 0's stage is swallowed; the
    # supervisor re-issues from the committed-iteration messages
    "drop-posts": (lambda s: [TokenPostDropper(seed=s, task=0)], None,
                   "runtime.mc_token_reissues", True, False),
    # frozen heartbeat: the lease is revoked, the worker killed and
    # respawned even though the process itself never crashed.  The
    # tight heartbeat_timeout makes the staleness check observe the
    # stall well inside the 1s hold.
    "stall-hb": (lambda s: [HeartbeatStaller(seed=s, task=0,
                                             duration=-1.0, hold=1.0)],
                 {"heartbeat_timeout": 0.2}, "runtime.mc_restart",
                 False, False),
}

#: fingerprint keys that survive a sanctioned degradation.  Sequential
#: recovery guarantees the *observable program result* (the permissive
#: contract), but models different timing, records RT-* recovery
#: diagnostics, and leaves scratch structures with the sequential
#: execution's final bytes rather than the expansion's — so timing,
#: diagnostics and the raw heap image are out of scope for it.
DEGRADED_KEYS = ("exit", "output")


def heap_image(memory):
    image = []
    for rec in memory._allocs:
        if rec.live and rec.kind in ("global", "heap"):
            image.append((rec.kind, rec.label, rec.addr, rec.size,
                          bytes(memory.data[rec.addr:rec.end])))
    return image


def run_cell(tresult, nthreads, injectors=None, mc=None):
    """One process-backend run; returns (fingerprint, metrics).

    Permissive mode (``strict=False``) so a sanctioned degradation
    recovers sequentially instead of raising out of the harness; the
    undisturbed baseline runs under the same mode so fingerprints stay
    comparable.
    """
    sink = DiagnosticSink()
    tracer = Tracer()
    runner = ParallelRunner(tresult, nthreads, engine="bytecode",
                            backend="process", workers=nthreads,
                            sink=sink, tracer=tracer, strict=False,
                            fault_injectors=injectors, mc=mc)
    outcome = runner.run()
    cost = runner.machine.cost
    fingerprint = {
        "exit": outcome.exit_code,
        "output": list(outcome.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
        "loops": {label: (ex.makespan, ex.iterations)
                  for label, ex in outcome.loops.items()},
        "diagnostics": [d.render() for d in outcome.diagnostics
                        if not d.code.startswith("MC-")],
        "heap": heap_image(runner.machine.memory),
    }
    return fingerprint, tracer.metrics.as_dict()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seeds", type=int, default=2,
                        help="injector seeds per schedule (default 2)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kernel", action="append", default=None,
                        help="limit to named kernel(s)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the cell-by-cell report here")
    args = parser.parse_args(argv)

    from repro.runtime import process_backend_available
    ok, why = process_backend_available()
    if not ok:
        print(f"SKIP: process backend unavailable ({why})",
              file=sys.stderr)
        return 0

    specs = [s for s in all_kernels()
             if not args.kernel or s.name in args.kernel]
    report = []
    skips = []
    failures = []
    t_all = time.time()
    for spec in specs:
        program, sema = parse_and_analyze(spec.source)
        for layout in LAYOUTS:
            try:
                tresult = expand_for_threads(
                    program, sema, spec.loop_labels, optimize=True,
                    layout=layout)
            except TransformError as exc:
                skips.append(f"{spec.name}/{layout}: {exc}")
                print(f"{spec.name}/{layout:<12} SKIP (transform: "
                      f"{str(exc)[:60]}...)")
                continue
            baseline, base_metrics = run_cell(tresult, args.workers)
            if base_metrics.get("runtime.mc_degraded"):
                failures.append(f"{spec.name}/{layout}: undisturbed run "
                                f"degraded off the process backend")
                continue
            dispatched = base_metrics.get("runtime.worker_tasks", 0) > 0
            doacross = any(tl.kind == "doacross" for tl in tresult.loops)
            # a mid-chunk kill is only retryable in place when the
            # audit proves every DOALL chunk idempotent (DOACROSS
            # resumes from its lease regardless); otherwise the only
            # sound answer is the degradation ladder
            retry_unsafe = any(
                tl.kind == "doall" and audit_retry_safety(
                    tl.loop, sema,
                    set(getattr(tl.priv, "private_sites", None) or ()))
                for tl in tresult.loops)
            for sched_name, (make, mc, must_fire, needs_doacross,
                             mid_kill) in SCHEDULES.items():
                check_fire = dispatched and \
                    (not needs_doacross or doacross)
                degrade_ok = mid_kill and retry_unsafe and dispatched
                for seed in range(args.seeds):
                    cell = f"{spec.name}/{layout}/{sched_name}/s{seed}"
                    t0 = time.time()
                    fp, metrics = run_cell(
                        tresult, args.workers, injectors=make(seed),
                        mc=mc)
                    degraded = bool(metrics.get("runtime.mc_degraded"))
                    verdicts = []
                    if degraded and not degrade_ok:
                        verdicts.append("degraded off process backend")
                    keys = DEGRADED_KEYS if (degraded and degrade_ok) \
                        else tuple(baseline)
                    diff = sorted(k for k in keys
                                  if baseline[k] != fp[k])
                    if diff:
                        verdicts.append(
                            "diverged (" + ", ".join(diff) + ")")
                    # a sanctioned degradation takes the ladder instead
                    # of a restart, so the fire assertion is moot there
                    if check_fire and not degraded \
                            and not metrics.get(must_fire, 0):
                        verdicts.append(f"{must_fire} never fired")
                    row = {
                        "cell": cell,
                        "ok": not verdicts,
                        "why": "; ".join(verdicts),
                        "fire_checked": check_fire and not degraded,
                        "degraded_recovered": degraded and degrade_ok
                        and not verdicts,
                        "seconds": round(time.time() - t0, 3),
                        "mc_restart": metrics.get("runtime.mc_restart",
                                                  0),
                        "mc_retry": metrics.get("runtime.mc_retry", 0),
                        "mc_reissues": metrics.get(
                            "runtime.mc_token_reissues", 0),
                    }
                    report.append(row)
                    mark = "ok" if row["ok"] else "FAIL"
                    waived = "" if row["fire_checked"] else \
                        " (fire waived)"
                    if row["degraded_recovered"]:
                        waived = " (degraded, recovered)"
                    print(f"{cell:<52} {mark:>4}  "
                          f"restarts={row['mc_restart']:g} "
                          f"retries={row['mc_retry']:g} "
                          f"reissues={row['mc_reissues']:g}{waived}"
                          f"{'  [' + row['why'] + ']' if verdicts else ''}")
                    if verdicts:
                        failures.append(f"{cell}: {row['why']}")

    total = len(report)
    print("-" * 60)
    print(f"{total - len(failures)}/{total} cells passed, "
          f"{len(skips)} layout skip(s) "
          f"({time.time() - t_all:.1f}s, {args.seeds} seed(s), "
          f"{args.workers} workers)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"workers": args.workers, "seeds": args.seeds,
                       "cpu_count": os.cpu_count(),
                       "cells": report, "layout_skips": skips,
                       "failures": failures}, fh, indent=1)
            fh.write("\n")
        print(f"[report written to {args.json}]", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
