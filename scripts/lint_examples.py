"""Run the static lint engine over every example kernel.

Each ``examples/*.py`` embeds one or more MiniC kernels as module-level
string constants.  This script extracts every constant containing a
``#pragma expand`` loop, pushes it through the transformation pipeline,
and lints the output — the same gate CI applies to the benchmark suite
via ``repro lint --bench all``.

Usage:  python scripts/lint_examples.py [--fail-on-warning]

Exit status 0 when every kernel lints clean (or, without
``--fail-on-warning``, produces no error-severity finding), 1 otherwise.
"""

import importlib.util
import pathlib
import sys

from repro.diagnostics import severity_rank
from repro.frontend import ast, parse_and_analyze
from repro.lint import run_lint
from repro.transform import expand_for_threads

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(
        f"_lint_example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _kernels(module):
    """Module-level string constants holding a candidate loop."""
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        value = getattr(module, name)
        if isinstance(value, str) and "#pragma expand" in value:
            yield name, value


def lint_kernel(title, source):
    program, sema = parse_and_analyze(source)
    labels = [
        loop.label for loop in ast.iter_loops(program)
        if loop.label and loop.pragmas
    ]
    if not labels:
        print(f"{title}: no labeled #pragma expand loop", file=sys.stderr)
        return []
    result = expand_for_threads(program, sema, labels)
    report = run_lint(result)
    for diag in report.findings:
        print(diag.render())
    print(f"[{title}: {report.rules_run} rules, "
          f"{len(report.findings)} finding(s)]", file=sys.stderr)
    return report.findings


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    fail_on_warning = "--fail-on-warning" in argv
    findings = []
    for path in sorted(EXAMPLES.glob("*.py")):
        module = _load_module(path)
        for name, source in _kernels(module):
            findings.extend(lint_kernel(f"{path.name}:{name}", source))
    has_errors = any(
        severity_rank(d.severity) >= severity_rank("error")
        for d in findings
    )
    if has_errors or (fail_on_warning and findings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
