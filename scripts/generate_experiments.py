"""Regenerate EXPERIMENTS.md: run the full harness and write every
table/figure with paper-vs-ours commentary.

Usage:  python scripts/generate_experiments.py [output-path]
"""

import sys
import time

from repro.bench import Harness, all_benchmarks
from repro.bench.report import (
    fig8_breakdown, fig9_overhead, fig10_runtime_priv, fig11_speedup,
    fig12_breakdown, fig13_rtpriv_speedup, fig14_memory, harmonic_mean,
    table4, table5,
)

PREAMBLE = """\
# EXPERIMENTS — paper vs. this reproduction

Regenerate with `python scripts/generate_experiments.py` (or run
`pytest benchmarks/` for the same numbers with shape assertions).

All numbers come from the cycle-model interpreter described in
DESIGN.md; absolute values are not comparable to the paper's Opteron
wall-clock times, but the *shape* — who wins, by what factor, where
curves bend — is the reproduction target.  Every parallel/transformed
run's program output is verified against the sequential original, and
DOALL runs are checked race-free at byte granularity.

Known deviations (see DESIGN.md §7 for why):

* Our Figure 8 "free" share is larger than the paper's because our
  stack model gives per-call locals fresh addresses (they are
  privatized by thread-private stacks in both systems; the paper's
  profiler sees them at reused addresses and counts them expandable).
* DOACROSS kernels (456.hmmer especially) scale better than the
  paper's because our synchronization placement is per-statement,
  finer than their implementation ("our synchronization placement
  algorithm still has room for improvement", §4.3).
* Table 4's #LOC column shows our scaled-down MiniC kernel next to the
  paper's original benchmark size.
* `histogram` is an extra kernel (suite `repro-extra`, no paper
  counterpart): its loop is rejected by the paper's §3.2 three-way
  classification and only parallelizes through the commutative access
  class (DESIGN.md §16) — `repro lint --bench histogram --json` shows
  the machine-checked parallelism certificate behind the DOALL claim.
"""


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    t0 = time.time()
    harness = Harness()
    results = {}
    for spec in all_benchmarks():
        print(f"measuring {spec.name} ...", flush=True)
        results[spec.name] = harness.result(spec.name)

    sections = [
        ("Table 4 — benchmark characteristics", table4(results),
         "Loop nesting levels, parallelism kinds and dominant loop "
         "shares match the paper's Table 4."),
        ("Table 5 — privatized data structures", table5(results),
         "Structure counts (aggregates + allocation sites; scalars are "
         "ordinary scalar expansion) match the paper's Table 5 exactly "
         "on all eight benchmarks."),
        ("Figure 8 — dynamic access breakdown", fig8_breakdown(results),
         "Every kernel shows a substantial expandable share and almost "
         "no unremovable carried accesses in the parallel region — the "
         "paper's argument that expansion unlocks these loops."),
        ("Figure 9 — expansion overhead (sequential)",
         fig9_overhead(results),
         "Optimized overhead stays near the paper's <5% band for most "
         "kernels; unoptimized expansion lands in the paper's ~1.8x "
         "harmonic-mean territory."),
        ("Figure 10 — vs. runtime privatization",
         fig10_runtime_priv(results),
         "Runtime privatization pays per-access monitoring: much "
         "higher overhead than expansion everywhere except md5, whose "
         "few private accesses the paper also calls out as the cheap "
         "case."),
        ("Figure 11 — speedups with expansion", fig11_speedup(results),
         "DOALL kernels scale toward 8 threads; DOACROSS and "
         "memory-bound kernels plateau past 4 (sync and bandwidth), "
         "as in the paper."),
        ("Figure 12 — 8-thread cycle breakdown", fig12_breakdown(results),
         "Synchronization/wait dominates 256.bzip2 at 8 threads (the "
         "paper's headline Figure 12 observation); DOALL kernels are "
         "work-dominated."),
        ("Figure 13 — runtime privatization speedup",
         fig13_rtpriv_speedup(results),
         "Mostly no speedup — monitoring overhead eats the "
         "parallelism — exactly the paper's result; md5 is again the "
         "exception."),
        ("Figure 14 — memory usage", fig14_memory(results),
         "Expansion grows memory only for the privatized structures "
         "(lbm stays ~1x, scratch-heavy kernels grow with N); runtime "
         "privatization's copies are comparable or larger."),
    ]

    hm4 = harmonic_mean([r.expansion[4].total_speedup
                         for r in results.values()])
    hm8 = harmonic_mean([r.expansion[8].total_speedup
                         for r in results.values()])

    with open(out_path, "w") as fh:
        fh.write(PREAMBLE)
        fh.write(
            "\nHeadline result: harmonic-mean total-program speedup "
            f"**{hm4:.2f}x at 4 threads** (paper: 1.93) and "
            f"**{hm8:.2f}x at 8 threads** (paper: 2.24).\n"
        )
        for title, body, comment in sections:
            fh.write(f"\n## {title}\n\n```\n{body}\n```\n\n{comment}\n")
        fh.write(
            f"\n---\nGenerated in {time.time() - t0:.0f}s by "
            "scripts/generate_experiments.py.\n"
        )
    print(f"wrote {out_path} in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
