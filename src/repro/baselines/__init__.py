"""Comparison baselines: SpiceC-style runtime privatization and the
no-privatization (sync-only) parallelization."""

from .runtime_priv import (
    AccessControl, BaselineRunner, COPY_BYTE, MONITOR_COST, TABLE_COST,
    run_runtime_privatization, run_sync_only,
)

__all__ = [
    "run_runtime_privatization", "run_sync_only", "BaselineRunner",
    "AccessControl", "MONITOR_COST", "COPY_BYTE", "TABLE_COST",
]
