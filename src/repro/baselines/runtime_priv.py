"""SpiceC-style runtime privatization baseline (paper §4.2.1, [12]).

Instead of transforming the program, this baseline keeps the *original*
code and privatizes at run time: every thread-private memory access
(identified exactly as in §3.2, so the comparison isolates the
*mechanism*) is routed through a runtime access-control layer that

* locates the accessed structure (modeled after SpiceC's safe variant
  of the *heap prefix* lookup, since a pointer may target any interior
  byte of a structure, not just its start);
* on a thread's first touch of a structure, allocates a thread-local
  copy and copies the shared contents in;
* redirects the access into the thread-local copy;
* at loop exit, commits thread-local changes back to the shared space
  and releases the copies.

Every monitored access pays a runtime-call + lookup cost
(:data:`MONITOR_COST`); copy-in and commit pay per-byte costs.  This is
the overhead structure the paper measures in Figures 10/13/14.

Implementation: the access-control layer is a *redirector* installed on
the MiniC machine — the loads and stores really land in the per-thread
copies, so the baseline is executable and race-checked, not merely a
cost annotation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..frontend import ast
from ..interp import memory as mem
from ..interp.machine import Machine, resolve_engine
from ..interp.trace import RaceChecker
from ..analysis.privatization import PrivatizationResult
from ..analysis.profiler import LoopProfile
from ..runtime.stats import LoopExecution, ParallelOutcome
from ..transform.pipeline import (
    DOACROSS, DOALL, parse_loop_kind,
)

#: cycles per monitored access: runtime call + heap-prefix/table lookup
MONITOR_COST = 35.0
#: per-byte cost of copy-in and commit traffic
COPY_BYTE = 0.25
#: per-structure table management on copy creation / commit
TABLE_COST = 60.0


class AccessControl:
    """The runtime library: per-thread translation of private accesses.

    ``translate`` is installed as the machine's redirector while a
    privatized loop is running.
    """

    def __init__(self, machine: Machine, private_sites: Set[int]):
        self.machine = machine
        self.private_sites = private_sites
        #: per-thread: shared Allocation -> local copy address
        self.tables: List[Dict[mem.Allocation, int]] = []
        self.active = False
        self.copies_created = 0
        #: race checker to exempt copy storage from (thread-local
        #: copies are single-owner by construction; their recycling
        #: through the allocator is runtime-library bookkeeping, not a
        #: program race)
        self.checker = None
        machine.free_hooks.append(self._on_free)

    def begin_loop(self, nthreads: int) -> None:
        self.tables = [dict() for _ in range(nthreads)]
        self.active = True
        self.machine.redirector = self.translate

    def translate(self, site: int, addr: int, size: int,
                  is_store: bool) -> int:
        if not self.active or site not in self.private_sites:
            return addr
        machine = self.machine
        machine.cost.cycles += MONITOR_COST
        record = machine.memory.find(addr)
        if record is None or not record.live:
            return addr
        table = self.tables[machine.tid]
        copy_addr = table.get(record)
        if copy_addr is None:
            copy_addr = self._copy_in(record, table)
        return copy_addr + (addr - record.addr)

    def _copy_in(self, record: mem.Allocation,
                 table: Dict[mem.Allocation, int]) -> int:
        machine = self.machine
        copy_addr = machine.memory.alloc(
            record.size, mem.HEAP, label=f"priv-copy:{record.label}",
            tag=record.tag,
        )
        payload = machine.memory.data[record.addr:record.addr + record.size]
        machine.memory.data[copy_addr:copy_addr + record.size] = payload
        machine.cost.cycles += TABLE_COST + record.size * COPY_BYTE
        table[record] = copy_addr
        self.copies_created += 1
        if self.checker is not None:
            self.checker.exempt |= set(
                range(copy_addr, copy_addr + record.size)
            )
        return copy_addr

    def commit_and_release(self) -> None:
        """Loop exit: commit thread-local changes to the shared space
        (thread order; private data is dead-after-loop by Definition 5,
        but SpiceC cannot know that and pays the traffic) and free the
        copies."""
        machine = self.machine
        for table in self.tables:
            for record, copy_addr in table.items():
                if record.live:
                    payload = machine.memory.data[
                        copy_addr:copy_addr + record.size
                    ]
                    machine.memory.data[
                        record.addr:record.addr + record.size
                    ] = payload
                machine.cost.cycles += TABLE_COST + record.size * COPY_BYTE
                machine.memory.free(copy_addr)
            table.clear()
        self.active = False
        self.machine.redirector = None

    def _on_free(self, addr: int) -> None:
        """free() of a shared structure invalidates thread-local copies
        (and frees them), so later reuse of the address starts clean."""
        if not self.active:
            return
        record = self.machine.memory.find(addr)
        if record is None:
            return
        for table in self.tables:
            copy_addr = table.pop(record, None)
            if copy_addr is not None:
                self.machine.memory.free(copy_addr)


class _LoopPlan:
    """What the baseline needs to know about one candidate loop."""

    def __init__(self, loop: ast.LoopStmt, kind: str,
                 private_sites: Set[int], serial_stmt_nids: Set[int]):
        self.loop = loop
        self.kind = kind
        self.private_sites = private_sites
        self.serial_stmt_nids = serial_stmt_nids


def _serial_stmts_for(
    loop: ast.LoopStmt, profile: LoopProfile,
    private_sites: Set[int],
) -> Set[int]:
    """Top-level body statements with carried deps not removed by the
    given privatization (for sync placement)."""
    surviving: Set[int] = set()
    for edge in profile.ddg.edges:
        if not edge.carried:
            continue
        if edge.src in private_sites and edge.dst in private_sites:
            continue
        surviving.add(edge.src)
        surviving.add(edge.dst)
    body = loop.body
    stmts = body.stmts if isinstance(body, ast.Block) else [body]
    out: Set[int] = set()
    for stmt in stmts:
        nids = {n.nid for n in stmt.walk()}
        if nids & surviving:
            out.add(stmt.nid)
    return out


class BaselineRunner:
    """Runs the *original* program with runtime privatization (or with
    no privatization at all — the sync-only baseline)."""

    def __init__(
        self,
        program: ast.Program,
        sema,
        plans: List[_LoopPlan],
        nthreads: int,
        privatize: bool = True,
        check_races: bool = True,
        engine: Optional[str] = None,
    ):
        self.nthreads = nthreads
        self.outcome = ParallelOutcome(nthreads)
        # the baseline needs observers + the access-control redirector,
        # so bare is promoted to the instrumented bytecode variant
        eng = resolve_engine(engine)
        if eng == "bytecode-bare":
            eng = "bytecode"
        self.machine = Machine(program, sema, engine=eng)
        self.machine.nthreads = nthreads
        self.privatize = privatize
        all_private: Set[int] = set()
        for plan in plans:
            all_private |= plan.private_sites
        self.access_control = AccessControl(
            self.machine, all_private if privatize else set()
        )
        self.checker: Optional[RaceChecker] = None
        if check_races:
            self.checker = RaceChecker()
            self.machine.observers.append(self.checker)
            self.access_control.checker = self.checker
        for plan in plans:
            self.machine.loop_controllers[plan.loop.nid] = \
                _BaselineController(self, plan)

    def run(self, entry: str = "main",
            raise_on_race: bool = True) -> ParallelOutcome:
        outcome = self.outcome
        outcome.exit_code = self.machine.run(entry)
        outcome.output = list(self.machine.output)
        outcome.total_cycles = self.machine.cost.cycles
        outcome.peak_memory = self.machine.memory.peak_footprint()
        if outcome.races and raise_on_race:
            raise RuntimeError(
                f"runtime privatization left {len(outcome.races)} "
                "cross-thread conflicts"
            )
        return outcome


class _BaselineController:
    """Executes a candidate loop under the baseline: same scheduling as
    the expansion runtime (static chunks for DOALL, dynamic chunk=1
    with pipelined serial sections for DOACROSS), but privatization is
    performed by the access-control layer at run time."""

    def __init__(self, runner: BaselineRunner, plan: _LoopPlan):
        self.runner = runner
        self.plan = plan
        self.execution = runner.outcome.loops.setdefault(
            plan.loop.label, LoopExecution(plan.loop.label, runner.nthreads)
        )

    def __call__(self, machine: Machine, loop: ast.LoopStmt) -> None:
        runner = self.runner
        self.execution.executions += 1
        runner.access_control.begin_loop(runner.nthreads)
        try:
            inner = self._make_inner(loop)
            inner(machine, loop)
        finally:
            # commit runs on the main clock, as a serial epilogue
            runner.access_control.commit_and_release()

    def _make_inner(self, loop: ast.LoopStmt):
        from ..runtime import parallel as par

        runner = self.runner
        plan = self.plan

        class _Shim:
            """Adapts a baseline plan to the parallel controllers'
            TransformedLoop interface."""
            def __init__(self):
                self.loop = plan.loop
                self.kind = plan.kind
                self.serial_stmt_origins = plan.serial_stmt_nids

        shim_runner = _ShimRunner(runner, self.execution)
        if plan.kind == DOALL:
            controller = par._DoallController(shim_runner, _Shim())
        else:
            controller = par._DoacrossController(shim_runner, _Shim())
        return controller


class _ShimRunner:
    """Minimal runner facade reused by the baseline's controllers."""

    def __init__(self, runner: BaselineRunner, execution: LoopExecution):
        self.nthreads = runner.nthreads
        self.checker = runner.checker
        self.chunk = 1
        self.outcome = runner.outcome
        # the controller looks up the LoopExecution by label
        self.outcome.loops[execution.label] = execution


def run_runtime_privatization(
    program: ast.Program,
    sema,
    loop_labels: List[str],
    profiles: Dict[str, LoopProfile],
    privs: Dict[str, PrivatizationResult],
    nthreads: int,
    entry: str = "main",
    check_races: bool = True,
    raise_on_race: bool = True,
    engine: Optional[str] = None,
) -> ParallelOutcome:
    """Run the original program under SpiceC-style runtime privatization."""
    plans = []
    for label in loop_labels:
        loop = ast.find_loop(program, label)
        priv = privs[label]
        plans.append(_LoopPlan(
            loop, parse_loop_kind(loop), priv.private_sites,
            _serial_stmts_for(loop, profiles[label], priv.private_sites),
        ))
    runner = BaselineRunner(
        program, sema, plans, nthreads, privatize=True,
        check_races=check_races, engine=engine,
    )
    return runner.run(entry, raise_on_race=raise_on_race)


def run_sync_only(
    program: ast.Program,
    sema,
    loop_labels: List[str],
    profiles: Dict[str, LoopProfile],
    nthreads: int,
    entry: str = "main",
    engine: Optional[str] = None,
) -> ParallelOutcome:
    """The no-privatization baseline (paper §4.3): every statement with
    *any* loop-carried dependence — including the ones privatization
    would remove — must be synchronized, serializing most of the loop."""
    plans = []
    for label in loop_labels:
        loop = ast.find_loop(program, label)
        # no privatization: nothing is private, everything carried syncs
        serial = _serial_stmts_for(loop, profiles[label], set())
        plans.append(_LoopPlan(loop, DOACROSS, set(), serial))
    runner = BaselineRunner(
        program, sema, plans, nthreads, privatize=False, check_races=False,
        engine=engine,
    )
    return runner.run(entry, raise_on_race=False)
