"""MiniC recursive-descent parser.

Grammar is a pragmatic C subset sufficient for the benchmark kernels:

* top level: struct definitions, global variable declarations,
  function definitions/prototypes
* declarations with pointer/array declarators and brace initializers
* all C statements except ``switch`` and ``goto``
* full C expression grammar (precedence climbing) including casts,
  ``sizeof``, ternary and comma operators
* ``label:`` before a loop names it for candidate selection
* ``#pragma ...`` before a loop is attached to that loop's ``pragmas``
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .ctypes import (
    CType, DOUBLE, FLOAT, VOID, ArrayType, IntType, PointerType, StructType,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}:{token.col}: {message} (at {token.text!r})")
        self.token = token


#: binary operator precedence (higher binds tighter)
_BINOP_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "struct", "const", "extern", "static",
}


class Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0
        #: struct tag -> StructType (interning supports recursive structs)
        self.structs: dict = {}

    # -- token helpers -------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None, ahead: int = 0) -> bool:
        tok = self._peek(ahead)
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}", self._peek())
        return self._next()

    def _loc(self) -> Tuple[int, int]:
        tok = self._peek()
        return (tok.line, tok.col)

    # -- types ----------------------------------------------------------------
    def _at_type_start(self, ahead: int = 0) -> bool:
        tok = self._peek(ahead)
        return tok.kind == "KW" and tok.text in _TYPE_KEYWORDS

    def _parse_base_type(self) -> CType:
        """Parse declaration specifiers into a base type."""
        while self._accept("KW", "const") or self._accept("KW", "extern") or \
                self._accept("KW", "static"):
            pass
        signed = True
        saw_sign = False
        if self._accept("KW", "unsigned"):
            signed = False
            saw_sign = True
        elif self._accept("KW", "signed"):
            saw_sign = True

        tok = self._peek()
        if tok.kind == "KW" and tok.text == "struct":
            self._next()
            name_tok = self._expect("ID")
            stype = self.structs.get(name_tok.text)
            if stype is None:
                stype = StructType(name_tok.text)
                self.structs[name_tok.text] = stype
            if self._check("OP", "{"):
                self._parse_struct_body(stype)
            return stype
        if tok.kind == "KW" and tok.text in (
            "void", "char", "short", "int", "long", "float", "double",
        ):
            self._next()
            kind = tok.text
            if kind == "long" and self._accept("KW", "long"):
                pass  # long long == long (8 bytes)
            if kind in ("short", "long") and self._accept("KW", "int"):
                pass  # short int / long int
            if kind == "void":
                return VOID
            if kind in ("float", "double"):
                return DOUBLE if kind == "double" else FLOAT
            base = IntType(kind, signed)
            while self._accept("KW", "const"):
                pass
            return base
        if saw_sign:  # bare 'unsigned' means unsigned int
            return IntType("int", signed)
        raise ParseError("expected type", tok)

    def _parse_struct_body(self, stype: StructType) -> None:
        self._expect("OP", "{")
        fields: List[Tuple[str, CType]] = []
        while not self._check("OP", "}"):
            base = self._parse_base_type()
            while True:
                name, ftype = self._parse_declarator(base)
                fields.append((name, ftype))
                if not self._accept("OP", ","):
                    break
            self._expect("OP", ";")
        self._expect("OP", "}")
        stype.define(fields)

    def _parse_declarator(self, base: CType) -> Tuple[str, CType]:
        """Parse ``* ... name [n]...`` and return (name, full type).
        A non-constant first dimension (``int a[__nthreads]``) makes a
        variable-length array; the length expression is stashed on
        ``self._pending_vla`` for the declaration builder."""
        ctype = base
        while self._accept("OP", "*"):
            while self._accept("KW", "const"):
                pass
            ctype = PointerType(ctype)
        name_tok = self._expect("ID")
        ctype = self._parse_array_suffix(ctype, allow_vla=True)
        return name_tok.text, ctype

    def _parse_array_suffix(self, ctype: CType,
                            allow_vla: bool = False) -> CType:
        """Array dimensions apply outermost-first: ``int a[2][3]`` is an
        array of 2 arrays of 3 ints."""
        self._pending_vla = None
        dims: List[object] = []
        while self._accept("OP", "["):
            if self._check("OP", "]"):
                dims.append(None)
            elif self._check("INT"):
                dims.append(int(self._next().value))
            elif allow_vla:
                dims.append(self._parse_assignment())
            else:
                self._expect("INT")
            self._expect("OP", "]")
        for i, dim in enumerate(reversed(dims)):
            if isinstance(dim, (int, type(None))):
                ctype = ArrayType(ctype, dim)
            else:
                if i != len(dims) - 1:
                    raise ParseError(
                        "only the outermost array dimension may be "
                        "variable-length", self._peek(),
                    )
                ctype = ArrayType(ctype, None)
                self._pending_vla = dim
        return ctype

    def _parse_type_name(self) -> CType:
        """Abstract type for casts / sizeof: base, pointers, arrays."""
        ctype = self._parse_base_type()
        while self._accept("OP", "*"):
            ctype = PointerType(ctype)
        ctype = self._parse_array_suffix(ctype)
        return ctype

    # -- top level -------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self._check("EOF"):
            if self._check("PRAGMA"):
                self._next()  # top-level pragmas are informational
                continue
            decls.extend(self._parse_top_decl())
        return ast.Program(decls)

    def _parse_top_decl(self) -> List[ast.Node]:
        loc = self._loc()
        base = self._parse_base_type()
        # bare 'struct S;' or 'struct S { ... };'
        if self._accept("OP", ";"):
            if isinstance(base, StructType):
                return [ast.StructDecl(base, loc=loc)]
            return []
        name, ctype = self._parse_declarator(base)
        if self._check("OP", "("):
            return [self._parse_function(name, ctype, loc)]
        out: List[ast.Node] = []
        out.append(self._finish_var_decl(name, ctype, "global", loc))
        while self._accept("OP", ","):
            name, ctype = self._parse_declarator(base)
            out.append(self._finish_var_decl(name, ctype, "global", self._loc()))
        self._expect("OP", ";")
        result: List[ast.Node] = []
        if isinstance(base, StructType):
            result.append(ast.StructDecl(base, loc=loc))
        result.extend(out)
        return result

    def _finish_var_decl(
        self, name: str, ctype: CType, storage: str, loc
    ) -> ast.VarDecl:
        vla = getattr(self, "_pending_vla", None)
        self._pending_vla = None
        init = None
        if self._accept("OP", "="):
            init = self._parse_initializer()
        decl = ast.VarDecl(name, ctype, init, storage, loc=loc)
        if vla is not None:
            if storage == "global":
                raise ParseError(
                    "global variables cannot be variable-length", self._peek()
                )
            decl.vla_length = vla
        return decl

    def _parse_initializer(self):
        if self._accept("OP", "{"):
            items = []
            while not self._check("OP", "}"):
                items.append(self._parse_initializer())
                if not self._accept("OP", ","):
                    break
            self._expect("OP", "}")
            return items
        return self._parse_assignment()

    def _parse_function(self, name: str, ret_type: CType, loc) -> ast.FunctionDef:
        self._expect("OP", "(")
        params: List[ast.VarDecl] = []
        varargs = False
        if not self._check("OP", ")"):
            if self._check("KW", "void") and self._check("OP", ")", ahead=1):
                self._next()
            else:
                while True:
                    if self._accept("OP", "..."):
                        varargs = True
                        break
                    pbase = self._parse_base_type()
                    pname, ptype = self._parse_declarator(pbase)
                    ptype = ptype.decay()  # array params decay to pointers
                    params.append(
                        ast.VarDecl(pname, ptype, storage="param", loc=self._loc())
                    )
                    if not self._accept("OP", ","):
                        break
        self._expect("OP", ")")
        if self._accept("OP", ";"):
            fn = ast.FunctionDef(name, ret_type, params, None, loc=loc)
        else:
            body = self._parse_block()
            fn = ast.FunctionDef(name, ret_type, params, body, loc=loc)
        fn.varargs = varargs
        return fn

    # -- statements --------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        loc = self._loc()
        self._expect("OP", "{")
        stmts: List[ast.Stmt] = []
        while not self._check("OP", "}"):
            stmts.append(self._parse_statement())
        self._expect("OP", "}")
        return ast.Block(stmts, loc=loc)

    def _parse_statement(self) -> ast.Stmt:
        pragmas: List[str] = []
        while self._check("PRAGMA"):
            pragmas.append(self._next().text)
        label: Optional[str] = None
        if self._check("ID") and self._check("OP", ":", ahead=1):
            label = self._next().text
            self._next()  # ':'
        stmt = self._parse_statement_inner()
        if isinstance(stmt, ast.LoopStmt):
            stmt.pragmas.extend(pragmas)
            stmt.label = label
        elif pragmas or label:
            raise ParseError(
                "pragma/label must precede a loop", self._peek()
            )
        return stmt

    def _parse_statement_inner(self) -> ast.Stmt:
        loc = self._loc()
        if self._check("OP", "{"):
            return self._parse_block()
        if self._at_type_start():
            return self._parse_decl_stmt()
        if self._accept("KW", "if"):
            self._expect("OP", "(")
            cond = self._parse_expr()
            self._expect("OP", ")")
            then = self._parse_statement()
            els = self._parse_statement() if self._accept("KW", "else") else None
            return ast.If(cond, then, els, loc=loc)
        if self._accept("KW", "while"):
            self._expect("OP", "(")
            cond = self._parse_expr()
            self._expect("OP", ")")
            body = self._parse_statement()
            return ast.While(cond, body, loc=loc)
        if self._accept("KW", "do"):
            body = self._parse_statement()
            self._expect("KW", "while")
            self._expect("OP", "(")
            cond = self._parse_expr()
            self._expect("OP", ")")
            self._expect("OP", ";")
            return ast.DoWhile(body, cond, loc=loc)
        if self._accept("KW", "for"):
            self._expect("OP", "(")
            init: Optional[ast.Stmt] = None
            if not self._check("OP", ";"):
                if self._at_type_start():
                    init = self._parse_decl_stmt()
                else:
                    init = ast.ExprStmt(self._parse_expr(), loc=self._loc())
                    self._expect("OP", ";")
            else:
                self._next()
            cond = None if self._check("OP", ";") else self._parse_expr()
            self._expect("OP", ";")
            step = None if self._check("OP", ")") else self._parse_expr()
            self._expect("OP", ")")
            body = self._parse_statement()
            return ast.For(init, cond, step, body, loc=loc)
        if self._accept("KW", "return"):
            expr = None if self._check("OP", ";") else self._parse_expr()
            self._expect("OP", ";")
            return ast.Return(expr, loc=loc)
        if self._accept("KW", "break"):
            self._expect("OP", ";")
            return ast.Break(loc=loc)
        if self._accept("KW", "continue"):
            self._expect("OP", ";")
            return ast.Continue(loc=loc)
        if self._accept("OP", ";"):
            return ast.Block([], loc=loc)
        expr = self._parse_expr()
        self._expect("OP", ";")
        return ast.ExprStmt(expr, loc=loc)

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        loc = self._loc()
        base = self._parse_base_type()
        decls: List[ast.VarDecl] = []
        while True:
            name, ctype = self._parse_declarator(base)
            decls.append(self._finish_var_decl(name, ctype, "local", self._loc()))
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")
        return ast.DeclStmt(decls, loc=loc)

    # -- expressions ------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self._check("OP", ","):
            loc = self._loc()
            self._next()
            right = self._parse_assignment()
            expr = ast.Comma(expr, right, loc=loc)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind == "OP" and tok.text in _ASSIGN_OPS:
            self._next()
            right = self._parse_assignment()
            return ast.Assign(tok.text, left, right, loc=(tok.line, tok.col))
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._check("OP", "?"):
            loc = self._loc()
            self._next()
            then = self._parse_expr()
            self._expect("OP", ":")
            els = self._parse_conditional()
            return ast.Cond(cond, then, els, loc=loc)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINOP_PREC.get(tok.text) if tok.kind == "OP" else None
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(tok.text, left, right, loc=(tok.line, tok.col))

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        loc = (tok.line, tok.col)
        if tok.kind == "OP" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            if tok.text == "-" and isinstance(operand, ast.IntLit):
                # fold negated literals so INT_MIN is one literal of
                # type int, not LONG-typed -(2147483648)
                return ast.IntLit(-operand.value, loc=loc)
            if tok.text == "-" and isinstance(operand, ast.FloatLit):
                return ast.FloatLit(-operand.value, loc=loc)
            return ast.Unary(tok.text, operand, loc=loc)
        if tok.kind == "OP" and tok.text in ("++", "--"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(tok.text, operand, loc=loc)
        if tok.kind == "KW" and tok.text == "sizeof":
            self._next()
            if self._check("OP", "(") and self._at_type_start(ahead=1):
                self._next()
                of_type = self._parse_type_name()
                self._expect("OP", ")")
                return ast.SizeofType(of_type, loc=loc)
            expr = self._parse_unary()
            return ast.SizeofExpr(expr, loc=loc)
        # cast: '(' type ')' unary
        if tok.kind == "OP" and tok.text == "(" and self._at_type_start(ahead=1):
            self._next()
            to_type = self._parse_type_name()
            self._expect("OP", ")")
            expr = self._parse_unary()
            return ast.Cast(to_type, expr, loc=loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            loc = (tok.line, tok.col)
            if self._accept("OP", "["):
                index = self._parse_expr()
                self._expect("OP", "]")
                expr = ast.Index(expr, index, loc=loc)
            elif self._accept("OP", "("):
                args: List[ast.Expr] = []
                if not self._check("OP", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept("OP", ","):
                            break
                self._expect("OP", ")")
                expr = ast.Call(expr, args, loc=loc)
            elif self._accept("OP", "."):
                name = self._expect("ID").text
                expr = ast.Member(expr, name, arrow=False, loc=loc)
            elif self._accept("OP", "->"):
                name = self._expect("ID").text
                expr = ast.Member(expr, name, arrow=True, loc=loc)
            elif self._check("OP", "++") or self._check("OP", "--"):
                op = self._next().text
                expr = ast.Unary("p" + op, expr, loc=loc)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        loc = (tok.line, tok.col)
        if tok.kind == "INT":
            return ast.IntLit(int(tok.value), loc=loc)
        if tok.kind == "CHAR":
            return ast.IntLit(int(tok.value), loc=loc)
        if tok.kind == "FLOAT":
            return ast.FloatLit(float(tok.value), loc=loc)
        if tok.kind == "STR":
            return ast.StrLit(str(tok.value), loc=loc)
        if tok.kind == "ID":
            return ast.Ident(tok.text, loc=loc)
        if tok.kind == "OP" and tok.text == "(":
            expr = self._parse_expr()
            self._expect("OP", ")")
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.Program:
    """Parse MiniC source into an (un-analyzed) AST."""
    return Parser(source).parse_program()
