"""MiniC type system.

Types model a faithful C subset with real byte-level layout semantics:
sizes, alignment, struct field offsets, array strides.  Byte-accurate
layout is load-bearing for this reproduction: the paper's *span*
machinery (Table 3) and bonded-mode redirection (Table 2) index into
expanded structures with expressions like ``tid * span / sizeof(*p)``,
and benchmarks such as 256.bzip2 recast buffers between 2-byte and
4-byte element types.

Types are immutable value objects (except ``StructType``, which is
interned by name so recursive structs can refer to themselves).
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, List, Optional, Sequence, Tuple


class CTypeError(Exception):
    """Raised for invalid type construction or layout queries."""


class CType:
    """Base class of all MiniC types."""

    #: size in bytes; None for incomplete types (void, unsized arrays)
    size: Optional[int] = None
    #: alignment in bytes
    align: int = 1

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return self is other

    def __hash__(self) -> int:
        return hash(repr(self))

    def __repr__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__

    # -- convenience predicates -------------------------------------------
    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_arith(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_scalar(self) -> bool:
        """Scalars are arithmetic values and pointers."""
        return self.is_arith or self.is_pointer

    def decay(self) -> "CType":
        """Array-to-pointer decay; identity for other types."""
        if isinstance(self, ArrayType):
            return PointerType(self.elem)
        return self


class VoidType(CType):
    size = None
    align = 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __repr__(self) -> str:
        return "void"


#: integer kind -> (size, struct format char for signed variant)
_INT_KINDS: Dict[str, Tuple[int, str]] = {
    "char": (1, "b"),
    "short": (2, "h"),
    "int": (4, "i"),
    "long": (8, "q"),
}


class IntType(CType):
    """Integral type: char/short/int/long, signed or unsigned."""

    def __init__(self, kind: str = "int", signed: bool = True):
        if kind not in _INT_KINDS:
            raise CTypeError(f"unknown integer kind {kind!r}")
        self.kind = kind
        self.signed = signed
        self.size, fmt = _INT_KINDS[kind]
        self.align = self.size
        self.fmt = fmt if signed else fmt.upper()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntType)
            and other.kind == self.kind
            and other.signed == self.signed
        )

    def __hash__(self) -> int:
        return hash(("int", self.kind, self.signed))

    def __repr__(self) -> str:
        return self.kind if self.signed else f"unsigned {self.kind}"

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (8 * self.size - 1))

    @property
    def max_value(self) -> int:
        bits = 8 * self.size
        return (1 << (bits - 1)) - 1 if self.signed else (1 << bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's representable range
        (two's-complement semantics, matching C's modular conversion)."""
        bits = 8 * self.size
        value &= (1 << bits) - 1
        if self.signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value


_FLOAT_KINDS: Dict[str, Tuple[int, str]] = {"float": (4, "f"), "double": (8, "d")}


class FloatType(CType):
    """Floating type: float or double."""

    def __init__(self, kind: str = "double"):
        if kind not in _FLOAT_KINDS:
            raise CTypeError(f"unknown float kind {kind!r}")
        self.kind = kind
        self.size, self.fmt = _FLOAT_KINDS[kind]
        self.align = self.size

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.kind == self.kind

    def __hash__(self) -> int:
        return hash(("float", self.kind))

    def __repr__(self) -> str:
        return self.kind

    def wrap(self, value: float) -> float:
        """Round-trip through the storage format (float32 truncation)."""
        if self.kind == "float":
            return _struct.unpack("<f", _struct.pack("<f", value))[0]
        return float(value)


#: pointers are 8 bytes, like the paper's x86-64 testbed
POINTER_SIZE = 8


class PointerType(CType):
    size = POINTER_SIZE
    align = POINTER_SIZE
    fmt = "q"

    def __init__(self, pointee: CType):
        self.pointee = pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(CType):
    def __init__(self, elem: CType, length: Optional[int]):
        if elem.size is None:
            raise CTypeError(f"array of incomplete type {elem!r}")
        if length is not None and length < 0:
            raise CTypeError("negative array length")
        self.elem = elem
        self.length = length
        self.size = None if length is None else elem.size * length
        self.align = elem.align

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.elem == self.elem
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return hash(("arr", self.elem, self.length))

    def __repr__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.elem!r}[{n}]"


class Field:
    """A struct field with its computed byte offset."""

    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, ctype: CType, offset: int = 0):
        self.name = name
        self.type = ctype
        self.offset = offset

    def __repr__(self) -> str:
        return f"{self.type!r} {self.name}@{self.offset}"


def _align_up(n: int, a: int) -> int:
    return (n + a - 1) // a * a


class StructType(CType):
    """A named struct. May start incomplete and be completed later
    (supports self-referential types like linked-list nodes)."""

    def __init__(self, name: str, fields: Optional[Sequence[Tuple[str, CType]]] = None):
        self.name = name
        self.fields: List[Field] = []
        self._by_name: Dict[str, Field] = {}
        self.size = None
        self.align = 1
        self.complete = False
        if fields is not None:
            self.define(fields)

    def define(self, fields: Sequence[Tuple[str, CType]]) -> "StructType":
        """Lay out the fields with natural alignment + tail padding."""
        if self.complete:
            raise CTypeError(f"struct {self.name} redefined")
        offset = 0
        align = 1
        for fname, ftype in fields:
            if ftype.size is None:
                raise CTypeError(
                    f"field {fname!r} of struct {self.name} has incomplete type"
                )
            if fname in self._by_name:
                raise CTypeError(f"duplicate field {fname!r} in struct {self.name}")
            offset = _align_up(offset, ftype.align)
            field = Field(fname, ftype, offset)
            self.fields.append(field)
            self._by_name[fname] = field
            offset += ftype.size
            align = max(align, ftype.align)
        self.size = _align_up(max(offset, 1), align)
        self.align = align
        self.complete = True
        return self

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise CTypeError(f"struct {self.name} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        # nominal typing, like C
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __repr__(self) -> str:
        return f"struct {self.name}"


class FunctionType(CType):
    size = None
    align = 1

    def __init__(self, ret: CType, params: Sequence[CType], varargs: bool = False):
        self.ret = ret
        self.params = list(params)
        self.varargs = varargs

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.varargs == self.varargs
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, tuple(self.params), self.varargs))

    def __repr__(self) -> str:
        ps = ", ".join(repr(p) for p in self.params)
        if self.varargs:
            ps = ps + ", ..." if ps else "..."
        return f"{self.ret!r}({ps})"


# -- canonical singletons ---------------------------------------------------
VOID = VoidType()
CHAR = IntType("char")
UCHAR = IntType("char", signed=False)
SHORT = IntType("short")
USHORT = IntType("short", signed=False)
INT = IntType("int")
UINT = IntType("int", signed=False)
LONG = IntType("long")
ULONG = IntType("long", signed=False)
FLOAT = FloatType("float")
DOUBLE = FloatType("double")
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)


def sizeof(ctype: CType) -> int:
    """C ``sizeof``. Raises on incomplete types (void, unsized arrays)."""
    if ctype.size is None:
        raise CTypeError(f"sizeof incomplete type {ctype!r}")
    return ctype.size


def common_arith_type(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions, simplified: any double wins,
    then float, then the wider/unsigned-er integer (minimum int)."""
    if not (a.is_arith and b.is_arith):
        raise CTypeError(f"no common arithmetic type for {a!r} and {b!r}")
    for kind in ("double", "float"):
        if (a.is_float and a.kind == kind) or (b.is_float and b.kind == kind):
            return FloatType(kind)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    # integer promotion: everything at least int
    rank = {"char": 0, "short": 1, "int": 2, "long": 3}
    kind = max(a.kind, b.kind, "int", key=lambda k: rank[k])
    signed = a.signed and b.signed if rank[a.kind] == rank[b.kind] else (
        a.signed if rank[a.kind] > rank[b.kind] else b.signed
    )
    # anything below int promotes to signed int
    if rank[kind] <= rank["int"] and kind != "int":
        return INT
    if kind == "int" and (a.kind != "int" or b.kind != "int"):
        # promoted operands: unsignedness only survives from same-rank ints
        signed = not (
            (a.kind == "int" and not a.signed) or (b.kind == "int" and not b.signed)
        )
    return IntType(kind, signed)


def is_assignable(dst: CType, src: CType) -> bool:
    """Loose C assignment compatibility used by the semantic checker."""
    if dst == src:
        return True
    if dst.is_arith and src.is_arith:
        return True
    if dst.is_pointer and src.is_pointer:
        d, s = dst.pointee, src.pointee  # type: ignore[attr-defined]
        return d.is_void or s.is_void or d == s
    if dst.is_pointer and src.is_integer:
        return True  # NULL and int->ptr casts are common in benchmark C
    if dst.is_integer and src.is_pointer:
        return True
    return False
