"""MiniC semantic analysis: scoped name resolution and type checking.

``analyze(program)`` annotates the AST in place:

* every :class:`~repro.frontend.ast.Ident` gets a ``decl`` link to its
  declaring :class:`VarDecl` or :class:`FunctionDef` (variables are
  identified by declaration object throughout the toolchain, never by
  name, so shadowing is handled correctly);
* every expression gets a ``ctype``;
* loose C conversion rules are checked (arith/pointer mixing mirrors
  what the benchmark C sources actually do, including int<->pointer
  casts and void* laundering).

The two *thread context* variables the expansion transform introduces —
``__tid`` (this thread's index) and ``__nthreads`` (thread count ``N``)
— are predeclared here so both original and transformed programs
analyze with the same machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from ..diagnostics import DiagnosableError, DiagnosticSink, diagnostic_of
from .ctypes import (
    CHAR, CType, DOUBLE, INT, LONG, VOID, VOID_PTR, ArrayType, CTypeError, FunctionType, PointerType, StructType, common_arith_type, is_assignable, sizeof,
)


class SemaError(DiagnosableError):
    default_code = "SEMA-CHECK"
    default_phase = "sema"

    def __init__(self, message: str, node: Optional[ast.Node] = None,
                 code: Optional[str] = None):
        loc = node.loc if node is not None else None
        if loc is not None:
            message = f"line {loc[0]}:{loc[1]}: {message}"
        super().__init__(message, code=code, loc=loc)
        self.node = node


#: name -> FunctionType of every builtin the interpreter provides
BUILTIN_SIGNATURES: Dict[str, FunctionType] = {
    "malloc": FunctionType(VOID_PTR, [LONG]),
    "calloc": FunctionType(VOID_PTR, [LONG, LONG]),
    "realloc": FunctionType(VOID_PTR, [VOID_PTR, LONG]),
    "free": FunctionType(VOID, [VOID_PTR]),
    "memset": FunctionType(VOID_PTR, [VOID_PTR, INT, LONG]),
    "memcpy": FunctionType(VOID_PTR, [VOID_PTR, VOID_PTR, LONG]),
    "memmove": FunctionType(VOID_PTR, [VOID_PTR, VOID_PTR, LONG]),
    "strlen": FunctionType(LONG, [PointerType(CHAR)]),
    "abs": FunctionType(INT, [INT]),
    "labs": FunctionType(LONG, [LONG]),
    "sqrt": FunctionType(DOUBLE, [DOUBLE]),
    "fabs": FunctionType(DOUBLE, [DOUBLE]),
    "floor": FunctionType(DOUBLE, [DOUBLE]),
    "ceil": FunctionType(DOUBLE, [DOUBLE]),
    "exp": FunctionType(DOUBLE, [DOUBLE]),
    "log": FunctionType(DOUBLE, [DOUBLE]),
    "sin": FunctionType(DOUBLE, [DOUBLE]),
    "cos": FunctionType(DOUBLE, [DOUBLE]),
    "pow": FunctionType(DOUBLE, [DOUBLE, DOUBLE]),
    "print_int": FunctionType(VOID, [LONG]),
    "print_double": FunctionType(VOID, [DOUBLE]),
    "print_str": FunctionType(VOID, [PointerType(CHAR)]),
    "exit": FunctionType(VOID, [INT]),
    "assert_true": FunctionType(VOID, [INT]),
}

#: thread-context variables usable by (transformed) programs
THREAD_CONTEXT_VARS = ("__tid", "__nthreads")


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.Node] = {}

    def declare(self, name: str, decl: ast.Node, node: Optional[ast.Node] = None):
        if name in self.names:
            raise SemaError(f"redeclaration of {name!r}", node)
        self.names[name] = decl

    def lookup(self, name: str) -> Optional[ast.Node]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemaResult:
    """Outcome of analysis: symbol tables the rest of the toolchain uses."""

    def __init__(self):
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.globals: List[ast.VarDecl] = []
        self.thread_context: Dict[str, ast.VarDecl] = {}
        self.structs: Dict[str, StructType] = {}


class Analyzer:
    def __init__(self, program: ast.Program,
                 sink: Optional[DiagnosticSink] = None):
        self.program = program
        self.result = SemaResult()
        self.global_scope = Scope()
        self.current_fn: Optional[ast.FunctionDef] = None
        self.sink = sink

    # -- entry ---------------------------------------------------------------
    def run(self) -> SemaResult:
        try:
            return self._run()
        except (SemaError, CTypeError) as exc:
            if self.sink is not None:
                self.sink.emit(diagnostic_of(exc))
            raise

    def _run(self) -> SemaResult:
        # predeclare thread context variables as implicit globals
        for name in THREAD_CONTEXT_VARS:
            decl = ast.VarDecl(name, INT, init=None, storage="global")
            self.global_scope.declare(name, decl)
            self.result.thread_context[name] = decl

        # first pass: declare all top-level names (allows forward calls)
        for decl in self.program.decls:
            if isinstance(decl, ast.FunctionDef):
                existing = self.result.functions.get(decl.name)
                if existing is not None and existing.body is not None and \
                        decl.body is not None:
                    raise SemaError(f"redefinition of {decl.name!r}", decl)
                if existing is None or decl.body is not None:
                    self.result.functions[decl.name] = decl
                    self.global_scope.names[decl.name] = decl
            elif isinstance(decl, ast.VarDecl):
                self.global_scope.declare(decl.name, decl, decl)
                self.result.globals.append(decl)
            elif isinstance(decl, ast.StructDecl):
                self.result.structs[decl.struct_type.name] = decl.struct_type

        # second pass: check global initializers and function bodies
        for decl in self.program.decls:
            if isinstance(decl, ast.VarDecl):
                self._check_var_init(decl, self.global_scope)
            elif isinstance(decl, ast.FunctionDef) and decl.body is not None:
                self._check_function(decl)
        return self.result

    # -- declarations ----------------------------------------------------------
    def _check_var_init(self, decl: ast.VarDecl, scope: Scope) -> None:
        if decl.ctype.is_void:
            raise SemaError(f"variable {decl.name!r} has void type", decl)
        if decl.init is None:
            return
        if isinstance(decl.init, list):
            self._check_brace_init(decl.init, decl.ctype, scope, decl)
        else:
            self._expr(decl.init, scope)
            init_t = self._value_type(decl.init)
            if not is_assignable(decl.ctype, init_t):
                raise SemaError(
                    f"cannot initialize {decl.ctype!r} with {init_t!r}", decl
                )

    def _check_brace_init(self, items, ctype: CType, scope: Scope, node) -> None:
        if isinstance(ctype, ArrayType):
            if ctype.length is not None and len(items) > ctype.length:
                raise SemaError("too many initializers", node)
            for item in items:
                if isinstance(item, list):
                    self._check_brace_init(item, ctype.elem, scope, node)
                else:
                    self._expr(item, scope)
        elif isinstance(ctype, StructType):
            if len(items) > len(ctype.fields):
                raise SemaError("too many initializers", node)
            for item, field in zip(items, ctype.fields):
                if isinstance(item, list):
                    self._check_brace_init(item, field.type, scope, node)
                else:
                    self._expr(item, scope)
        else:
            raise SemaError("brace initializer on scalar", node)

    def _check_function(self, fn: ast.FunctionDef) -> None:
        self.current_fn = fn
        scope = Scope(self.global_scope)
        for param in fn.params:
            scope.declare(param.name, param, param)
        self._stmt(fn.body, scope)
        self.current_fn = None

    # -- statements --------------------------------------------------------------
    def _stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = Scope(scope)
            for s in stmt.stmts:
                self._stmt(s, inner)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.vla_length is not None:
                    self._expr(decl.vla_length, scope)
                self._check_var_init(decl, scope)
                scope.declare(decl.name, decl, decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.els is not None:
                self._stmt(stmt.els, scope)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._stmt(stmt.body, scope)
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._expr(stmt.cond, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self._stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
                ret_t = self._value_type(stmt.expr)
                assert self.current_fn is not None
                if not self.current_fn.ret_type.is_void and not is_assignable(
                    self.current_fn.ret_type, ret_t
                ):
                    raise SemaError(
                        f"return type mismatch: {ret_t!r} vs "
                        f"{self.current_fn.ret_type!r}",
                        stmt,
                    )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover
            raise SemaError(f"unknown statement {stmt!r}", stmt)

    # -- expressions ----------------------------------------------------------
    def _value_type(self, expr: ast.Expr) -> CType:
        """The type of an expression when used as a value (arrays decay)."""
        assert expr.ctype is not None
        return expr.ctype.decay()

    def _expr(self, expr: ast.Expr, scope: Scope) -> CType:
        ctype = self._expr_inner(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: ast.Expr, scope: Scope) -> CType:
        if isinstance(expr, ast.IntLit):
            # int iff the value is representable in int32 (INT_MIN
            # included — C type-at-width semantics, not abs-magnitude)
            return INT if -0x80000000 <= expr.value <= 0x7FFFFFFF else LONG
        if isinstance(expr, ast.FloatLit):
            return DOUBLE
        if isinstance(expr, ast.StrLit):
            return ArrayType(CHAR, len(expr.value) + 1)
        if isinstance(expr, ast.Ident):
            decl = scope.lookup(expr.name)
            if decl is None:
                raise SemaError(f"undeclared identifier {expr.name!r}", expr)
            expr.decl = decl
            if isinstance(decl, ast.FunctionDef):
                return FunctionType(
                    decl.ret_type, [p.ctype for p in decl.params],
                    getattr(decl, "varargs", False),
                )
            assert isinstance(decl, ast.VarDecl)
            return decl.ctype
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, scope)
        if isinstance(expr, ast.Cond):
            self._expr(expr.cond, scope)
            t1 = self._value_type_of(expr.then, scope)
            t2 = self._value_type_of(expr.els, scope)
            if t1.is_arith and t2.is_arith:
                return common_arith_type(t1, t2)
            return t1
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        if isinstance(expr, ast.Index):
            base_t = self._value_type_of(expr.base, scope)
            idx_t = self._value_type_of(expr.index, scope)
            if not idx_t.is_integer:
                raise SemaError(f"array index has type {idx_t!r}", expr)
            if not base_t.is_pointer:
                raise SemaError(f"subscript of non-pointer {base_t!r}", expr)
            pointee = base_t.pointee
            if pointee.size is None:
                raise SemaError(f"subscript of pointer to {pointee!r}", expr)
            return pointee
        if isinstance(expr, ast.Member):
            base_t = self._expr(expr.base, scope)
            if expr.arrow:
                base_t = base_t.decay()
                if not base_t.is_pointer or not base_t.pointee.is_struct:
                    raise SemaError(f"-> on {base_t!r}", expr)
                stype = base_t.pointee
            else:
                if not base_t.is_struct:
                    raise SemaError(f". on non-struct {base_t!r}", expr)
                stype = base_t
            if not stype.has_field(expr.name):
                raise SemaError(
                    f"struct {stype.name} has no field {expr.name!r}", expr
                )
            return stype.field(expr.name).type
        if isinstance(expr, ast.Cast):
            self._expr(expr.expr, scope)
            return expr.to_type
        if isinstance(expr, ast.SizeofType):
            sizeof(expr.of_type)  # validate completeness
            return LONG
        if isinstance(expr, ast.SizeofExpr):
            inner_t = self._expr(expr.expr, scope)
            sizeof(inner_t)
            return LONG
        if isinstance(expr, ast.Comma):
            self._expr(expr.left, scope)
            return self._value_type_of(expr.right, scope)
        raise SemaError(f"unknown expression {expr!r}", expr)  # pragma: no cover

    def _value_type_of(self, expr: ast.Expr, scope: Scope) -> CType:
        self._expr(expr, scope)
        return self._value_type(expr)

    def _unary(self, expr: ast.Unary, scope: Scope) -> CType:
        op = expr.op
        if op == "&":
            operand_t = self._expr(expr.operand, scope)
            self._require_lvalue(expr.operand)
            return PointerType(operand_t)
        operand_t = self._value_type_of(expr.operand, scope)
        if op == "*":
            if not operand_t.is_pointer:
                raise SemaError(f"dereference of {operand_t!r}", expr)
            return operand_t.pointee
        if op in ("-",):
            if not operand_t.is_arith:
                raise SemaError(f"unary - on {operand_t!r}", expr)
            return common_arith_type(operand_t, INT) if operand_t.is_integer \
                else operand_t
        if op in ("!",):
            return INT
        if op == "~":
            if not operand_t.is_integer:
                raise SemaError(f"~ on {operand_t!r}", expr)
            return common_arith_type(operand_t, INT)
        if op in ("++", "--", "p++", "p--"):
            self._require_lvalue(expr.operand)
            if not (operand_t.is_arith or operand_t.is_pointer):
                raise SemaError(f"{op} on {operand_t!r}", expr)
            return operand_t
        raise SemaError(f"unknown unary {op!r}", expr)  # pragma: no cover

    def _binary(self, expr: ast.Binary, scope: Scope) -> CType:
        op = expr.op
        lt = self._value_type_of(expr.left, scope)
        rt = self._value_type_of(expr.right, scope)
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return INT
        if op in ("<<", ">>", "&", "|", "^", "%"):
            if not (lt.is_integer and rt.is_integer):
                raise SemaError(f"{op} needs integers, got {lt!r}, {rt!r}", expr)
            if op in ("<<", ">>"):
                return common_arith_type(lt, INT)
            return common_arith_type(lt, rt)
        if op == "+":
            if lt.is_pointer and rt.is_integer:
                return lt
            if lt.is_integer and rt.is_pointer:
                return rt
        if op == "-":
            if lt.is_pointer and rt.is_integer:
                return lt
            if lt.is_pointer and rt.is_pointer:
                return LONG
        if lt.is_arith and rt.is_arith:
            return common_arith_type(lt, rt)
        raise SemaError(f"invalid operands to {op}: {lt!r}, {rt!r}", expr)

    def _assign(self, expr: ast.Assign, scope: Scope) -> CType:
        target_t = self._expr(expr.target, scope)
        self._require_lvalue(expr.target)
        value_t = self._value_type_of(expr.value, scope)
        if expr.op == "=":
            if isinstance(target_t, StructType):
                if target_t != value_t:
                    raise SemaError(
                        f"struct assignment type mismatch: {target_t!r} vs "
                        f"{value_t!r}", expr,
                    )
            elif not is_assignable(target_t, value_t):
                raise SemaError(
                    f"cannot assign {value_t!r} to {target_t!r}", expr
                )
            return target_t
        base_op = expr.op[:-1]
        if target_t.is_pointer and base_op in ("+", "-") and value_t.is_integer:
            return target_t
        if not (target_t.is_arith and value_t.is_arith):
            raise SemaError(
                f"invalid compound assignment {expr.op} on {target_t!r}", expr
            )
        return target_t

    def _call(self, expr: ast.Call, scope: Scope) -> CType:
        name = expr.callee_name
        if name is not None and scope.lookup(name) is None:
            sig = BUILTIN_SIGNATURES.get(name)
            if sig is None:
                raise SemaError(f"call to unknown function {name!r}", expr)
            for arg in expr.args:
                self._expr(arg, scope)
            if len(expr.args) != len(sig.params):
                raise SemaError(
                    f"{name} expects {len(sig.params)} args, got "
                    f"{len(expr.args)}", expr,
                )
            for arg, pt in zip(expr.args, sig.params):
                at = self._value_type(arg)
                if not is_assignable(pt, at):
                    raise SemaError(
                        f"argument type {at!r} incompatible with {pt!r} "
                        f"in call to {name}", expr,
                    )
            expr.func.ctype = sig
            return sig.ret
        fn_t = self._expr(expr.func, scope)
        if not isinstance(fn_t, FunctionType):
            raise SemaError(f"call of non-function {fn_t!r}", expr)
        for arg in expr.args:
            self._expr(arg, scope)
        n_required = len(fn_t.params)
        if fn_t.varargs:
            if len(expr.args) < n_required:
                raise SemaError("too few arguments", expr)
        elif len(expr.args) != n_required:
            raise SemaError(
                f"expected {n_required} args, got {len(expr.args)}", expr
            )
        for arg, pt in zip(expr.args, fn_t.params):
            at = self._value_type(arg)
            if not is_assignable(pt, at) and not (
                isinstance(pt, StructType) and pt == at
            ):
                raise SemaError(
                    f"argument type {at!r} incompatible with {pt!r}", expr
                )
        return fn_t.ret

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, ast.FunctionDef):
                raise SemaError("function is not an lvalue", expr)
            return
        if isinstance(expr, (ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemaError("expression is not an lvalue", expr)


def analyze(program: ast.Program,
            sink: Optional[DiagnosticSink] = None) -> SemaResult:
    """Resolve names and type-check ``program`` in place.

    When a ``sink`` is given, any rejection is also recorded there as a
    structured :class:`~repro.diagnostics.Diagnostic` before the
    exception propagates."""
    return Analyzer(program, sink=sink).run()
