"""AST -> C-like source text.

The printer exists so users can inspect what the expansion transform
did to their program (the paper's Figures 1, 3 and 4 show exactly such
before/after listings), and so the test suite can assert round-trip
stability: ``parse(print(parse(src)))`` is structurally identical to
``parse(src)``.
"""

from __future__ import annotations

from typing import List

from . import ast
from .ctypes import (
    ArrayType, CType, FloatType, FunctionType, IntType, PointerType,
    StructType, VoidType,
)

_INDENT = "    "


def type_prefix_suffix(ctype: CType) -> "tuple[str, str]":
    """Split a type into declarator prefix/suffix around the name, so
    ``int (*)[3]``-style declarations print correctly for our subset
    (pointers bind into the prefix, arrays into the suffix)."""
    suffix = ""
    while isinstance(ctype, ArrayType):
        n = "" if ctype.length is None else str(ctype.length)
        suffix += f"[{n}]"
        ctype = ctype.elem
    prefix = format_type(ctype)
    return prefix, suffix


def format_type(ctype: CType) -> str:
    if isinstance(ctype, VoidType):
        return "void"
    if isinstance(ctype, IntType):
        return ctype.kind if ctype.signed else f"unsigned {ctype.kind}"
    if isinstance(ctype, FloatType):
        return ctype.kind
    if isinstance(ctype, PointerType):
        return format_type(ctype.pointee) + "*"
    if isinstance(ctype, StructType):
        return f"struct {ctype.name}"
    if isinstance(ctype, ArrayType):
        prefix, suffix = type_prefix_suffix(ctype)
        return prefix + suffix
    if isinstance(ctype, FunctionType):
        return repr(ctype)
    raise TypeError(f"cannot format {ctype!r}")  # pragma: no cover


class Printer:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0
        self._printed_structs: set = set()

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- program ----------------------------------------------------------
    def print_program(self, program: ast.Program) -> str:
        for decl in program.decls:
            if isinstance(decl, ast.StructDecl):
                self._struct(decl.struct_type)
            elif isinstance(decl, ast.VarDecl):
                self.emit(self._var_decl(decl) + ";")
            elif isinstance(decl, ast.FunctionDef):
                self._function(decl)
        return "\n".join(self.lines) + "\n"

    def _struct(self, stype: StructType) -> None:
        if stype.name in self._printed_structs:
            return
        self._printed_structs.add(stype.name)
        self.emit(f"struct {stype.name} {{")
        self.depth += 1
        for field in stype.fields:
            prefix, suffix = type_prefix_suffix(field.type)
            self.emit(f"{prefix} {field.name}{suffix};")
        self.depth -= 1
        self.emit("};")

    def _var_decl(self, decl: ast.VarDecl) -> str:
        prefix, suffix = type_prefix_suffix(decl.ctype)
        if decl.vla_length is not None and suffix.startswith("[]"):
            suffix = f"[{self.expr(decl.vla_length)}]" + suffix[2:]
        text = f"{prefix} {decl.name}{suffix}"
        if decl.init is not None:
            text += " = " + self._init(decl.init)
        return text

    def _init(self, init) -> str:
        if isinstance(init, list):
            return "{" + ", ".join(self._init(i) for i in init) + "}"
        return self.expr(init)

    def _function(self, fn: ast.FunctionDef) -> None:
        params = ", ".join(
            f"{type_prefix_suffix(p.ctype)[0]} {p.name}"
            f"{type_prefix_suffix(p.ctype)[1]}"
            for p in fn.params
        )
        if not params:
            params = "void"
        header = f"{format_type(fn.ret_type)} {fn.name}({params})"
        if fn.body is None:
            self.emit(header + ";")
            return
        self.emit(header)
        self._block(fn.body)

    # -- statements ---------------------------------------------------------
    def _block(self, block: ast.Block) -> None:
        self.emit("{")
        self.depth += 1
        for stmt in block.stmts:
            self.stmt(stmt)
        self.depth -= 1
        self.emit("}")

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LoopStmt):
            for pragma in stmt.pragmas:
                self.emit(f"#pragma {pragma}")
            if stmt.label:
                self.emit(f"{stmt.label}:")
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(self.expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self.emit(self._var_decl(decl) + ";")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({self.expr(stmt.cond)})")
            self._stmt_as_block(stmt.then)
            if stmt.els is not None:
                self.emit("else")
                self._stmt_as_block(stmt.els)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({self.expr(stmt.cond)})")
            self._stmt_as_block(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self.emit("do")
            self._stmt_as_block(stmt.body)
            self.emit(f"while ({self.expr(stmt.cond)});")
        elif isinstance(stmt, ast.For):
            init = ""
            if isinstance(stmt.init, ast.DeclStmt):
                init = "; ".join(self._var_decl(d) for d in stmt.init.decls)
            elif isinstance(stmt.init, ast.ExprStmt):
                init = self.expr(stmt.init.expr)
            cond = self.expr(stmt.cond) if stmt.cond is not None else ""
            step = self.expr(stmt.step) if stmt.step is not None else ""
            self.emit(f"for ({init}; {cond}; {step})")
            self._stmt_as_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.expr(stmt.expr)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        else:  # pragma: no cover
            raise TypeError(f"cannot print {stmt!r}")

    def _stmt_as_block(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        else:
            self.depth += 1
            self.stmt(stmt)
            self.depth -= 1

    # -- expressions -----------------------------------------------------------
    def expr(self, expr: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_prec(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, expr: ast.Expr) -> "tuple[str, int]":
        # precedence levels (higher = tighter); 100 for primaries
        if isinstance(expr, ast.IntLit):
            # negative literals print at unary precedence so contexts
            # like `a - -1` parenthesize and round-trip
            return str(expr.value), 100 if expr.value >= 0 else 80
        if isinstance(expr, ast.FloatLit):
            text = repr(expr.value)
            if "." not in text and "e" not in text and "inf" not in text:
                text += ".0"
            return text, 100
        if isinstance(expr, ast.StrLit):
            escaped = (
                expr.value.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
            )
            return f'"{escaped}"', 100
        if isinstance(expr, ast.Ident):
            return expr.name, 100
        if isinstance(expr, ast.Index):
            return f"{self.expr(expr.base, 90)}[{self.expr(expr.index)}]", 90
        if isinstance(expr, ast.Member):
            sep = "->" if expr.arrow else "."
            return f"{self.expr(expr.base, 90)}{sep}{expr.name}", 90
        if isinstance(expr, ast.Call):
            args = ", ".join(self.expr(a, 3) for a in expr.args)
            return f"{self.expr(expr.func, 90)}({args})", 90
        if isinstance(expr, ast.Unary):
            if expr.op.startswith("p"):
                return f"{self.expr(expr.operand, 90)}{expr.op[1:]}", 90
            sep = " " if expr.op in ("++", "--") else ""
            return f"{expr.op}{sep}{self.expr(expr.operand, 80)}", 80
        if isinstance(expr, ast.Cast):
            return f"({format_type(expr.to_type)}){self.expr(expr.expr, 80)}", 80
        if isinstance(expr, ast.SizeofType):
            return f"sizeof({format_type(expr.of_type)})", 100
        if isinstance(expr, ast.SizeofExpr):
            return f"sizeof({self.expr(expr.expr)})", 100
        if isinstance(expr, ast.Binary):
            prec = 10 + {
                "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5, "==": 6, "!=": 6,
                "<": 7, ">": 7, "<=": 7, ">=": 7, "<<": 8, ">>": 8,
                "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
            }[expr.op]
            left = self.expr(expr.left, prec)
            right = self.expr(expr.right, prec + 1)
            return f"{left} {expr.op} {right}", prec
        if isinstance(expr, ast.Cond):
            return (
                f"{self.expr(expr.cond, 5)} ? {self.expr(expr.then)} : "
                f"{self.expr(expr.els, 4)}",
                4,
            )
        if isinstance(expr, ast.Assign):
            return (
                f"{self.expr(expr.target, 90)} {expr.op} "
                f"{self.expr(expr.value, 3)}",
                3,
            )
        if isinstance(expr, ast.Comma):
            return f"{self.expr(expr.left, 1)}, {self.expr(expr.right, 2)}", 1
        raise TypeError(f"cannot print {expr!r}")  # pragma: no cover


def print_program(program: ast.Program) -> str:
    """Render a program AST back to C-like source."""
    return Printer().print_program(program)


def print_stmt(stmt: ast.Stmt) -> str:
    """Render a single statement (for debugging and docs)."""
    printer = Printer()
    printer.stmt(stmt)
    return "\n".join(printer.lines)


def print_expr(expr: ast.Expr) -> str:
    """Render a single expression."""
    return Printer().expr(expr)
