"""MiniC lexer.

Hand-written scanner producing a flat token list.  Supports the C
subset used by the benchmark kernels: identifiers, integer/float/char/
string literals, all C operators, ``//`` and ``/* */`` comments, and
``#pragma`` lines (kept as PRAGMA tokens so the parser can attach
parallelization annotations to the following loop).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "struct", "sizeof",
    "if", "else", "while", "do", "for", "return", "break", "continue",
    "extern", "static", "const",
}

# longest-match-first operator table
OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class Token(NamedTuple):
    kind: str          # 'ID' 'KW' 'INT' 'FLOAT' 'CHAR' 'STR' 'OP' 'PRAGMA' 'EOF'
    text: str
    value: object      # numeric value for literals, decoded str for STR
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


class Lexer:
    def __init__(self, source: str):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers --------------------------------------------------
    #: end-of-input sentinel: must be a real character so that
    #: membership tests like ``self._peek() in "uUlL"`` are False at
    #: EOF (the empty string is a substring of everything!)
    _EOF = "\0"

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else self._EOF

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    # -- scanning -----------------------------------------------------------
    def tokens(self) -> List[Token]:
        out = list(self._scan())
        out.append(Token("EOF", "", None, self.line, self.col))
        return out

    def _scan(self) -> Iterator[Token]:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.src):
                    raise self._error("unterminated block comment")
                self._advance(2)
                continue
            if ch == "#":
                tok = self._scan_directive()
                if tok is not None:
                    yield tok
                continue
            if ch.isalpha() or ch == "_":
                yield self._scan_word()
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._scan_number()
                continue
            if ch == "'":
                yield self._scan_char()
                continue
            if ch == '"':
                yield self._scan_string()
                continue
            yield self._scan_operator()

    def _scan_directive(self) -> Optional[Token]:
        line, col = self.line, self.col
        start = self.pos
        while self.pos < len(self.src) and self._peek() != "\n":
            self._advance()
        text = self.src[start:self.pos].strip()
        if text.startswith("#pragma"):
            return Token("PRAGMA", text[len("#pragma"):].strip(), None, line, col)
        # other directives (e.g. #include) are ignored: builtins are implicit
        return None

    def _scan_word(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start:self.pos]
        kind = "KW" if text in KEYWORDS else "ID"
        return Token(kind, text, None, line, col)

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.src[start:self.pos]
            self._skip_int_suffix()
            return Token("INT", text, int(text, 16), line, col)
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.src[start:self.pos]
        if is_float:
            if self._peek() in "fF":
                self._advance()
                return Token("FLOAT", text + "f", float(text), line, col)
            return Token("FLOAT", text, float(text), line, col)
        self._skip_int_suffix()
        return Token("INT", text, int(text, 10), line, col)

    def _skip_int_suffix(self) -> None:
        while self._peek() in "uUlL":
            self._advance()

    def _scan_escape(self) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise self._error("bad hex escape")
            return chr(int(digits, 16))
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise self._error(f"unknown escape \\{ch}")

    def _scan_char(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = ord(self._scan_escape())
        else:
            if self._peek() == self._EOF:
                raise self._error("unterminated char literal")
            value = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated char literal")
        self._advance()
        return Token("CHAR", f"'{chr(value)}'", value, line, col)

    def _scan_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == self._EOF or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._scan_escape())
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return Token("STR", f'"{value}"', value, line, col)

    def _scan_operator(self) -> Token:
        line, col = self.line, self.col
        for op in OPERATORS:
            if self.src.startswith(op, self.pos):
                self._advance(len(op))
                return Token("OP", op, None, line, col)
        raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source into a list ending with an EOF token."""
    return Lexer(source).tokens()
