"""MiniC abstract syntax tree.

Nodes follow the style of Python's :mod:`ast` module: each class lists
its child slots in ``_fields`` so generic visitors and rewriters
(:mod:`repro.transform.rewrite`) can traverse any node without
per-class code.

Every node receives a process-unique ``nid`` at construction.  The
dynamic dependence profiler identifies memory-access *sites*
(Definition 1's graph vertices) by the ``nid`` of the expression that
performs the access, so ids must be stable across a run but need not
survive serialization.

Expression nodes carry a ``ctype`` annotation filled in by
:mod:`repro.frontend.sema`.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .ctypes import CType

_nid_counter = itertools.count(1)


def reserve_nids(floor: int) -> None:
    """Advance the nid counter past ``floor``.

    Deserialized programs (the service's on-disk stage cache) carry the
    nids they were built with; any node created afterwards — e.g. by
    resuming the pipeline on a cached artifact — must not collide with
    them, or site/origin maps silently alias two nodes."""
    global _nid_counter
    current = next(_nid_counter)
    _nid_counter = itertools.count(max(current, floor + 1))


def max_nid(*roots) -> int:
    """Largest nid reachable from the given nodes (0 when empty)."""
    out = 0
    for root in roots:
        if root is None:
            continue
        for node in root.walk():
            if node.nid > out:
                out = node.nid
    return out


class Node:
    """Base AST node."""

    _fields: Tuple[str, ...] = ()

    def __init__(self, loc: Optional[Tuple[int, int]] = None):
        self.nid: int = next(_nid_counter)
        self.loc = loc or (0, 0)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (flattening lists)."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} #{self.nid}>"


# ===========================================================================
# Expressions
# ===========================================================================


class Expr(Node):
    """Base expression; ``ctype`` is set by semantic analysis."""

    def __init__(self, loc=None):
        super().__init__(loc)
        self.ctype: Optional[CType] = None


class IntLit(Expr):
    _fields = ()

    def __init__(self, value: int, loc=None):
        super().__init__(loc)
        self.value = value

    def __repr__(self) -> str:
        return f"<IntLit {self.value}>"


class FloatLit(Expr):
    _fields = ()

    def __init__(self, value: float, loc=None):
        super().__init__(loc)
        self.value = value


class StrLit(Expr):
    """A string literal; materialized as a static char array."""

    _fields = ()

    def __init__(self, value: str, loc=None):
        super().__init__(loc)
        self.value = value


class Ident(Expr):
    _fields = ()

    def __init__(self, name: str, loc=None):
        super().__init__(loc)
        self.name = name
        #: filled by sema: the declaring VarDecl or FunctionDef
        self.decl: Optional[Node] = None

    def __repr__(self) -> str:
        return f"<Ident {self.name}>"


class Unary(Expr):
    """Unary ops: ``- ! ~ * & ++pre --pre post++ post--``.

    ``op`` is one of: ``'-' '!' '~' '*' '&' '++' '--' 'p++' 'p--'``
    (``p`` prefix marks postfix forms).
    """

    _fields = ("operand",)

    def __init__(self, op: str, operand: Expr, loc=None):
        super().__init__(loc)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"<Unary {self.op}>"


class Binary(Expr):
    _fields = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, loc=None):
        super().__init__(loc)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"<Binary {self.op}>"


class Assign(Expr):
    """Assignment; ``op`` is ``'='`` or a compound op like ``'+='``."""

    _fields = ("target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, loc=None):
        super().__init__(loc)
        self.op = op
        self.target = target
        self.value = value


class Cond(Expr):
    """Ternary ``c ? t : f``."""

    _fields = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Expr, els: Expr, loc=None):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els


class Call(Expr):
    _fields = ("func", "args")

    def __init__(self, func: Expr, args: Sequence[Expr], loc=None):
        super().__init__(loc)
        self.func = func
        self.args = list(args)

    @property
    def callee_name(self) -> Optional[str]:
        return self.func.name if isinstance(self.func, Ident) else None


class Index(Expr):
    """Array subscript ``base[index]``."""

    _fields = ("base", "index")

    def __init__(self, base: Expr, index: Expr, loc=None):
        super().__init__(loc)
        self.base = base
        self.index = index


class Member(Expr):
    """Member access ``base.name`` or ``base->name``."""

    _fields = ("base",)

    def __init__(self, base: Expr, name: str, arrow: bool = False, loc=None):
        super().__init__(loc)
        self.base = base
        self.name = name
        self.arrow = arrow

    def __repr__(self) -> str:
        sep = "->" if self.arrow else "."
        return f"<Member {sep}{self.name}>"


class Cast(Expr):
    _fields = ("expr",)

    def __init__(self, to_type: CType, expr: Expr, loc=None):
        super().__init__(loc)
        self.to_type = to_type
        self.expr = expr


class SizeofType(Expr):
    _fields = ()

    def __init__(self, of_type: CType, loc=None):
        super().__init__(loc)
        self.of_type = of_type


class SizeofExpr(Expr):
    _fields = ("expr",)

    def __init__(self, expr: Expr, loc=None):
        super().__init__(loc)
        self.expr = expr


class Comma(Expr):
    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr, loc=None):
        super().__init__(loc)
        self.left = left
        self.right = right


# ===========================================================================
# Statements
# ===========================================================================


class Stmt(Node):
    pass


class Block(Stmt):
    _fields = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], loc=None):
        super().__init__(loc)
        self.stmts = list(stmts)


class ExprStmt(Stmt):
    _fields = ("expr",)

    def __init__(self, expr: Expr, loc=None):
        super().__init__(loc)
        self.expr = expr


class VarDecl(Node):
    """One declared variable (globals, locals, and params).

    ``storage`` is ``'global'``, ``'local'`` or ``'param'``.  ``init``
    is an optional initializer expression, or a list of expressions for
    array/struct brace initializers.
    """

    _fields = ("init",)

    def __init__(
        self,
        name: str,
        ctype: CType,
        init: Optional[Any] = None,
        storage: str = "local",
        loc=None,
    ):
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.storage = storage
        #: for expanded locals: a runtime length expression making this a
        #: variable-length array (paper Table 1's local expansion rows);
        #: the declared ctype is then ArrayType(elem, None)
        self.vla_length: Optional[Any] = None

    def children(self) -> Iterator[Node]:
        if isinstance(self.init, Node):
            yield self.init
        elif isinstance(self.init, list):
            for item in self.init:
                if isinstance(item, Node):
                    yield item

    def __repr__(self) -> str:
        return f"<VarDecl {self.name}: {self.ctype!r}>"


class DeclStmt(Stmt):
    _fields = ("decls",)

    def __init__(self, decls: Sequence[VarDecl], loc=None):
        super().__init__(loc)
        self.decls = list(decls)


class If(Stmt):
    _fields = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Stmt, els: Optional[Stmt] = None, loc=None):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els


class LoopStmt(Stmt):
    """Base for loops; carries parallelization pragmas and an optional
    label used to select candidate loops."""

    def __init__(self, loc=None):
        super().__init__(loc)
        self.pragmas: List[str] = []
        self.label: Optional[str] = None


class While(LoopStmt):
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, loc=None):
        super().__init__(loc)
        self.cond = cond
        self.body = body


class DoWhile(LoopStmt):
    _fields = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, loc=None):
        super().__init__(loc)
        self.body = body
        self.cond = cond


class For(LoopStmt):
    """``for (init; cond; step) body``; ``init`` may be a DeclStmt, an
    ExprStmt, or None."""

    _fields = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
        loc=None,
    ):
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    _fields = ("expr",)

    def __init__(self, expr: Optional[Expr], loc=None):
        super().__init__(loc)
        self.expr = expr


class Break(Stmt):
    _fields = ()


class Continue(Stmt):
    _fields = ()


# ===========================================================================
# Top level
# ===========================================================================


class FunctionDef(Node):
    _fields = ("params", "body")

    def __init__(
        self,
        name: str,
        ret_type: CType,
        params: Sequence[VarDecl],
        body: Optional[Block],
        loc=None,
    ):
        super().__init__(loc)
        self.name = name
        self.ret_type = ret_type
        self.params = list(params)
        self.body = body

    def __repr__(self) -> str:
        return f"<FunctionDef {self.name}>"


class StructDecl(Node):
    _fields = ()

    def __init__(self, struct_type, loc=None):
        super().__init__(loc)
        self.struct_type = struct_type


class Program(Node):
    _fields = ("decls",)

    def __init__(self, decls: Sequence[Node], loc=None):
        super().__init__(loc)
        self.decls = list(decls)

    def functions(self) -> Iterator[FunctionDef]:
        for d in self.decls:
            if isinstance(d, FunctionDef) and d.body is not None:
                yield d

    def function(self, name: str) -> FunctionDef:
        for f in self.functions():
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")

    def globals(self) -> Iterator[VarDecl]:
        for d in self.decls:
            if isinstance(d, VarDecl):
                yield d


def iter_loops(root: Node) -> Iterator[LoopStmt]:
    """All loops under ``root``, preorder."""
    for node in root.walk():
        if isinstance(node, LoopStmt):
            yield node


def find_loop(root: Node, label: str) -> LoopStmt:
    """Find the loop carrying ``label`` (set via ``label:`` syntax)."""
    for loop in iter_loops(root):
        if loop.label == label:
            return loop
    raise KeyError(f"no loop labeled {label!r}")
