"""MiniC frontend: lexer, parser, type system, semantic analysis, printer.

Typical use::

    from repro.frontend import parse_and_analyze
    program, sema = parse_and_analyze(source)
"""

from . import ast
from .ctypes import (
    CHAR, DOUBLE, FLOAT, INT, LONG, SHORT, VOID, VOID_PTR,
    ArrayType, CType, CTypeError, Field, FloatType, FunctionType, IntType,
    PointerType, StructType, VoidType, sizeof,
)
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .printer import format_type, print_expr, print_program, print_stmt
from .sema import BUILTIN_SIGNATURES, SemaError, SemaResult, analyze


def parse_and_analyze(source: str, tracer=None):
    """Parse and type-check MiniC source; returns ``(program, sema)``.

    ``tracer`` (a :class:`repro.obs.Tracer`) records ``parse`` and
    ``sema`` phase spans when given.
    """
    if tracer is None or not tracer:
        program = parse(source)
        sema = analyze(program)
        return program, sema
    with tracer.phase("parse", bytes=len(source)):
        program = parse(source)
    with tracer.phase("sema"):
        sema = analyze(program)
    return program, sema


__all__ = [
    "ast", "parse", "analyze", "parse_and_analyze", "tokenize",
    "print_program", "print_stmt", "print_expr", "format_type",
    "ParseError", "LexError", "SemaError", "CTypeError",
    "SemaResult", "BUILTIN_SIGNATURES", "Token",
    "CType", "IntType", "FloatType", "PointerType", "ArrayType",
    "StructType", "FunctionType", "VoidType", "Field", "sizeof",
    "VOID", "CHAR", "SHORT", "INT", "LONG", "FLOAT", "DOUBLE", "VOID_PTR",
]
