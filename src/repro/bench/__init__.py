"""Benchmark suite, measurement harness, and paper-figure reports."""

from . import report
from .harness import (
    BenchmarkResult, DEFAULT_HARNESS, Harness, ParallelPoint,
    VerificationError, benchmark_result,
)
from .suite import BenchmarkSpec, PaperNumbers, all_benchmarks, get
from .trajectory import (
    TRAJECTORY_SCHEMA, emit_trajectory, load_trajectory, trajectory_payload,
)

__all__ = [
    "BenchmarkSpec", "PaperNumbers", "get", "all_benchmarks",
    "Harness", "BenchmarkResult", "ParallelPoint", "benchmark_result",
    "DEFAULT_HARNESS", "VerificationError", "report",
    "TRAJECTORY_SCHEMA", "emit_trajectory", "load_trajectory",
    "trajectory_payload",
]
