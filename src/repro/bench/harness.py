"""Benchmark harness: runs every configuration the paper measures and
caches results so each table/figure regenerator shares the work.

Per benchmark the harness produces a :class:`BenchmarkResult` holding:

* the sequential baseline run (output, cycles, loop cycles, memory);
* loop profiles + Definition 4/5 classification + Figure 8 breakdown;
* transformed programs with and without §3.4 optimizations, their
  sequential overheads (Figure 9a/9b);
* runtime-privatization sequential overhead (Figure 10);
* parallel outcomes for 1/2/4/8 threads under expansion (Figure 11),
  runtime privatization (Figure 13), with cycle breakdowns (Figure 12)
  and memory multiples (Figure 14).

Every run's program output is checked against the sequential baseline —
a transformed or parallel run that computes a different answer fails
loudly rather than producing a pretty but wrong speedup.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..frontend import ast, parse_and_analyze
from ..frontend.sema import analyze
from ..transform.optimize import licm_globals
from ..transform.rewrite import clone_program
from ..analysis import (
    Breakdown, build_access_classes, classify, compute_breakdown,
    profile_loop,
)
from ..interp import Machine, resolve_engine
from ..runtime import run_parallel
from ..baselines import run_runtime_privatization, run_sync_only
from ..transform import expand_for_threads
from .suite import BenchmarkSpec, get

THREAD_COUNTS = (1, 2, 4, 8)


class VerificationError(AssertionError):
    """A transformed/parallel run produced different program output."""


class ParallelPoint:
    """Speedups and stats at one thread count."""

    def __init__(self, nthreads: int):
        self.nthreads = nthreads
        self.loop_speedup = 0.0
        self.total_speedup = 0.0
        self.memory_multiple = 1.0
        self.breakdown: Dict[str, float] = {}


class BenchmarkResult:
    """All measurements for one benchmark (lazily computed, cached)."""

    def __init__(self, spec: BenchmarkSpec):
        self.spec = spec
        # sequential baseline
        self.seq_output: List[str] = []
        self.seq_cycles = 0.0
        self.seq_loop_cycles = 0.0
        self.seq_memory = 0
        self.pct_time = 0.0
        # analysis
        self.breakdown: Optional[Breakdown] = None
        self.num_privatized = 0
        # figure 9 / 10 (sequential single-core overheads, native = 1.0)
        self.overhead_opt = 0.0
        self.overhead_unopt = 0.0
        self.overhead_rtpriv = 0.0
        # figures 11-14
        self.expansion: Dict[int, ParallelPoint] = {}
        self.rtpriv: Dict[int, ParallelPoint] = {}
        self.sync_only_speedup: float = 0.0
        #: interpreter tier the measurements ran on
        self.engine = "ast"
        #: execution backend of the parallel runs ("simulated"/"process")
        self.backend = "simulated"
        #: host wall-clock seconds per measurement phase, plus "total"
        self.wall: Dict[str, float] = {}
        #: host wall-clock seconds of the expansion parallel run, per
        #: thread count (real end-to-end speedup = wallclock[1]/[n])
        self.wallclock: Dict[int, float] = {}
        #: native-tier compile accounting for this benchmark (schema 4):
        #: {"compile_seconds", "so_cache_hits", "so_cache_misses"};
        #: ``None`` when the measurements did not run on the native tier
        self.native: Optional[Dict[str, float]] = None

    def point(self, nthreads: int) -> ParallelPoint:
        return self.expansion[nthreads]


def _seq_run(program, sema, engine: str = "ast") -> Machine:
    # unobserved straight-line run: the bare tier is behaviorally
    # identical and fastest of the bytecode variants; native keeps
    # native (the hardware-speed sequential run is the measurement)
    eng = engine if engine in ("ast", "native") else "bytecode-bare"
    machine = Machine(program, sema, engine=eng)
    machine.exit_code = machine.run()
    return machine


def _check_output(spec: BenchmarkSpec, expected: List[str],
                  got: List[str], what: str) -> None:
    if expected != got:
        raise VerificationError(
            f"{spec.name}: {what} output diverged: {got} != {expected}"
        )


class Harness:
    """Computes and caches BenchmarkResults.

    Pass a :class:`repro.obs.Tracer` to record per-benchmark phase
    spans and the runtime timelines of every measured parallel run.
    """

    def __init__(self, thread_counts=THREAD_COUNTS, tracer=None,
                 engine: Optional[str] = None,
                 backend: str = "simulated",
                 workers: Optional[int] = None):
        from ..obs import ensure_tracer

        self.thread_counts = tuple(thread_counts)
        self.tracer = ensure_tracer(tracer)
        #: interpreter tier; observer-driven measurements (profiling,
        #: parallel runs) promote bare to instrumented themselves
        self.engine = resolve_engine(engine)
        #: backend for the expansion parallel runs ("process" executes
        #: loops on real worker processes over shared memory)
        self.backend = backend
        self.workers = workers
        self._cache: Dict[str, BenchmarkResult] = {}

    def result(self, name: str) -> BenchmarkResult:
        cached = self._cache.get(name)
        if cached is None:
            with self.tracer.phase("bench", benchmark=name):
                cached = self._compute(get(name))
            self._cache[name] = cached
        return cached

    # -- the measurement protocol ----------------------------------------
    def _compute(self, spec: BenchmarkSpec) -> BenchmarkResult:
        tracer = self.tracer
        eng = self.engine
        result = BenchmarkResult(spec)
        result.engine = eng
        result.backend = self.backend
        wall = result.wall
        t_start = time.perf_counter()
        nb = None
        if eng == "native":
            from ..interp.native import backend as nb
            native0 = (nb.SO_CACHE_HITS, nb.SO_CACHE_MISSES,
                       nb.COMPILE_SECONDS)

        def clock(phase: str, since: float) -> float:
            now = time.perf_counter()
            wall[phase] = wall.get(phase, 0.0) + (now - since)
            return now

        t = time.perf_counter()
        program, sema = parse_and_analyze(spec.source, tracer=tracer)
        t = clock("frontend", t)

        # 1. sequential baseline.  The baseline gets the same standard
        # loop-invariant-code-motion treatment the transform's output
        # enjoys (a native compiler would optimize both), so overheads
        # measure the privatization mechanism, not compiler maturity.
        base_prog, _nid_map = clone_program(program)
        licm_globals(base_prog)
        base_sema = analyze(base_prog)
        with tracer.phase("sequential-baseline", benchmark=spec.name):
            seq = _seq_run(base_prog, base_sema, engine=eng)
        result.seq_output = list(seq.output)
        result.seq_cycles = seq.cost.cycles
        result.seq_memory = seq.memory.peak_footprint()
        t = clock("sequential-baseline", t)

        # 2. profiles + classification (one run per candidate loop),
        # on the pristine program (the transform consumes these sites)
        profiles = {}
        privs = {}
        agg_breakdown = Breakdown(0, 0, 0)
        for label in spec.loop_labels:
            loop = ast.find_loop(program, label)
            profile = profile_loop(program, sema, loop, engine=eng)
            profiles[label] = profile
            priv = classify(profile.ddg, build_access_classes(profile.ddg))
            privs[label] = priv
            bd = compute_breakdown(profile.ddg, priv)
            agg_breakdown = Breakdown(
                agg_breakdown.free + bd.free,
                agg_breakdown.expandable + bd.expandable,
                agg_breakdown.carried + bd.carried,
            )
        result.breakdown = agg_breakdown
        # baseline loop cycles come from the LICM'd baseline program
        loop_cycles = 0.0
        for label in spec.loop_labels:
            base_loop = ast.find_loop(base_prog, label)
            base_profile = profile_loop(base_prog, base_sema, base_loop,
                                        engine=eng)
            loop_cycles += base_profile.loop_cycles
        result.seq_loop_cycles = loop_cycles
        result.pct_time = loop_cycles / result.seq_cycles
        t = clock("profile", t)

        # 3. transforms (reusing the profiles)
        opt = expand_for_threads(
            program, sema, spec.loop_labels, optimize=True,
            profiles=profiles, tracer=tracer,
        )
        unopt = expand_for_threads(
            program, sema, spec.loop_labels, optimize=False, profiles=profiles
        )
        result.num_privatized = opt.num_privatized
        t = clock("transform", t)

        # 4. figure 9: sequential single-core overhead of the transform
        # (unobserved, so the bare tier applies like the baseline run)
        for tresult, attr in ((opt, "overhead_opt"), (unopt, "overhead_unopt")):
            machine = Machine(
                tresult.program, tresult.sema,
                engine="bytecode-bare" if eng != "ast" else "ast",
            )
            machine.nthreads = 1
            machine.run()
            _check_output(spec, result.seq_output, machine.output,
                          f"transformed({attr})")
            setattr(result, attr, machine.cost.cycles / result.seq_cycles)
        t = clock("figure9-overheads", t)

        # 5. figure 10: runtime privatization sequential overhead
        rt1 = run_runtime_privatization(
            program, sema, spec.loop_labels, profiles, privs, nthreads=1,
            engine=eng,
        )
        _check_output(spec, result.seq_output, rt1.output, "rt-priv(N=1)")
        result.overhead_rtpriv = rt1.total_cycles / result.seq_cycles
        t = clock("figure10-rtpriv", t)

        # 6. figures 11-14: parallel runs.  The expansion run is also
        # wall-timed: on the process backend wallclock[1]/wallclock[n]
        # is the real end-to-end host speedup (simulated-cycle speedups
        # are backend-invariant by the bit-identity contract).
        from ..service import Job
        for n in self.thread_counts:
            job = Job.from_kwargs(
                spec.source, spec.loop_labels, n, True, engine=eng,
                backend=self.backend, workers=self.workers,
            )
            t_par = time.perf_counter()
            out = run_parallel(opt, job=job, tracer=tracer)
            result.wallclock[n] = time.perf_counter() - t_par
            _check_output(spec, result.seq_output, out.output,
                          f"parallel(N={n})")
            point = ParallelPoint(n)
            par_loop = sum(
                ex.makespan + ex.runtime_cycles for ex in out.loops.values()
            )
            point.loop_speedup = loop_cycles / par_loop if par_loop else 0.0
            point.total_speedup = result.seq_cycles / out.total_cycles
            point.memory_multiple = out.peak_memory / result.seq_memory
            bd: Dict[str, float] = {}
            for ex in out.loops.values():
                for key, value in ex.breakdown().items():
                    bd[key] = bd.get(key, 0.0) + value
            point.breakdown = bd
            result.expansion[n] = point

            rt = run_runtime_privatization(
                program, sema, spec.loop_labels, profiles, privs, nthreads=n,
                engine=eng,
            )
            _check_output(spec, result.seq_output, rt.output,
                          f"rt-priv(N={n})")
            rpoint = ParallelPoint(n)
            rt_loop = sum(
                ex.makespan + ex.runtime_cycles for ex in rt.loops.values()
            )
            rpoint.loop_speedup = loop_cycles / rt_loop if rt_loop else 0.0
            rpoint.total_speedup = result.seq_cycles / rt.total_cycles
            rpoint.memory_multiple = rt.peak_memory / result.seq_memory
            result.rtpriv[n] = rpoint

        t = clock("parallel-runs", t)

        # 7. sync-only baseline at 8 threads (§4.3's "slowdown instead
        # of speedup" observation)
        so = run_sync_only(program, sema, spec.loop_labels, profiles,
                           nthreads=max(self.thread_counts), engine=eng)
        _check_output(spec, result.seq_output, so.output, "sync-only")
        so_loop = sum(
            ex.makespan + ex.runtime_cycles for ex in so.loops.values()
        )
        result.sync_only_speedup = loop_cycles / so_loop if so_loop else 0.0
        clock("sync-only", t)
        wall["total"] = time.perf_counter() - t_start
        if nb is not None:
            result.native = {
                "so_cache_hits": nb.SO_CACHE_HITS - native0[0],
                "so_cache_misses": nb.SO_CACHE_MISSES - native0[1],
                "compile_seconds": nb.COMPILE_SECONDS - native0[2],
            }
        return result


#: process-wide harness so tests and benches share computed results
DEFAULT_HARNESS = Harness()


def benchmark_result(name: str) -> BenchmarkResult:
    """Cached full measurement of one benchmark."""
    return DEFAULT_HARNESS.result(name)
