"""Machine-readable benchmark trajectories.

``emit_trajectory`` serializes a set of :class:`BenchmarkResult`\\ s to
a ``BENCH_<timestamp>.json`` file so runs can be archived (e.g. as CI
artifacts) and diffed across commits.  The payload carries everything
the paper's figures are built from:

* sequential baseline cycles / memory and loop coverage (Table 1);
* single-core overheads of the optimized / unoptimized transform and
  of runtime privatization (Figures 9-10);
* per-thread-count loop/total speedups, memory multiples and cycle
  breakdowns for expansion and runtime privatization (Figures 11-14);
* the sync-only baseline speedup (§4.3);
* harmonic-mean summary rows across all benchmarks.

Schema 2 adds *host wall-clock* measurements (everything above is
simulated cycles): per-benchmark per-phase seconds plus the end-to-end
total, and the interpreter tier (``engine``) the measurements ran on —
so engine-vs-engine trajectories can be diffed.

Schema 3 adds the execution backend: per-benchmark ``backend``
("simulated"/"process") and ``wallclock_seconds`` mapping thread count
to the host seconds of that expansion parallel run — on the process
backend ``wallclock_seconds["1"]/["n"]`` is the real multi-core
speedup.

Schema 4 adds the native lowering tier's compile accounting:
per-benchmark ``native`` is ``null`` unless the measurements ran on
``--engine native``, in which case it carries ``compile_seconds``
(host wall-clock spent in the C compiler for this benchmark) and the
``so_cache_hits`` / ``so_cache_misses`` of the on-disk shared-object
cache — a warm cache shows all hits and ``compile_seconds == 0``.
``load_trajectory`` reads older schemas too, normalizing the missing
fields.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

#: bump when the payload layout changes incompatibly
TRAJECTORY_SCHEMA = 4


def _harmonic(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def _point_payload(point) -> Dict[str, object]:
    return {
        "loop_speedup": point.loop_speedup,
        "total_speedup": point.total_speedup,
        "memory_multiple": point.memory_multiple,
        "breakdown": dict(point.breakdown),
    }


def trajectory_payload(results, timestamp: Optional[str] = None,
                       serve: Optional[dict] = None) -> dict:
    """Build the JSON-serializable trajectory for ``results`` (a
    mapping of benchmark name to :class:`BenchmarkResult`).

    ``serve`` attaches a serve-daemon measurement block (cold/warm
    latencies, cache hit counts — the ``serve-smoke`` CI artifact)
    verbatim under the top-level ``"serve"`` key.  The block is
    additive and optional, so the schema number is unchanged and old
    readers are unaffected.
    """
    benchmarks = {}
    for name, res in sorted(results.items()):
        bd = res.breakdown
        benchmarks[name] = {
            "loops": list(res.spec.loop_labels),
            "seq_cycles": res.seq_cycles,
            "seq_loop_cycles": res.seq_loop_cycles,
            "seq_memory_bytes": res.seq_memory,
            "pct_time_in_loops": res.pct_time,
            "num_privatized": res.num_privatized,
            "access_breakdown": {
                "free": bd.free,
                "expandable": bd.expandable,
                "carried": bd.carried,
            } if bd is not None else None,
            "overheads": {
                "expansion_opt": res.overhead_opt,
                "expansion_unopt": res.overhead_unopt,
                "runtime_priv": res.overhead_rtpriv,
            },
            "expansion": {
                str(n): _point_payload(p)
                for n, p in sorted(res.expansion.items())
            },
            "runtime_priv": {
                str(n): _point_payload(p)
                for n, p in sorted(res.rtpriv.items())
            },
            "sync_only_speedup": res.sync_only_speedup,
            # schema 2: host wall-clock per measurement phase (seconds)
            # and the interpreter tier that produced the numbers
            "engine": getattr(res, "engine", "ast"),
            "wall_seconds": dict(getattr(res, "wall", {})),
            # schema 3: execution backend + host seconds of the
            # expansion parallel run at each thread count
            "backend": getattr(res, "backend", "simulated"),
            "wallclock_seconds": {
                str(n): secs
                for n, secs in sorted(getattr(res, "wallclock", {}).items())
            },
            # schema 4: native-tier compile accounting (None unless
            # the measurements ran on --engine native)
            "native": (dict(res.native)
                       if getattr(res, "native", None) else None),
        }

    thread_counts = sorted({
        n for res in results.values() for n in res.expansion
    })
    summary = {
        "overhead_opt_hmean": _harmonic(
            r.overhead_opt for r in results.values()
        ),
        "overhead_unopt_hmean": _harmonic(
            r.overhead_unopt for r in results.values()
        ),
        "overhead_rtpriv_hmean": _harmonic(
            r.overhead_rtpriv for r in results.values()
        ),
        "loop_speedup_hmean": {
            str(n): _harmonic(
                r.expansion[n].loop_speedup
                for r in results.values() if n in r.expansion
            )
            for n in thread_counts
        },
        "total_speedup_hmean": {
            str(n): _harmonic(
                r.expansion[n].total_speedup
                for r in results.values() if n in r.expansion
            )
            for n in thread_counts
        },
    }
    engines = sorted({
        getattr(r, "engine", "ast") for r in results.values()
    })
    backends = sorted({
        getattr(r, "backend", "simulated") for r in results.values()
    })
    summary["wall_seconds_total"] = sum(
        getattr(r, "wall", {}).get("total", 0.0) for r in results.values()
    )
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "generator": "repro.bench",
        "timestamp": timestamp or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engines": engines,
        "backends": backends,
        "benchmarks": benchmarks,
        "summary": summary,
    }
    if serve is not None:
        payload["serve"] = dict(serve)
    return payload


def load_trajectory(path: str) -> dict:
    """Read a ``BENCH_*.json`` trajectory, accepting any schema up to
    :data:`TRAJECTORY_SCHEMA`.

    Older files are normalized in place so callers can index the
    current fields unconditionally: schema-1 benchmarks gain
    ``engine="ast"`` (the only tier that existed then) and an empty
    ``wall_seconds`` (plus top-level ``engines`` and
    ``summary.wall_seconds_total = 0.0``); schema-2 benchmarks gain
    ``backend="simulated"`` (the only backend that existed then) and an
    empty ``wallclock_seconds`` (plus top-level ``backends``); schema-3
    benchmarks gain ``native=None`` (the native tier did not exist).
    """
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema", 1)
    if schema > TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: trajectory schema {schema} is newer than this "
            f"reader (max {TRAJECTORY_SCHEMA})"
        )
    if schema < 2:
        for bench in payload.get("benchmarks", {}).values():
            bench.setdefault("engine", "ast")
            bench.setdefault("wall_seconds", {})
        payload.setdefault("engines", ["ast"])
        payload.setdefault("summary", {}).setdefault(
            "wall_seconds_total", 0.0
        )
    if schema < 3:
        for bench in payload.get("benchmarks", {}).values():
            bench.setdefault("backend", "simulated")
            bench.setdefault("wallclock_seconds", {})
        payload.setdefault("backends", ["simulated"])
    if schema < 4:
        # the native tier did not exist: no benchmark ran on it
        for bench in payload.get("benchmarks", {}).values():
            bench.setdefault("native", None)
    return payload


def emit_trajectory(results, path: Optional[str] = None,
                    timestamp: Optional[str] = None,
                    serve: Optional[dict] = None) -> str:
    """Write the trajectory JSON; returns the path written.

    ``path=None`` picks ``BENCH_<timestamp>.json`` in the working
    directory (the shape CI archives as an artifact).  Passing an
    existing directory (or a path ending in the separator) drops the
    generated ``BENCH_<timestamp>.json`` name inside it instead of
    littering the current directory; any other path is used verbatim,
    creating parent directories as needed.  ``serve`` forwards to
    :func:`trajectory_payload`.
    """
    payload = trajectory_payload(results, timestamp=timestamp,
                                 serve=serve)
    if path is None or path.endswith(os.sep) or os.path.isdir(path):
        stamp = time.strftime("%Y%m%d_%H%M%S")
        name = f"BENCH_{stamp}.json"
        path = os.path.join(path, name) if path else name
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
