"""Render the paper's tables and figures as text from harness results.

Every public function takes ``{name: BenchmarkResult}`` (insertion
order = display order) and returns a formatted string with one row or
series per benchmark, paper values echoed beside ours where the paper
reports them.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Sequence

from .harness import BenchmarkResult

THREADS = (1, 2, 4, 8)


def _table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def harmonic_mean(values: List[float]) -> float:
    values = [v for v in values if v > 0]
    return statistics.harmonic_mean(values) if values else 0.0


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table4(results: Dict[str, BenchmarkResult]) -> str:
    """Benchmark characteristics (paper Table 4)."""
    rows = []
    for name, r in results.items():
        spec = r.spec
        rows.append([
            name, spec.suite, f"{spec.loc} ({spec.paper.loc})",
            spec.function, spec.level, spec.parallelism,
            f"{100 * r.pct_time:.1f}% ({spec.paper.pct_time}%)",
        ])
    return "Table 4: benchmark characteristics — ours (paper)\n" + _table(
        ["Benchmark", "Suite", "#LOC", "Function", "Level",
         "Parallelism", "%Time"],
        rows,
    )


def table5(results: Dict[str, BenchmarkResult]) -> str:
    """Number of dynamic data structures privatized (paper Table 5)."""
    rows = [
        [name, r.num_privatized, r.spec.paper.privatized]
        for name, r in results.items()
    ]
    return "Table 5: #privatized data structures\n" + _table(
        ["Benchmark", "#Privatized (ours)", "#Privatized (paper)"], rows
    )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def fig8_breakdown(results: Dict[str, BenchmarkResult]) -> str:
    """Dynamic memory-access breakdown of the candidate loops."""
    rows = []
    for name, r in results.items():
        f = r.breakdown.fractions()
        rows.append([
            name,
            f"{f['free']:.1%}", f"{f['expandable']:.1%}",
            f"{f['carried']:.1%}",
        ])
    return (
        "Figure 8: breakdown of dynamic memory accesses\n"
        + _table(
            ["Benchmark", "Free of loop-carried dep", "Expandable",
             "With loop-carried dep"],
            rows,
        )
    )


def fig9_overhead(results: Dict[str, BenchmarkResult]) -> str:
    """Expansion overhead without (9a) and with (9b) §3.4 optimizations,
    sequential execution, native time normalized to 1."""
    rows = [
        [name, f"{r.overhead_unopt:.2f}x", f"{r.overhead_opt:.2f}x"]
        for name, r in results.items()
    ]
    unopt = harmonic_mean([r.overhead_unopt for r in results.values()])
    opt = harmonic_mean([r.overhead_opt for r in results.values()])
    rows.append(["harmonic mean", f"{unopt:.2f}x (paper ~1.8x)",
                 f"{opt:.2f}x (paper <1.05x)"])
    return (
        "Figure 9: sequential overhead of data structure expansion\n"
        + _table(["Benchmark", "(a) without optimizations",
                  "(b) with optimizations"], rows)
    )


def fig10_runtime_priv(results: Dict[str, BenchmarkResult]) -> str:
    """Static expansion vs runtime privatization overhead (sequential)."""
    rows = [
        [name, f"{r.overhead_opt:.2f}x", f"{r.overhead_rtpriv:.2f}x"]
        for name, r in results.items()
    ]
    return (
        "Figure 10: expansion vs runtime privatization (sequential "
        "slowdown, native = 1)\n"
        + _table(["Benchmark", "expansion", "runtime privatization"], rows)
    )


def fig11_speedup(results: Dict[str, BenchmarkResult]) -> str:
    """Loop (11a) and total-program (11b) speedups per core count."""
    header = ["Benchmark"] + [f"loop@{n}" for n in THREADS] + \
        [f"total@{n}" for n in THREADS]
    rows = []
    for name, r in results.items():
        row = [name]
        row += [f"{r.expansion[n].loop_speedup:.2f}" for n in THREADS]
        row += [f"{r.expansion[n].total_speedup:.2f}" for n in THREADS]
        rows.append(row)
    hm4 = harmonic_mean([r.expansion[4].total_speedup
                         for r in results.values()])
    hm8 = harmonic_mean([r.expansion[8].total_speedup
                         for r in results.values()])
    footer = (
        f"\nharmonic mean total speedup: {hm4:.2f} @4 (paper 1.93), "
        f"{hm8:.2f} @8 (paper 2.24)"
    )
    return (
        "Figure 11: speedups with data structure expansion\n"
        + _table(header, rows) + footer
    )


def fig12_breakdown(results: Dict[str, BenchmarkResult],
                    nthreads: int = 8) -> str:
    """Cycle breakdown of the parallel loop at 8 threads."""
    rows = []
    for name, r in results.items():
        bd = r.expansion[nthreads].breakdown
        total = sum(bd.values()) or 1.0
        rows.append([
            name,
            f"{bd['work'] / total:.1%}", f"{bd['sync'] / total:.1%}",
            f"{bd['wait'] / total:.1%}", f"{bd['runtime'] / total:.1%}",
        ])
    return (
        f"Figure 12: cycle breakdown of {nthreads}-thread runs\n"
        + _table(["Benchmark", "work", "sync", "wait (do_wait/cpu_relax)",
                  "runtime lib"], rows)
    )


def fig13_rtpriv_speedup(results: Dict[str, BenchmarkResult]) -> str:
    """Loop speedup under runtime privatization."""
    header = ["Benchmark"] + [f"@{n}" for n in THREADS]
    rows = []
    for name, r in results.items():
        rows.append([name] + [
            f"{r.rtpriv[n].loop_speedup:.2f}" for n in THREADS
        ])
    return (
        "Figure 13: loop speedup with runtime privatization\n"
        + _table(header, rows)
    )


def fig14_memory(results: Dict[str, BenchmarkResult]) -> str:
    """Memory usage as a multiple of the sequential program."""
    header = ["Benchmark", "expansion@4", "expansion@8",
              "rt-priv@4", "rt-priv@8"]
    rows = []
    for name, r in results.items():
        rows.append([
            name,
            f"{r.expansion[4].memory_multiple:.2f}x",
            f"{r.expansion[8].memory_multiple:.2f}x",
            f"{r.rtpriv[4].memory_multiple:.2f}x",
            f"{r.rtpriv[8].memory_multiple:.2f}x",
        ])
    return (
        "Figure 14: memory usage multiple vs sequential\n"
        + _table(header, rows)
    )


def full_report(results: Dict[str, BenchmarkResult]) -> str:
    """Every table and figure, concatenated (EXPERIMENTS.md source)."""
    parts = [
        table4(results), table5(results), fig8_breakdown(results),
        fig9_overhead(results), fig10_runtime_priv(results),
        fig11_speedup(results), fig12_breakdown(results),
        fig13_rtpriv_speedup(results), fig14_memory(results),
    ]
    return "\n\n".join(parts)
