"""SPEC CPU2006 470.lbm kernel (LBM_performStreamCollide).

D2Q9 lattice-Boltzmann stream+collide: the candidate loop sweeps all
cells of the lattice (DOALL, level 2 — it nests inside the time-step
loop).  Source and destination grids are shared (disjoint per-cell
writes); the privatized structures are the per-cell scratch the solver
reuses every iteration: the equilibrium-distribution buffer ``feq`` and
the macroscopic-quantity struct ``mc`` (paper: 2 privatized).

The loop is memory-bound — almost every cycle is a grid load/store —
so the bandwidth model caps its scaling near 4 threads, matching the
paper's observation that lbm "suffers from the memory bandwidth
constraint when the number of cores exceeds 4".
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// 470.lbm: D2Q9 stream-collide over a periodic lattice
int NX = 12;
int NY = 12;
int NSTEPS = 3;

double wgt[9] = {0.444444, 0.111111, 0.111111, 0.111111, 0.111111,
                 0.027778, 0.027778, 0.027778, 0.027778};
int ex[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
int ey[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};

double *src = 0;                   // shared grids (ping-pong)
double *dst = 0;
int *nbase = 0;                    // precomputed gather offsets (shared)

double feq[9];                     // equilibrium scratch: privatized
struct macro {
    double rho;
    double ux;
    double uy;
};
struct macro mc;                   // macroscopic scratch: privatized

void collide_cell(int cell) {
    int k;
    int base;
    double cu;
    double uu;
    // pull streaming: gather from neighbours' post-collision values
    // (offsets precomputed, as in the original LBM kernel)
    mc.rho = 0.0;
    mc.ux = 0.0;
    mc.uy = 0.0;
    for (k = 0; k < 9; k++) {
        feq[k] = src[nbase[cell * 9 + k] + k];
        mc.rho = mc.rho + feq[k];
        mc.ux = mc.ux + feq[k] * ex[k];
        mc.uy = mc.uy + feq[k] * ey[k];
    }
    mc.ux = mc.ux / mc.rho;
    mc.uy = mc.uy / mc.rho;
    uu = 1.5 * (mc.ux * mc.ux + mc.uy * mc.uy);
    base = cell * 9;
    for (k = 0; k < 9; k++) {
        cu = 3.0 * (ex[k] * mc.ux + ey[k] * mc.uy);
        dst[base + k] = feq[k]
            + 1.85 * (wgt[k] * mc.rho * (1.0 + cu + 0.5 * cu * cu - uu)
                      - feq[k]);
    }
}

int main(void) {
    int t;
    int cell;
    int k;
    int ncells;
    double *tmp;
    double check;
    int x;
    int y;
    ncells = NX * NY;
    src = (double*)malloc(sizeof(double) * ncells * 9);
    dst = (double*)malloc(sizeof(double) * ncells * 9);
    nbase = (int*)malloc(sizeof(int) * ncells * 9);
    for (cell = 0; cell < ncells; cell++) {
        x = cell % NX;
        y = cell / NX;
        for (k = 0; k < 9; k++) {
            nbase[cell * 9 + k] =
                (((y - ey[k] + NY) % NY) * NX + (x - ex[k] + NX) % NX) * 9;
        }
    }
    for (cell = 0; cell < ncells; cell++) {
        for (k = 0; k < 9; k++) {
            src[cell * 9 + k] = wgt[k] * (1.0 + 0.01 * ((cell * 7 + k) % 13));
        }
    }
    for (t = 0; t < NSTEPS; t++) {
        #pragma expand parallel(doall)
        L: for (cell = 0; cell < ncells; cell++) {
            collide_cell(cell);
        }
        tmp = src;
        src = dst;
        dst = tmp;
    }
    check = 0.0;
    for (cell = 0; cell < ncells; cell++) {
        for (k = 0; k < 9; k++) {
            check = check + src[cell * 9 + k] * ((cell + k) % 7 + 1);
        }
    }
    print_int((int)(check * 1000.0));
    return 0;
}
"""

register(BenchmarkSpec(
    name="470.lbm",
    suite="SPEC CPU2006",
    source=SOURCE,
    loop_labels=["L"],
    function="LBM_performStreamCollide",
    level=2,
    parallelism="DOALL",
    paper=PaperNumbers(loc=1155, pct_time=99.1, privatized=2,
                       loop_speedup_8=3.5),
    description="D2Q9 stream-collide; feq/macro scratch privatized; "
                "memory-bandwidth-bound",
))
