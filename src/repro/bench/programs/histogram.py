"""Histogram reduction kernel (commutative-class showcase).

Every iteration bumps a shared bucket counter, accumulates a running
sum, and tracks the maximum — three loop-carried flow dependences the
paper's Definition 5 must reject outright (the accumulator loads are
upward-exposed and feed the next iteration).  The static commutativity
prover (:mod:`repro.analysis.commutative`) upgrades all three to the
commutative access class: each worker gets identity-initialized private
copies that merge back into copy 0 at loop exit, so the loop runs DOALL
bit-identical to its sequential oracle.  With ``commutative=False``
this kernel is the ablation baseline: the loop keeps its carried
dependences and the runtime race checker fires on every backend.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// histogram + sum + max reduction over a pseudo-random sample buffer
int N = 4096;

int data[4096];
int hist[64];
int total;
int maxv;

void bump(int v) {
    hist[v & 63] += 1;
    total += v;
    if (v > maxv) {
        maxv = v;
    }
}

int main(void) {
    int i;
    int x;
    int check;
    x = 12345;
    for (i = 0; i < N; i++) {
        x = x * 1103515245 + 12345;
        data[i] = (x >> 8) & 1023;
    }
    #pragma expand parallel(doall)
    L: for (i = 0; i < N; i++) {
        bump(data[i]);
    }
    check = 0;
    for (i = 0; i < 64; i++) {
        check = check * 31 + hist[i] * (i + 1);
    }
    print_int(check & 0x7fffffff);
    print_int(total);
    print_int(maxv);
    return 0;
}
"""

register(BenchmarkSpec(
    name="histogram",
    suite="repro-extra",
    source=SOURCE,
    loop_labels=["L"],
    function="main",
    level=1,
    parallelism="DOALL",
    paper=PaperNumbers(loc=0, pct_time=0.0, privatized=3,
                       loop_speedup_8=None),
    description="bucket counts + running sum + max: loop-carried "
                "reductions proven commutative and merged at loop exit",
))
