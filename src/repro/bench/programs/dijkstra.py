"""MiBench dijkstra kernel.

The paper's motivating example: the outer loop finds a shortest path
per source/destination pair (DOACROSS, level 1, 99.9% of runtime).
Each search rebuilds an internal FIFO queue — a linked list whose items
are malloc'd and freed from iteration to iteration with no contiguity
guarantee — and re-annotates the per-node distance table.  Loop-carried
anti/output dependences arise precisely because the allocator reuses
freed addresses, which is why no named-location privatizer can handle
it and the paper's expansion can.

Privatized structures here: the ``rgn`` node table, the queue head and
count, and the queue-item allocation site (the paper counts 2; it
likely folds head+count into the queue structure).
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// MiBench dijkstra: Moore's shortest-path algorithm over a sparse graph
int NV = 20;

int adj[20][20];                  // shared, read-only in the loop

struct nodeinfo {
    int dist;
    int prev;
};
struct nodeinfo rgn[20];          // re-annotated every search: privatized

struct qitem {
    int node;
    int dist;
    struct qitem *next;
};
struct qitem *qhead = 0;          // queue rebuilt every search: privatized
int qcount = 0;

void enqueue(int node, int dist) {
    struct qitem *q;
    struct qitem *p;
    q = (struct qitem*)malloc(sizeof(struct qitem));
    q->node = node;
    q->dist = dist;
    q->next = 0;
    if (!qhead) {
        qhead = q;
    } else {
        p = qhead;                // append at tail, like MiBench
        while (p->next) {
            p = p->next;
        }
        p->next = q;
    }
    qcount = qcount + 1;
}

int dijkstra(int src, int dst) {
    int i;
    int v;
    int d;
    int w;
    int nd;
    struct qitem *q;
    for (i = 0; i < NV; i++) {
        rgn[i].dist = 9999;
        rgn[i].prev = -1;
    }
    rgn[src].dist = 0;
    qhead = 0;
    qcount = 0;
    enqueue(src, 0);
    while (qcount > 0) {
        q = qhead;                // dequeue head
        qhead = q->next;
        qcount = qcount - 1;
        v = q->node;
        d = q->dist;
        free(q);
        if (d <= rgn[v].dist) {
            for (w = 0; w < NV; w++) {
                if (adj[v][w] < 9999) {
                    nd = d + adj[v][w];
                    if (nd < rgn[w].dist) {
                        rgn[w].dist = nd;
                        rgn[w].prev = v;
                        enqueue(w, nd);
                    }
                }
            }
        }
    }
    return rgn[dst].dist;
}

int main(void) {
    int i;
    int j;
    int seed = 42;
    int p;
    int d;
    int total = 0;
    // deterministic sparse graph (~35% density)
    for (i = 0; i < NV; i++) {
        for (j = 0; j < NV; j++) {
            seed = seed * 1103515245 + 12345;
            if (i != j && ((seed >> 16) & 7) < 3) {
                adj[i][j] = ((seed >> 8) & 31) + 1;
            } else {
                adj[i][j] = 9999;
            }
        }
    }
    #pragma expand parallel(doacross)
    L: for (p = 0; p < 12; p++) {
        d = dijkstra(p % NV, (p * 7 + 3) % NV);
        total = (total * 31 + d) % 100000;   // ordered result combine
    }
    print_int(total);
    return 0;
}
"""

register(BenchmarkSpec(
    name="dijkstra",
    suite="MiBench",
    source=SOURCE,
    loop_labels=["L"],
    function="main",
    level=1,
    parallelism="DOACROSS",
    paper=PaperNumbers(loc=375, pct_time=99.9, privatized=2,
                       loop_speedup_8=3.0),
    description="shortest path per pair; malloc/free'd FIFO queue and "
                "annotated node table privatized",
))
