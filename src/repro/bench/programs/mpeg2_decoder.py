"""MediaBench II mpeg2-decoder kernel (picture data decoding).

The candidate loop decodes the macroblocks of a picture (DOALL, level
2 — inside the picture loop; 97.8% of runtime).  Each macroblock
dequantizes a coefficient block, runs a separable inverse transform,
and adds the motion-compensated prediction; the three per-macroblock
buffers are reused across iterations and privatized (paper: 3).

Like dijkstra, the paper observes this benchmark's scaling suffer from
increased cache misses past 4 cores; here the loop's load/store-heavy
profile trips the memory-bandwidth ceiling the same way.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// mpeg2dec: dequant + inverse transform + motion compensation per MB
int NPIC = 3;
int NMB = 16;                      // macroblocks per picture

short coeffs[3][16][64];           // parsed coefficient data (shared)
unsigned char refframe[3][16][64]; // reference picture (shared)
unsigned char outframe[3][16][64]; // decoded output (disjoint writes)
int qmat[64];                      // quantization matrix (shared)

int blockbuf[64];                  // privatized per-MB scratch (3)
int idctbuf[64];
unsigned char predbuf[64];

void decode_mb(int pic, int mb) {
    int i;
    int j;
    int t0;
    int t1;
    // dequantize
    for (i = 0; i < 64; i++) {
        blockbuf[i] = coeffs[pic][mb][i] * qmat[i] / 16;
    }
    // separable 8x8 inverse transform (butterfly-flavoured)
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 4; j++) {
            t0 = blockbuf[i * 8 + j] + blockbuf[i * 8 + 7 - j];
            t1 = blockbuf[i * 8 + j] - blockbuf[i * 8 + 7 - j];
            idctbuf[i * 8 + j] = t0 + (t1 >> 2);
            idctbuf[i * 8 + 7 - j] = t0 - (t1 >> 2);
        }
    }
    for (j = 0; j < 8; j++) {
        for (i = 0; i < 4; i++) {
            t0 = idctbuf[i * 8 + j] + idctbuf[(7 - i) * 8 + j];
            t1 = idctbuf[i * 8 + j] - idctbuf[(7 - i) * 8 + j];
            blockbuf[i * 8 + j] = (t0 + (t1 >> 2)) >> 3;
            blockbuf[(7 - i) * 8 + j] = (t0 - (t1 >> 2)) >> 3;
        }
    }
    // motion compensation: prediction + residual, clamped
    for (i = 0; i < 64; i++) {
        predbuf[i] = refframe[pic][mb][i];
        t0 = (int)predbuf[i] + blockbuf[i];
        if (t0 < 0) {
            t0 = 0;
        }
        if (t0 > 255) {
            t0 = 255;
        }
        outframe[pic][mb][i] = (unsigned char)t0;
    }
}

int main(void) {
    int pic;
    int mb;
    int i;
    int seed = 11;
    unsigned int check;
    for (i = 0; i < 64; i++) {
        qmat[i] = 8 + (i % 8);
    }
    for (pic = 0; pic < NPIC; pic++) {
        for (mb = 0; mb < NMB; mb++) {
            for (i = 0; i < 64; i++) {
                seed = seed * 1103515245 + 12345;
                coeffs[pic][mb][i] = (short)((seed >> 20) % 64 - 32);
                refframe[pic][mb][i] = (seed >> 16) & 255;
            }
        }
    }
    for (pic = 0; pic < NPIC; pic++) {
        #pragma expand parallel(doall)
        L: for (mb = 0; mb < NMB; mb++) {
            decode_mb(pic, mb);
        }
    }
    check = 0;
    for (pic = 0; pic < NPIC; pic++) {
        for (mb = 0; mb < NMB; mb++) {
            for (i = 0; i < 64; i++) {
                check = check * 17 + outframe[pic][mb][i];
            }
        }
    }
    print_int((int)(check & 0x7fffffff));
    return 0;
}
"""

register(BenchmarkSpec(
    name="mpeg2-decoder",
    suite="MediaBench II",
    source=SOURCE,
    loop_labels=["L"],
    function="picture data",
    level=2,
    parallelism="DOALL",
    paper=PaperNumbers(loc=9832, pct_time=97.8, privatized=3,
                       loop_speedup_8=3.5),
    description="per-macroblock dequant + inverse transform + motion "
                "compensation; 3 scratch buffers privatized",
))
