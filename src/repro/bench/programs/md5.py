"""MiBench md5 kernel.

The main loop digests one independent message per iteration (DOALL,
level 1, 99.8% of runtime).  The per-block decode buffer ``X[16]`` is
reused every iteration — written before read, loop-carried anti/output
dependences only — making it the single privatized structure the paper
reports.  Digests land in disjoint slots of a shared result array.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// md5-like digest over independent 64-byte messages
int NMSG = 24;

unsigned int msgs[24][64];        // 4 blocks x 16 words per message
unsigned int digests[24][4];      // disjoint per-iteration results

unsigned int X[16];               // per-block decode buffer: privatized

unsigned int rotl(unsigned int x, int c);
unsigned int ff(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t);
unsigned int gg(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t);
unsigned int hh(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t);
unsigned int ii(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t);

void transform(int m) {
    int k;
    int blk;
    int round;
    unsigned int a; unsigned int b; unsigned int c; unsigned int d;
    unsigned int a0; unsigned int b0; unsigned int c0; unsigned int d0;
    a = 0x67452301; b = 0xefcdab89; c = 0x98badcfe; d = 0x10325476;
    for (blk = 0; blk < 4; blk++) {
    for (k = 0; k < 16; k++) {
        X[k] = msgs[m][blk * 16 + k];
    }
    a0 = a; b0 = b; c0 = c; d0 = d;
    for (round = 0; round < 4; round++) {
        for (k = 0; k < 16; k += 4) {
            if (round == 0) {
                a = ff(a, b, c, d, X[k], 7, 0xd76aa478);
                d = ff(d, a, b, c, X[k + 1], 12, 0xe8c7b756);
                c = ff(c, d, a, b, X[k + 2], 17, 0x242070db);
                b = ff(b, c, d, a, X[k + 3], 22, 0xc1bdceee);
            } else if (round == 1) {
                a = gg(a, b, c, d, X[(k * 5 + 1) % 16], 5, 0xf61e2562);
                d = gg(d, a, b, c, X[(k * 5 + 6) % 16], 9, 0xc040b340);
                c = gg(c, d, a, b, X[(k * 5 + 11) % 16], 14, 0x265e5a51);
                b = gg(b, c, d, a, X[k * 5 % 16], 20, 0xe9b6c7aa);
            } else if (round == 2) {
                a = hh(a, b, c, d, X[(k * 3 + 5) % 16], 4, 0xfffa3942);
                d = hh(d, a, b, c, X[(k * 3 + 8) % 16], 11, 0x8771f681);
                c = hh(c, d, a, b, X[(k * 3 + 11) % 16], 16, 0x6d9d6122);
                b = hh(b, c, d, a, X[(k * 3 + 14) % 16], 23, 0xfde5380c);
            } else {
                a = ii(a, b, c, d, X[k * 7 % 16], 6, 0xf4292244);
                d = ii(d, a, b, c, X[(k * 7 + 7) % 16], 10, 0x432aff97);
                c = ii(c, d, a, b, X[(k * 7 + 14) % 16], 15, 0xab9423a7);
                b = ii(b, c, d, a, X[(k * 7 + 5) % 16], 21, 0xfc93a039);
            }
        }
    }
    a = a + a0; b = b + b0; c = c + c0; d = d + d0;
    }
    digests[m][0] = a;
    digests[m][1] = b;
    digests[m][2] = c;
    digests[m][3] = d;
}

unsigned int rotl(unsigned int x, int c) {
    return (x << c) | (x >> (32 - c));
}

unsigned int ff(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t) {
    return b + rotl(a + ((b & c) | (~b & d)) + x + t, s);
}

unsigned int gg(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t) {
    return b + rotl(a + ((b & d) | (c & ~d)) + x + t, s);
}

unsigned int hh(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t) {
    return b + rotl(a + (b ^ c ^ d) + x + t, s);
}

unsigned int ii(unsigned int a, unsigned int b, unsigned int c,
                unsigned int d, unsigned int x, int s, unsigned int t) {
    return b + rotl(a + (c ^ (b | ~d)) + x + t, s);
}

int main(void) {
    int m;
    int i;
    int seed = 7;
    for (m = 0; m < NMSG; m++) {
        for (i = 0; i < 64; i++) {
            seed = seed * 1103515245 + 12345;
            msgs[m][i] = (unsigned int)seed;
        }
    }
    #pragma expand parallel(doall)
    L: for (m = 0; m < NMSG; m++) {
        transform(m);
    }
    unsigned int check = 0;
    for (m = 0; m < NMSG; m++) {
        for (i = 0; i < 4; i++) {
            check = check * 31 + digests[m][i];
        }
    }
    print_int((int)(check & 0x7fffffff));
    return 0;
}
"""

register(BenchmarkSpec(
    name="md5",
    suite="MiBench",
    source=SOURCE,
    loop_labels=["L"],
    function="main",
    level=1,
    parallelism="DOALL",
    paper=PaperNumbers(loc=420, pct_time=99.8, privatized=1,
                       loop_speedup_8=6.5),
    description="independent message digests; per-block decode buffer "
                "X[16] privatized",
))
