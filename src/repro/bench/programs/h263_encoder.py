"""MediaBench II h263-encoder kernel.

The only benchmark in the paper with *two* candidate loops, both DOALL
at level 2: the mode-decision loop in ``NextTwoPB`` (43.2% of runtime)
and the macroblock loop in ``MotionEstimatePicture`` (37.1%).  Each
loop reuses its own trio of per-macroblock scratch structures —
6 privatized structures total, and the paper's Figure 14 shows this
benchmark with the largest expansion memory growth (+50% at 8 threads),
which these relatively large scratch buffers reproduce.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// h263enc: PB-frame mode decision + motion estimation
int NFRAMES = 2;
int NMB = 12;

unsigned char frames[3][12][64];    // shared picture data
int modes[2][12];                   // mode decisions (disjoint writes)
struct vec {
    int x;
    int y;
    int err;
};
struct vec field[2][12];            // motion vectors (disjoint writes)

// NextTwoPB scratch: privatized (3)
int sadbuf[64];
unsigned char bblk[64];
struct vec pbcand;

// MotionEstimatePicture scratch: privatized (3)
unsigned char mecur[64];
unsigned char meref[64];
struct vec mebest;

int next_two_pb(int f, int mb) {
    int i;
    int fwd;
    int bwd;
    for (i = 0; i < 64; i++) {
        bblk[i] = (unsigned char)((frames[f][mb][i] + frames[f + 1][mb][i]) / 2);
        sadbuf[i] = (int)frames[f][mb][i] - (int)bblk[i];
        if (sadbuf[i] < 0) {
            sadbuf[i] = -sadbuf[i];
        }
    }
    fwd = 0;
    bwd = 0;
    for (i = 0; i < 64; i++) {
        fwd = fwd + sadbuf[i];
        bwd = bwd + ((int)bblk[i] ^ (i & 15));
    }
    pbcand.x = fwd;
    pbcand.y = bwd;
    pbcand.err = fwd < bwd ? fwd : bwd;
    return pbcand.err % 3;
}

void motion_estimate(int f, int mb) {
    int i;
    int dx;
    int s;
    mebest.err = 1 << 30;
    for (i = 0; i < 64; i++) {
        mecur[i] = frames[f][mb][i];
    }
    for (dx = -3; dx <= 3; dx++) {
        s = 0;
        for (i = 0; i < 64; i++) {
            meref[i] = frames[f + 1][mb][(i + dx + 64) % 64];
            if (mecur[i] > meref[i]) {
                s = s + (mecur[i] - meref[i]);
            } else {
                s = s + (meref[i] - mecur[i]);
            }
        }
        if (s < mebest.err) {
            mebest.err = s;
            mebest.x = dx;
            mebest.y = 0;
        }
    }
    field[f][mb].x = mebest.x;
    field[f][mb].y = mebest.y;
    field[f][mb].err = mebest.err;
}

int main(void) {
    int f;
    int mb;
    int i;
    int seed = 77;
    unsigned int check;
    for (f = 0; f < 3; f++) {
        for (mb = 0; mb < NMB; mb++) {
            for (i = 0; i < 64; i++) {
                seed = seed * 1103515245 + 12345;
                frames[f][mb][i] = (seed >> 16) & 255;
            }
        }
    }
    for (f = 0; f < NFRAMES; f++) {
        #pragma expand parallel(doall)
        L1: for (mb = 0; mb < NMB; mb++) {
            modes[f][mb] = next_two_pb(f, mb);
        }
        #pragma expand parallel(doall)
        L2: for (mb = 0; mb < NMB; mb++) {
            motion_estimate(f, mb);
        }
    }
    check = 0;
    for (f = 0; f < NFRAMES; f++) {
        for (mb = 0; mb < NMB; mb++) {
            check = check * 31 + (unsigned int)(modes[f][mb] * 7)
                  + (unsigned int)field[f][mb].err
                  + (unsigned int)(field[f][mb].x * 3);
        }
    }
    print_int((int)(check & 0x7fffffff));
    return 0;
}
"""

register(BenchmarkSpec(
    name="h263-encoder",
    suite="MediaBench II",
    source=SOURCE,
    loop_labels=["L1", "L2"],
    function="NextTwoPB / MotionEstimatePicture",
    level=2,
    parallelism="DOALL",
    paper=PaperNumbers(loc=8105, pct_time=80.3, privatized=6,
                       loop_speedup_8=6.0),
    description="two DOALL loops (mode decision + motion estimation), "
                "each with 3 privatized scratch structures",
))
