"""SPEC CPU2006 456.hmmer kernel (the "main loop serial" over sequences).

This is the benchmark behind the paper's Figure 3: the Viterbi work
matrix ``mx`` is allocated from *two different malloc sites* chosen at
run time (``m1`` vs ``m2`` sized), so the compiler cannot know the
structure's size from the pointer alone — the exact situation the
*span* machinery exists for, and spans here stay dynamic (the sizes
differ per site).

DOACROSS, level 2: each iteration runs a small profile-HMM Viterbi
pass over one sequence (parallel part) and then folds the score into
ordered scoreboard structures (serialized part).  The paper reports
inter-thread synchronization dominating this benchmark at 8 cores.

Privatized structures (paper: 8): the two ``mx`` allocation sites, the
``mmx``/``imx``/``dmx`` row matrices, the ``xmx`` special-state array,
the digitized sequence buffer, and the per-row score scratch.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// 456.hmmer: Viterbi scoring of sequences against a profile HMM
int NSEQ = 12;
int SLEN = 24;                     // sequence length
int M = 16;                        // model length

int msc[26][16];                   // match emission scores (shared)
int tsc[16][3];                    // transition scores (shared)
unsigned char seqs[12][24];        // sequence database (shared)

int *mmx = 0;                      // row matrices: privatized
int *imx = 0;
int *dmx = 0;
int xmx[24];                       // special states: privatized
unsigned char dsq[24];             // digitized sequence: privatized
int rowsc[16];                     // per-row scratch: privatized

int hist[32];                      // ordered scoreboard (serialized)
unsigned int tot = 0;

int viterbi(int s, int *mx, int span_elems) {
    int i;
    int k;
    int sc;
    int best;
    for (k = 0; k < M; k++) {
        mmx[k] = -10000;
        imx[k] = -10000;
        dmx[k] = 0;
    }
    for (i = 0; i < SLEN; i++) {
        dsq[i] = seqs[s][i] % 26;
        xmx[i] = -10000;
    }
    best = -10000;
    for (i = 0; i < SLEN; i++) {
        for (k = 0; k < M; k++) {
            sc = mmx[k] + tsc[k][0];
            if (imx[k] + tsc[k][1] > sc) {
                sc = imx[k] + tsc[k][1];
            }
            if (dmx[k] + tsc[k][2] > sc) {
                sc = dmx[k] + tsc[k][2];
            }
            if (sc < -10000) {
                sc = -10000;
            }
            rowsc[k] = sc + msc[dsq[i]][k];
            // scratch matrix: two possible sizes, indexed modulo
            mx[(i * M + k) % span_elems] = rowsc[k];
        }
        for (k = 0; k < M; k++) {
            mmx[k] = rowsc[k];
            if (k > 0) {
                dmx[k] = mmx[k - 1] - 3;
            }
            imx[k] = mmx[k] - 7;
        }
        sc = mmx[M - 1];
        if (sc > best) {
            best = sc;
        }
        xmx[i] = best;
    }
    sc = 0;
    for (i = 0; i < SLEN; i++) {
        sc = sc + xmx[i] + mx[(i * 3) % span_elems];
    }
    return sc / SLEN + best;
}

int main(void) {
    int s;
    int i;
    int k;
    int sc;
    int m1;
    int m2;
    int span_elems;
    int *mx;
    int seed = 5;
    for (k = 0; k < M; k++) {
        for (i = 0; i < 26; i++) {
            seed = seed * 1103515245 + 12345;
            msc[i][k] = ((seed >> 16) % 11) - 3;
        }
        tsc[k][0] = -1;
        tsc[k][1] = -5;
        tsc[k][2] = -4;
    }
    for (s = 0; s < NSEQ; s++) {
        for (i = 0; i < SLEN; i++) {
            seed = seed * 1103515245 + 12345;
            seqs[s][i] = (seed >> 16) & 255;
        }
    }
    mmx = (int*)malloc(sizeof(int) * M);
    imx = (int*)malloc(sizeof(int) * M);
    dmx = (int*)malloc(sizeof(int) * M);
    m1 = sizeof(int) * SLEN;
    m2 = sizeof(int) * M * 2;
    #pragma expand parallel(doacross)
    L: for (s = 0; s < NSEQ; s++) {
        if (s % 2 == 0) {                 // the paper's Figure 3 shape:
            mx = (int*)malloc(m1);        // which site produced mx is
            span_elems = SLEN;            // unknown at compile time
        } else {
            mx = (int*)malloc(m2);
            span_elems = M * 2;
        }
        sc = viterbi(s, mx, span_elems);
        free(mx);
        // ordered post-processing: E-value scoreboard insertion and
        // alignment-trace accounting (sequential in hmmer's main loop)
        for (i = 0; i < SLEN; i++) {
            for (k = 0; k < M; k += 3) {
                hist[(sc + xmx[i] + k * 5) & 31] =
                    hist[(sc + xmx[i] + k * 5) & 31] + 1;
                tot = tot * 31 + (unsigned int)(sc + xmx[i] + k);
            }
        }
    }
    sc = 0;
    for (i = 0; i < 32; i++) {
        sc = sc + hist[i] * (i + 1);
    }
    print_int(sc);
    print_int((int)(tot & 0x7fffffff));
    return 0;
}
"""

register(BenchmarkSpec(
    name="456.hmmer",
    suite="SPEC CPU2006",
    source=SOURCE,
    loop_labels=["L"],
    function="main loop serial",
    level=2,
    parallelism="DOACROSS",
    paper=PaperNumbers(loc=35992, pct_time=99.9, privatized=8,
                       loop_speedup_8=2.2),
    description="per-sequence Viterbi; mx from two ambiguous malloc "
                "sites (Figure 3); ordered scoreboard serializes",
))
