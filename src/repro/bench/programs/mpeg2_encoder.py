"""MediaBench II mpeg2-encoder kernel (motion estimation).

The candidate loop iterates the macroblocks of one row during motion
estimation — nesting level 3 (pictures → rows → macroblocks), DOALL,
70.6% of runtime.  Each macroblock's full-search SAD scan reuses a set
of per-macroblock scratch structures; the paper privatizes 7 of them.

Privatized here (7): ``curblk``, ``refblk``, ``diffblk``, ``predblk``,
the candidate-cost array ``costs``, the best-vector struct ``bestmv``,
and the interpolation window ``winbuf``.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// mpeg2enc motion estimation: full search over a +/-2 window
int NPIC = 2;
int ROWS = 2;
int MBW = 8;                       // macroblocks per row
int W = 68;                        // frame width  (8 MBs of 8 + margin)
int H = 20;                        // frame height (2 rows of 8 + margin)

unsigned char cur[2][20][68];      // current frames (shared)
unsigned char ref[2][20][68];      // reference frames (shared)

struct mv {
    int dx;
    int dy;
    int sad;
};
struct mv mvfield[2][2][8];        // per-MB results (disjoint writes)

unsigned char curblk[64];          // privatized scratch (7 structures)
unsigned char refblk[64];
int diffblk[64];
unsigned char predblk[64];
int costs[9];
struct mv bestmv;
unsigned char winbuf[100];         // 10x10 search window copy

int sad8x8(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 64; i++) {
        diffblk[i] = (int)curblk[i] - (int)refblk[i];
        if (diffblk[i] < 0) {
            acc = acc - diffblk[i];
        } else {
            acc = acc + diffblk[i];
        }
    }
    return acc;
}

void motion_estimate_mb(int pic, int row, int mb) {
    int x0;
    int y0;
    int i;
    int j;
    int dx;
    int dy;
    int c;
    int s;
    x0 = mb * 8 + 1;
    y0 = row * 8 + 1;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            curblk[i * 8 + j] = cur[pic][y0 + i][x0 + j];
        }
    }
    for (i = 0; i < 10; i++) {      // copy the +/-1 search window
        for (j = 0; j < 10; j++) {
            winbuf[i * 10 + j] = ref[pic][y0 - 1 + i][x0 - 1 + j];
        }
    }
    bestmv.sad = 1 << 30;
    bestmv.dx = 0;
    bestmv.dy = 0;
    c = 0;
    for (dy = -1; dy <= 1; dy++) {
        for (dx = -1; dx <= 1; dx++) {
            for (i = 0; i < 8; i++) {
                for (j = 0; j < 8; j++) {
                    refblk[i * 8 + j] =
                        winbuf[(i + dy + 1) * 10 + (j + dx + 1)];
                }
            }
            s = sad8x8();
            costs[c] = s;
            c = c + 1;
            if (s < bestmv.sad) {
                bestmv.sad = s;
                bestmv.dx = dx;
                bestmv.dy = dy;
            }
        }
    }
    for (i = 0; i < 64; i++) {      // form the prediction block
        predblk[i] = refblk[i];
    }
    mvfield[pic][row][mb].dx = bestmv.dx;
    mvfield[pic][row][mb].dy = bestmv.dy;
    mvfield[pic][row][mb].sad = bestmv.sad + (int)predblk[0] + costs[4];
}

int main(void) {
    int pic;
    int row;
    int mb;
    int i;
    int j;
    int seed = 3;
    unsigned int check;
    for (pic = 0; pic < NPIC; pic++) {
        for (i = 0; i < H; i++) {
            for (j = 0; j < W; j++) {
                seed = seed * 1103515245 + 12345;
                cur[pic][i][j] = (seed >> 16) & 255;
                ref[pic][i][j] = (seed >> 18) & 255;
            }
        }
    }
    for (pic = 0; pic < NPIC; pic++) {
        for (row = 0; row < ROWS; row++) {
            #pragma expand parallel(doall)
            L: for (mb = 0; mb < MBW; mb++) {
                motion_estimate_mb(pic, row, mb);
            }
        }
    }
    check = 0;
    for (pic = 0; pic < NPIC; pic++) {
        for (row = 0; row < ROWS; row++) {
            for (mb = 0; mb < MBW; mb++) {
                check = check * 31 + (unsigned int)mvfield[pic][row][mb].sad
                      + (unsigned int)(mvfield[pic][row][mb].dx * 5)
                      + (unsigned int)(mvfield[pic][row][mb].dy * 3);
            }
        }
    }
    print_int((int)(check & 0x7fffffff));
    return 0;
}
"""

register(BenchmarkSpec(
    name="mpeg2-encoder",
    suite="MediaBench II",
    source=SOURCE,
    loop_labels=["L"],
    function="motion estimation",
    level=3,
    parallelism="DOALL",
    paper=PaperNumbers(loc=7605, pct_time=70.6, privatized=7,
                       loop_speedup_8=6.0),
    description="full-search motion estimation; 7 per-macroblock "
                "scratch structures privatized",
))
