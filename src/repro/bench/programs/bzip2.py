"""SPEC CPU2000 256.bzip2 kernel (compressStream).

The paper's Figure 1 is lifted from this benchmark: ``zptr`` is
malloc'd *outside* a ``while (1)`` block loop and re-initialized every
iteration, and — the part that breaks interleaved-mode expansion — it
is "frequently recast between the types of 2-byte short integer and
4-type integer".  This kernel keeps that recast: the sorting phase
views the privatized ``zptr`` chunk as ``short*``.

DOACROSS, level 2 (the block loop nests inside the stream loop):
reading the next block and emitting the compressed stream are
inherently ordered, so a sizable serialized section remains after
privatization and synchronization dominates at high thread counts —
the paper's Figure 12 observation for this benchmark.

Privatized structures (paper: 4): ``block``, ``freq``, ``quadrant``,
and the ``zptr`` chunk.
"""

from ..suite import BenchmarkSpec, PaperNumbers, register

SOURCE = r"""
// 256.bzip2 compressStream: per-block sort + entropy over 2 streams
int NSTREAMS = 2;
int STREAMLEN = 512;
int BS = 64;                       // block size (ints)

unsigned char stream[2][512];      // shared input streams
unsigned char outbuf[2][600];      // compressed output (serialized writes)

unsigned char block[64];           // current block: privatized
int freq[64];                      // symbol frequencies: privatized
unsigned char quadrant[64];        // sort tie-break ranks: privatized
int *zptr = 0;                     // work array, recast short/int: privatized

int blockno = 0;                   // sequential input cursor (serial)
int outpos = 0;                    // sequential output cursor (serial)
unsigned int combined = 0;         // stream checksum (serial)

void sortblock(int n) {
    int i;
    int gap;
    int j;
    short t;
    short *sp;
    sp = (short*)zptr;             // the recast the paper highlights
    for (i = 0; i < n; i++) {
        sp[i] = (short)(block[i] * 4 + (quadrant[i] & 3));
    }
    gap = n / 2;                   // shell sort on the short view
    while (gap > 0) {
        for (i = gap; i < n; i++) {
            t = sp[i];
            j = i;
            while (j >= gap && sp[j - gap] > t) {
                sp[j] = sp[j - gap];
                j = j - gap;
            }
            sp[j] = t;
        }
        gap = gap / 2;
    }
    // fold sorted short pairs back through the int view
    for (i = 0; i < n / 2; i++) {
        zptr[i] = zptr[i] ^ (zptr[i] >> 9);
    }
}

int compressblock(int n) {
    int i;
    int v;
    short *sp;
    for (i = 0; i < n; i++) {
        freq[i] = 0;
    }
    for (i = 0; i < n; i++) {
        freq[block[i] & 63] = freq[block[i] & 63] + 1;
    }
    sp = (short*)zptr;
    v = 0;
    for (i = 0; i < n; i++) {
        v = v * 17 + sp[i] + freq[i & 63] * 3 + quadrant[i];
        v = v & 0xffffff;
    }
    return v;
}

int main(void) {
    int s;
    int i;
    int off;
    int v;
    int nb;
    int seed = 99;
    for (s = 0; s < NSTREAMS; s++) {
        for (i = 0; i < STREAMLEN; i++) {
            seed = seed * 1103515245 + 12345;
            stream[s][i] = (seed >> 16) & 255;
        }
    }
    zptr = (int*)malloc(sizeof(int) * BS);
    for (s = 0; s < NSTREAMS; s++) {
        blockno = 0;
        #pragma expand parallel(doacross)
        L: while (1) {
            if (blockno * BS >= STREAMLEN) break;   // serial: input cursor
            off = blockno * BS;
            blockno = blockno + 1;                  // serial: advance cursor
            for (i = 0; i < BS; i++) {              // read block (parallel)
                block[i] = stream[s][off + i];
                quadrant[i] = (block[i] >> 2) & 63;
            }
            sortblock(BS);                          // parallel
            v = compressblock(BS);                  // parallel
            nb = 0;                                 // emit output (serial)
            for (i = 0; i < BS; i++) {
                outbuf[s][outpos % 600] =
                    ((v >> (i & 15)) + block[i] + (int)quadrant[i]) & 255;
                combined = combined + outbuf[s][outpos % 600];
                outpos = outpos + 1;
                nb = nb + 1;
            }
            combined = combined * 31 + (unsigned int)v + (unsigned int)nb;
        }
    }
    print_int((int)(combined & 0x7fffffff));
    print_int(outpos);
    return 0;
}
"""

register(BenchmarkSpec(
    name="256.bzip2",
    suite="SPEC CPU2000",
    source=SOURCE,
    loop_labels=["L"],
    function="compressStream",
    level=2,
    parallelism="DOACROSS",
    paper=PaperNumbers(loc=4649, pct_time=99.8, privatized=4,
                       loop_speedup_8=2.5),
    description="per-block sort+entropy; zptr recast short/int; ordered "
                "input/output cursors keep a serialized section",
))
