"""Benchmark registry: the eight kernels of the paper's Table 4.

Each kernel is a MiniC port of the *parallelized loop* of the original
benchmark plus enough surrounding program to reproduce its Table 4
characteristics (loop nesting level, parallelism kind, fraction of time
in the loop) and the data-structure shapes the paper highlights
(dijkstra's malloc/free'd queue items, bzip2's recast ``zptr``,
hmmer's two-site ambiguous ``mx``, ...).  Inputs are scaled down to
interpreter scale; the harness compares cycle *ratios*, not absolute
times.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional


class PaperNumbers(NamedTuple):
    """The values the paper reports, echoed next to ours in reports."""

    loc: int                       # Table 4 #LOC of the original benchmark
    pct_time: float                # Table 4 %Time in the candidate loop
    privatized: int                # Table 5 structures privatized
    loop_speedup_8: Optional[float] = None   # approx Figure 11a @ 8 cores


class BenchmarkSpec(NamedTuple):
    name: str
    suite: str                     # MiBench / MediaBench II / SPEC ...
    source: str                    # MiniC program text
    loop_labels: List[str]         # candidate loop labels ('L', ...)
    function: str                  # Table 4: function containing the loop
    level: int                     # Table 4: loop nesting level
    parallelism: str               # 'DOALL' or 'DOACROSS'
    paper: PaperNumbers
    description: str = ""

    @property
    def loc(self) -> int:
        """Lines of MiniC source (reported beside the paper's LOC)."""
        return sum(
            1 for line in self.source.splitlines() if line.strip()
        )


_REGISTRY: Dict[str, BenchmarkSpec] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> BenchmarkSpec:
    _ensure_loaded()
    return _REGISTRY[name]


def all_benchmarks() -> List[BenchmarkSpec]:
    """All registered kernels, in the paper's Table 4 order."""
    _ensure_loaded()
    order = [
        "dijkstra", "md5", "mpeg2-encoder", "mpeg2-decoder",
        "h263-encoder", "256.bzip2", "456.hmmer", "470.lbm",
    ]
    return [_REGISTRY[n] for n in order if n in _REGISTRY] + [
        s for n, s in sorted(_REGISTRY.items()) if n not in order
    ]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    import importlib

    for module in (
        "bzip2", "dijkstra", "h263_encoder", "histogram", "hmmer",
        "lbm", "md5", "mpeg2_decoder", "mpeg2_encoder",
    ):
        try:
            importlib.import_module(f"{__package__}.programs.{module}")
        except ImportError:
            pass  # kernels under construction register incrementally
