"""Structured diagnostics for the expansion toolchain.

Every subsystem that can reject or degrade a program — semantic
analysis, the expansion pipeline, the parallel runtime — reports
through this module instead of bare string exceptions.  A
:class:`Diagnostic` carries a stable error code, a severity, the
candidate-loop label it concerns (when per-loop), a source location,
and an arbitrary structured payload; a :class:`DiagnosticSink`
accumulates them for one run so callers (CLI, tests, the
fault-injection harness) can assert on *what* went wrong, not on
message substrings.

Exceptions that participate subclass :class:`DiagnosableError`, which
builds the structured form at raise time.  The legacy string message is
preserved verbatim, so ``str(exc)`` is unchanged for existing callers.

Code taxonomy (prefix = subsystem, stable across releases):

=============  =======================================================
``SEMA-*``     name resolution / type checking
``PIPE-*``     expansion pipeline stage failures and quarantines
``XFORM-*``    promotion / expansion / redirection transforms
``RT-*``       parallel runtime: races, scheduling, watchdog, recovery
``INTERP-*``   interpreter faults (wild access, step budget, ...)
``FAULT-*``    fault-injection harness events (incl. process chaos)
``MC-*``       multi-core process backend: capability-audit fallbacks
               and supervision (restart / retry / token re-issue /
               pool shrink / degradation-ladder rungs)
=============  =======================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

# -- severities (ordered) ----------------------------------------------------
NOTE = "note"
WARNING = "warning"
ERROR = "error"
FATAL = "fatal"

_SEVERITY_RANK = {NOTE: 0, WARNING: 1, ERROR: 2, FATAL: 3}


def severity_rank(severity: str) -> int:
    return _SEVERITY_RANK.get(severity, 0)


class Diagnostic:
    """One structured finding: code + severity + message + context."""

    __slots__ = ("code", "severity", "message", "loop", "loc", "phase",
                 "data")

    def __init__(
        self,
        code: str,
        severity: str,
        message: str,
        loop: Optional[str] = None,
        loc: Optional[Tuple[int, int]] = None,
        phase: str = "general",
        data: Optional[Dict[str, Any]] = None,
    ):
        self.code = code
        self.severity = severity
        self.message = message
        self.loop = loop
        self.loc = loc
        self.phase = phase
        self.data = data or {}

    def render(self) -> str:
        """Human-readable one-liner (the CLI's rendering)."""
        where = ""
        if self.loop is not None:
            where += f" loop {self.loop!r}"
        if self.loc is not None:
            where += f" at line {self.loc[0]}:{self.loc[1]}"
        return f"{self.severity}[{self.code}]{where}: {self.message}"

    def __repr__(self) -> str:
        return f"<Diagnostic {self.render()}>"


class DiagnosticSink:
    """Per-run accumulator all subsystems report into."""

    def __init__(self):
        self.diagnostics: List[Diagnostic] = []

    # -- emission -----------------------------------------------------------
    def emit(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def note(self, code: str, message: str, **ctx) -> Diagnostic:
        return self.emit(Diagnostic(code, NOTE, message, **ctx))

    def warning(self, code: str, message: str, **ctx) -> Diagnostic:
        return self.emit(Diagnostic(code, WARNING, message, **ctx))

    def error(self, code: str, message: str, **ctx) -> Diagnostic:
        return self.emit(Diagnostic(code, ERROR, message, **ctx))

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_code(self, prefix: str) -> List[Diagnostic]:
        """Diagnostics whose code equals or starts with ``prefix``."""
        return [d for d in self.diagnostics
                if d.code == prefix or d.code.startswith(prefix)]

    def by_loop(self, label: Optional[str]) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.loop == label]

    @property
    def has_errors(self) -> bool:
        return any(severity_rank(d.severity) >= _SEVERITY_RANK[ERROR]
                   for d in self.diagnostics)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)


class DiagnosableError(Exception):
    """An exception that carries a :class:`Diagnostic`.

    ``str(exc)`` is exactly the message passed in (subclasses may
    pre-format source locations into it, matching their historical
    behavior); the structured fields live on ``exc.diagnostic``.
    """

    default_code = "GENERIC"
    default_phase = "general"

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        severity: str = ERROR,
        loop: Optional[str] = None,
        loc: Optional[Tuple[int, int]] = None,
        phase: Optional[str] = None,
        data: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.diagnostic = Diagnostic(
            code or self.default_code, severity, message,
            loop=loop, loc=loc, phase=phase or self.default_phase,
            data=data,
        )


def diagnostic_of(exc: BaseException) -> Diagnostic:
    """The structured form of any exception (synthesized for foreign
    exception types, so sinks can always record a failure)."""
    diag = getattr(exc, "diagnostic", None)
    if isinstance(diag, Diagnostic):
        return diag
    return Diagnostic(
        f"RAW-{type(exc).__name__.upper()}", ERROR, str(exc) or repr(exc)
    )


__all__ = [
    "NOTE", "WARNING", "ERROR", "FATAL", "severity_rank",
    "Diagnostic", "DiagnosticSink", "DiagnosableError", "diagnostic_of",
]
