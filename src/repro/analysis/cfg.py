"""Per-function control-flow graphs over the MiniC AST.

The transformation pipeline reasons about straight-line statement lists
(Table 3 span-store placement, §3.4 hoisting); the static auditor needs
path-sensitive facts — "is this span ever read again?", "does any
definition reach this use?".  This module provides the control-flow
skeleton those questions are asked over: a :class:`CFG` of
:class:`BasicBlock`\\ s per function, built directly from the analyzed
AST (MiniC has no ``goto``/``switch``, so ``if``/loops/``break``/
``continue``/``return`` cover the language).

Each basic block holds a list of *elements* in execution order.  An
element is either an expression evaluated for value or effect
(``ExprStmt`` payloads, loop conditions, ``for`` steps, ``return``
operands) or a :class:`~repro.frontend.ast.VarDecl` executed as a
declaration.  Dataflow analyses (:mod:`repro.analysis.dataflow`) fold
transfer functions over these elements; they never need to re-derive
statement structure.

Two entry points:

* :func:`build_cfg` — whole function body, parameters seeded into the
  entry block (their binding is a definition).
* :func:`build_loop_body_cfg` — the single-iteration region of one
  loop (body plus condition/step), with no back edge: the graph used
  for Definition 2/3-style upward/downward exposure, where ``break``
  and ``continue`` both lead to the region exit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..frontend import ast

#: what a basic block holds: expressions and declarations, in order
Element = Union[ast.Expr, ast.VarDecl]


class BasicBlock:
    """A maximal straight-line run of elements."""

    __slots__ = ("bid", "elems", "succs", "preds")

    def __init__(self, bid: int):
        self.bid = bid
        self.elems: List[Element] = []
        self.succs: List["BasicBlock"] = []
        self.preds: List["BasicBlock"] = []

    def __repr__(self) -> str:
        return (
            f"<B{self.bid} elems={len(self.elems)} "
            f"succs={[s.bid for s in self.succs]}>"
        )


class CFG:
    """Control-flow graph with unique entry and exit blocks."""

    def __init__(self):
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        #: element nid -> containing block (filled by the builder)
        self.block_of: Dict[int, BasicBlock] = {}

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def elements(self):
        """All elements in block order (deterministic)."""
        for block in self.blocks:
            for elem in block.elems:
                yield block, elem


class _Builder:
    """Recursive statement walk threading the "current" block.

    ``self.cur`` is None right after a jump (``break``/``continue``/
    ``return``); statements found there are unreachable but still get a
    predecessor-less block, so analyses see every element."""

    def __init__(self):
        self.cfg = CFG()
        self.cur: Optional[BasicBlock] = self.cfg.entry
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    # -- plumbing ---------------------------------------------------------
    def _reachable(self) -> BasicBlock:
        if self.cur is None:
            self.cur = self.cfg.new_block()  # dead code: no predecessors
        return self.cur

    def _emit(self, elem: Element) -> None:
        block = self._reachable()
        block.elems.append(elem)
        self.cfg.block_of[elem.nid] = block

    def _jump(self, target: BasicBlock) -> None:
        if self.cur is not None:
            self.cfg.add_edge(self.cur, target)
        self.cur = None

    def _start(self, block: BasicBlock) -> BasicBlock:
        """Fall through from the current block into ``block``."""
        if self.cur is not None:
            self.cfg.add_edge(self.cur, block)
        self.cur = block
        return block

    # -- statements -------------------------------------------------------
    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            for child in s.stmts:
                self.stmt(child)
        elif isinstance(s, ast.ExprStmt):
            if s.expr is not None:
                self._emit(s.expr)
        elif isinstance(s, ast.DeclStmt):
            for decl in s.decls:
                self._emit(decl)
        elif isinstance(s, ast.If):
            self._emit(s.cond)
            branch = self.cur
            join = self.cfg.new_block()
            then = self.cfg.new_block()
            self.cfg.add_edge(branch, then)
            self.cur = then
            self.stmt(s.then)
            self._jump(join)
            if s.els is not None:
                els = self.cfg.new_block()
                self.cfg.add_edge(branch, els)
                self.cur = els
                self.stmt(s.els)
                self._jump(join)
            else:
                self.cfg.add_edge(branch, join)
            self.cur = join
        elif isinstance(s, ast.While):
            header = self.cfg.new_block()
            after = self.cfg.new_block()
            self._start(header)
            self._emit(s.cond)
            body = self.cfg.new_block()
            self.cfg.add_edge(header, body)
            self.cfg.add_edge(header, after)
            self._loop_body(s.body, body, continue_to=header, break_to=after)
            self._jump(header)
            self.cur = after
        elif isinstance(s, ast.DoWhile):
            body = self.cfg.new_block()
            latch = self.cfg.new_block()
            after = self.cfg.new_block()
            self._start(body)
            self._loop_body(s.body, body, continue_to=latch, break_to=after,
                            enter=False)
            self._jump(latch)
            self.cur = latch
            self._emit(s.cond)
            self.cfg.add_edge(latch, body)
            self.cfg.add_edge(latch, after)
            self.cur = after
        elif isinstance(s, ast.For):
            if s.init is not None:
                self.stmt(s.init)
            header = self.cfg.new_block()
            after = self.cfg.new_block()
            step = self.cfg.new_block()
            self._start(header)
            if s.cond is not None:
                self._emit(s.cond)
                self.cfg.add_edge(header, after)
            body = self.cfg.new_block()
            self.cfg.add_edge(header, body)
            self._loop_body(s.body, body, continue_to=step, break_to=after)
            self._jump(step)
            self.cur = step
            if s.step is not None:
                self._emit(s.step)
            self._jump(header)
            self.cur = after
        elif isinstance(s, ast.Return):
            if s.expr is not None:
                self._emit(s.expr)
            self._jump(self.cfg.exit)
        elif isinstance(s, ast.Break):
            self._reachable()
            self._jump(self.break_targets[-1])
        elif isinstance(s, ast.Continue):
            self._reachable()
            self._jump(self.continue_targets[-1])
        else:  # pragma: no cover - exhaustive over MiniC statements
            raise TypeError(f"unhandled statement {type(s).__name__}")

    def _loop_body(self, body: ast.Stmt, block: BasicBlock, *,
                   continue_to: BasicBlock, break_to: BasicBlock,
                   enter: bool = True) -> None:
        if enter:
            self.cur = block
        self.break_targets.append(break_to)
        self.continue_targets.append(continue_to)
        try:
            self.stmt(body)
        finally:
            self.break_targets.pop()
            self.continue_targets.pop()


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """CFG of a whole function; parameter bindings are entry elements."""
    builder = _Builder()
    for param in fn.params:
        builder._emit(param)
    if fn.body is not None:
        builder.stmt(fn.body)
    builder._jump(builder.cfg.exit)
    return builder.cfg


def build_loop_body_cfg(loop: ast.LoopStmt) -> CFG:
    """Single-iteration region CFG of ``loop`` — no back edge.

    Models one trip through the loop in evaluation order: condition
    first for ``while``/``for`` (step last), body first for
    ``do``/``while``.  ``break`` and ``continue`` of *this* loop exit
    the region; nested loops keep their full structure."""
    builder = _Builder()
    cfg = builder.cfg
    builder.break_targets.append(cfg.exit)
    builder.continue_targets.append(cfg.exit)
    if isinstance(loop, ast.DoWhile):
        builder.stmt(loop.body)
        if loop.cond is not None:
            builder._emit(loop.cond)
    elif isinstance(loop, ast.For):
        if loop.cond is not None:
            builder._emit(loop.cond)
        step_block = cfg.new_block()
        builder.continue_targets[-1] = step_block
        builder.stmt(loop.body)
        builder._start(step_block)
        if loop.step is not None:
            builder._emit(loop.step)
    else:
        if loop.cond is not None:
            builder._emit(loop.cond)
        builder.stmt(loop.body)
    builder._jump(cfg.exit)
    return builder.cfg
