"""Dependence and alias analyses feeding the expansion transform."""

from .access_classes import AccessClasses, UnionFind, build_access_classes
from .breakdown import Breakdown, compute_breakdown
from .cfg import BasicBlock, CFG, build_cfg, build_loop_body_cfg
from .dataflow import (
    Analysis,
    DataflowResult,
    DownwardExposure,
    Liveness,
    ReachingDefinitions,
    UpwardExposure,
    element_info,
    solve,
)
from .ddg import ANTI, DDG, Dep, FLOW, OUTPUT
from .pointsto import PointsToResult, analyze_pointsto
from .privatization import ClassInfo, PrivatizationResult, classify
from .static_deps import build_static_ddg, static_parallelizability_report
from .profiler import LoopProfile, ObjectKey, find_control_decl, profile_loop

__all__ = [
    "DDG", "Dep", "FLOW", "ANTI", "OUTPUT",
    "AccessClasses", "UnionFind", "build_access_classes",
    "LoopProfile", "ObjectKey", "profile_loop", "find_control_decl",
    "PrivatizationResult", "ClassInfo", "classify",
    "Breakdown", "compute_breakdown",
    "PointsToResult", "analyze_pointsto",
    "build_static_ddg", "static_parallelizability_report",
    "BasicBlock", "CFG", "build_cfg", "build_loop_body_cfg",
    "Analysis", "DataflowResult", "solve", "element_info",
    "ReachingDefinitions", "Liveness",
    "UpwardExposure", "DownwardExposure",
]
