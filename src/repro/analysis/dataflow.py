"""Generic monotone dataflow engine over :mod:`repro.analysis.cfg`.

One worklist solver, four classic instances.  Facts are frozensets and
the meet is union (may-analyses), which covers everything the static
auditor needs:

* :class:`ReachingDefinitions` — forward; facts are ``(decl_nid,
  site_nid)`` pairs, with ``site_nid=None`` encoding the synthetic
  "uninitialized" definition a declaration without initializer
  produces.  Basis of the uninitialized-read lint.
* :class:`Liveness` — backward; facts are ``decl_nid``\\ s.  Basis of
  the dead span-store elimination (§3.4) in
  :func:`repro.transform.optimize.eliminate_dead_spans`.
* :class:`UpwardExposure` / :class:`DownwardExposure` — the same
  transfer functions run over a single-iteration loop region
  (:func:`~repro.analysis.cfg.build_loop_body_cfg`), giving the static
  analogue of the paper's Definitions 2–3.

Definitions and uses are extracted once per element and cached.  A
definition is *certain* (it kills) only when it executes unconditionally
with its element — assignments nested under ``?:`` or the right-hand
side of ``&&``/``||`` generate but do not kill, so a maybe-write never
hides an earlier definition.  Calls to non-builtin functions
conservatively read every declaration the instance was told about
(``call_reads``), keeping globals live across calls.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..frontend import ast
from .cfg import CFG, Element

#: (decl_nid, def_site_nid | None): one definition of one variable;
#: a ``None`` site is the synthetic uninitialized definition
Definition = Tuple[int, Optional[int]]


class ElementInfo:
    """Uses, definitions, and call presence of one CFG element."""

    __slots__ = ("uses", "defs", "has_call")

    def __init__(self, uses: Set[int],
                 defs: List[Tuple[int, Optional[int], bool]],
                 has_call: bool):
        self.uses = uses
        #: (decl_nid, site_nid | None, certain)
        self.defs = defs
        self.has_call = has_call


def _init_leaves(init) -> List[ast.Expr]:
    if isinstance(init, list):
        out: List[ast.Expr] = []
        for item in init:
            out.extend(_init_leaves(item))
        return out
    return [init]


def element_info(elem: Element) -> ElementInfo:
    """Extract variable uses and definitions from one element."""
    uses: Set[int] = set()
    defs: List[Tuple[int, Optional[int], bool]] = []
    state = {"call": False}

    def visit(node: ast.Node, certain: bool) -> None:
        if isinstance(node, ast.Assign):
            target = node.target
            if isinstance(target, ast.Ident) and \
                    isinstance(target.decl, ast.VarDecl):
                if node.op != "=":
                    uses.add(target.decl.nid)
                defs.append((target.decl.nid, node.nid, certain))
            else:
                visit(target, certain)
            visit(node.value, certain)
            return
        if isinstance(node, ast.Unary) and node.op in (
            "++", "--", "p++", "p--"
        ):
            operand = node.operand
            if isinstance(operand, ast.Ident) and \
                    isinstance(operand.decl, ast.VarDecl):
                uses.add(operand.decl.nid)
                defs.append((operand.decl.nid, node.nid, certain))
            else:
                visit(operand, certain)
            return
        if isinstance(node, ast.Cond):
            visit(node.cond, certain)
            visit(node.then, False)
            visit(node.els, False)
            return
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            visit(node.left, certain)
            visit(node.right, False)
            return
        if isinstance(node, ast.Ident):
            if isinstance(node.decl, ast.VarDecl):
                uses.add(node.decl.nid)
            return
        if isinstance(node, ast.Call):
            state["call"] = True
        for name in node._fields:
            child = getattr(node, name)
            if isinstance(child, ast.Node):
                visit(child, certain)
            elif isinstance(child, list):
                for item in child:
                    if isinstance(item, ast.Node):
                        visit(item, certain)

    if isinstance(elem, ast.VarDecl):
        if elem.init is not None:
            for leaf in _init_leaves(elem.init):
                visit(leaf, True)
            defs.append((elem.nid, elem.nid, True))
        else:
            defs.append((elem.nid, None, True))
    else:
        visit(elem, True)
    return ElementInfo(uses, defs, state["call"])


class Analysis:
    """A monotone may-analysis: union meet over frozenset facts."""

    forward: bool = True

    def boundary(self) -> FrozenSet:
        """Facts at the CFG entry (forward) or exit (backward)."""
        return frozenset()

    def transfer(self, elem: Element, facts: FrozenSet) -> FrozenSet:
        raise NotImplementedError

    # shared per-element cache
    def __init__(self):
        self._info: Dict[int, ElementInfo] = {}

    def info(self, elem: Element) -> ElementInfo:
        cached = self._info.get(elem.nid)
        if cached is None:
            cached = element_info(elem)
            self._info[elem.nid] = cached
        return cached


class DataflowResult:
    """Fixpoint facts, queryable per block and per element.

    ``before``/``after`` are in *program order* for both directions:
    ``before(nid)`` is the fact set holding just before the element
    executes, ``after(nid)`` just after (for a backward analysis,
    "after" is e.g. the live-out set)."""

    def __init__(self, cfg: CFG, analysis: Analysis,
                 block_before: Dict[int, FrozenSet],
                 block_after: Dict[int, FrozenSet]):
        self.cfg = cfg
        self.analysis = analysis
        self.block_before = block_before
        self.block_after = block_after
        self._elem_before: Dict[int, FrozenSet] = {}
        self._elem_after: Dict[int, FrozenSet] = {}
        self._done_blocks: Set[int] = set()

    def _materialize(self, bid: int) -> None:
        if bid in self._done_blocks:
            return
        self._done_blocks.add(bid)
        block = self.cfg.blocks[bid]
        analysis = self.analysis
        if analysis.forward:
            facts = self.block_before[bid]
            for elem in block.elems:
                self._elem_before[elem.nid] = facts
                facts = analysis.transfer(elem, facts)
                self._elem_after[elem.nid] = facts
        else:
            facts = self.block_after[bid]
            for elem in reversed(block.elems):
                self._elem_after[elem.nid] = facts
                facts = analysis.transfer(elem, facts)
                self._elem_before[elem.nid] = facts

    def before(self, nid: int) -> FrozenSet:
        block = self.cfg.block_of[nid]
        self._materialize(block.bid)
        return self._elem_before[nid]

    def after(self, nid: int) -> FrozenSet:
        block = self.cfg.block_of[nid]
        self._materialize(block.bid)
        return self._elem_after[nid]

    @property
    def at_exit(self) -> FrozenSet:
        """Facts at the CFG exit (program-order end)."""
        return self.block_before[self.cfg.exit.bid] \
            if not self.analysis.forward else \
            self.block_after[self.cfg.exit.bid]

    @property
    def at_entry(self) -> FrozenSet:
        """Facts at the CFG entry (program-order start)."""
        return self.block_before[self.cfg.entry.bid]


def solve(cfg: CFG, analysis: Analysis) -> DataflowResult:
    """Worklist fixpoint of ``analysis`` over ``cfg``."""
    before: Dict[int, FrozenSet] = {b.bid: frozenset() for b in cfg.blocks}
    after: Dict[int, FrozenSet] = {b.bid: frozenset() for b in cfg.blocks}
    boundary = frozenset(analysis.boundary())
    work = deque(cfg.blocks if analysis.forward else reversed(cfg.blocks))
    pending = {b.bid for b in cfg.blocks}
    while work:
        block = work.popleft()
        pending.discard(block.bid)
        if analysis.forward:
            facts = boundary if block is cfg.entry else frozenset()
            for pred in block.preds:
                facts |= after[pred.bid]
            before[block.bid] = facts
            for elem in block.elems:
                facts = analysis.transfer(elem, facts)
            if facts != after[block.bid]:
                after[block.bid] = facts
                for succ in block.succs:
                    if succ.bid not in pending:
                        pending.add(succ.bid)
                        work.append(succ)
        else:
            facts = boundary if block is cfg.exit else frozenset()
            for succ in block.succs:
                facts |= before[succ.bid]
            after[block.bid] = facts
            for elem in reversed(block.elems):
                facts = analysis.transfer(elem, facts)
            if facts != before[block.bid]:
                before[block.bid] = facts
                for pred in block.preds:
                    if pred.bid not in pending:
                        pending.add(pred.bid)
                        work.append(pred)
    return DataflowResult(cfg, analysis, before, after)


class ReachingDefinitions(Analysis):
    """Forward may-analysis over :data:`Definition` facts.

    ``boundary_defs`` seeds the entry (e.g. parameter bindings when the
    CFG was built without them, or "everything defined" for region
    graphs)."""

    forward = True

    def __init__(self, boundary_defs: Iterable[Definition] = ()):
        super().__init__()
        self._boundary = frozenset(boundary_defs)

    def boundary(self) -> FrozenSet:
        return self._boundary

    def transfer(self, elem: Element, facts: FrozenSet) -> FrozenSet:
        info = self.info(elem)
        if not info.defs:
            return facts
        killed = {decl for decl, _site, certain in info.defs if certain}
        out = {fact for fact in facts if fact[0] not in killed}
        out.update((decl, site) for decl, site, _certain in info.defs)
        return frozenset(out)


class Liveness(Analysis):
    """Backward may-analysis; facts are live ``decl_nid``\\ s.

    ``exit_live`` is the boundary at the CFG exit (globals, or any
    variable observable after the region); ``call_reads`` are treated
    as read by every call to a user function."""

    forward = False

    def __init__(self, exit_live: Iterable[int] = (),
                 call_reads: Iterable[int] = ()):
        super().__init__()
        self._exit = frozenset(exit_live)
        self._call = frozenset(call_reads)

    def boundary(self) -> FrozenSet:
        return self._exit

    def transfer(self, elem: Element, facts: FrozenSet) -> FrozenSet:
        info = self.info(elem)
        out = set(facts)
        for decl, _site, certain in info.defs:
            if certain:
                out.discard(decl)
        out.update(info.uses)
        if info.has_call:
            out.update(self._call)
        return frozenset(out)


class ReductionValueFlow(Analysis):
    """Forward may-analysis proving a candidate reduction accumulator is
    only ever touched by its recognized update elements.

    Facts are ``(decl_nid, tag)`` pairs with ``tag`` either
    ``"reduced"`` (the element touching the tracked declaration is one
    of the ``allowed_elems`` — a recognized reduction update) or
    ``"tainted"`` (any other element reads or writes it).  Facts are
    add-only, so the transfer is trivially monotone; the verdict is the
    union of every block's out-set — including predecessor-less dead
    blocks, which the solver still visits — so a taint on *any* path
    (even statically unreachable code) disqualifies the accumulator.
    """

    forward = True

    def __init__(self, tracked: Iterable[int], allowed_elems: Iterable[int]):
        super().__init__()
        self._tracked = frozenset(tracked)
        self._allowed = frozenset(allowed_elems)

    def transfer(self, elem: Element, facts: FrozenSet) -> FrozenSet:
        info = self.info(elem)
        touched = (info.uses | {d for d, _s, _c in info.defs}) & self._tracked
        if not touched:
            return facts
        tag = "reduced" if elem.nid in self._allowed else "tainted"
        return facts | {(decl, tag) for decl in touched}


def reduction_taints(result: DataflowResult) -> FrozenSet:
    """All facts accumulated anywhere in the CFG (dead blocks included)."""
    out: FrozenSet = frozenset()
    for facts in result.block_after.values():
        out |= facts
    return out


class UpwardExposure(Liveness):
    """Definition 2, statically: run over a single-iteration region CFG
    (:func:`~repro.analysis.cfg.build_loop_body_cfg`) with an empty
    boundary; ``at_entry`` is then the set of variables some path reads
    before writing within one iteration."""


class DownwardExposure(ReachingDefinitions):
    """Definition 3, statically: run over a single-iteration region CFG;
    ``at_exit`` holds the definitions that survive to the end of an
    iteration (writes whose value the next iteration or the code after
    the loop may observe)."""
