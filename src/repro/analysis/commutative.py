"""Static commutativity prover: the *commutative* access class.

The paper's Definition 5 must reject any access class touched by a
loop-carried flow dependence — even when every conflicting update is a
commutative reduction (``+=``, ``min``/``max``, histogram bumps) whose
per-thread copies could simply be merged at loop exit.  This module
extends the §3.2 partition with a fourth class: an interprocedural
reduction-pattern recognizer proves, over the existing CFG + monotone
dataflow stack, that every access of a conflicting class is one of a
fixed set of commutative update shapes on a single *accumulator*
variable, that the accumulator is never otherwise read or written
inside the loop (on any static path, dead code included), and that no
other access in the loop can alias its storage.  Proven classes are
upgraded in place: their sites join ``private_sites`` (so expansion
gives each worker a privatized copy) and ``commutative_sites`` (so the
pipeline emits identity-initialization and merge-back code, and the
retry auditor knows the updates are *not* idempotent).

Every upgrade is recorded in a serializable **parallelism
certificate** (:func:`build_certificate`): the class assignment of
every access site, the reduction op and identity element per
accumulator, and the dataflow facts the proof used.  The certificate is
re-verified from scratch on the *output* IR by the independent checker
in :mod:`repro.lint.certify` — this module proves, that module audits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.ctypes import ArrayType, IntType
from ..frontend.sema import SemaResult
from .cfg import build_cfg, build_loop_body_cfg
from .dataflow import (
    ReachingDefinitions, ReductionValueFlow, reduction_taints, solve,
)
from .pointsto import PointsToResult, analyze_pointsto
from .privatization import ClassInfo, PrivatizationResult
from .profiler import LoopProfile

#: bump on any change to the certificate JSON layout *or* to the proof
#: obligations behind it; the staged pipeline folds this into the
#: classify-stage content key, so cached stages can never skip re-proof
CERT_SCHEMA_VERSION = 1

#: blocker string Definition 5 emits for an otherwise-independent class
FREE_BLOCKER = "no loop-carried anti/output dependence"

# -- reduction op groups ----------------------------------------------------
#: group -> compound-assignment operators that realize it
GROUP_COMPOUND_OPS = {
    "add": ("+=", "-="),
    "mul": ("*=",),
    "and": ("&=",),
    "or": ("|=",),
    "xor": ("^=",),
}
#: group -> the binary operators of the ``lv = lv op e`` spelling
GROUP_BINARY_OPS = {
    "add": ("+", "-"),
    "mul": ("*",),
    "and": ("&",),
    "or": ("|",),
    "xor": ("^",),
}
#: operator of the copy-merge statement the pipeline emits per group
GROUP_MERGE_OPS = {
    "add": "+=", "mul": "*=", "and": "&=", "or": "|=", "xor": "^=",
    # min/max merge with a compare-and-assign, not a compound op
    "min": "<", "max": ">",
}

_COMPOUND_TO_GROUP = {
    op: group for group, ops in GROUP_COMPOUND_OPS.items() for op in ops
}
_BINARY_TO_GROUP = {
    op: group for group, ops in GROUP_BINARY_OPS.items() for op in ops
}
#: binary ops where ``lv`` may appear on either side
_SYMMETRIC_OPS = {"+", "*", "&", "|", "^"}


def identity_value(group: str, elem_type: IntType) -> int:
    """The identity element non-zero copies are initialized to."""
    if group in ("add", "or", "xor"):
        return 0
    if group == "mul":
        return 1
    if group == "and":
        return -1  # all-ones in any signed width (wraps per elem_type)
    if group == "min":
        return elem_type.max_value
    if group == "max":
        return elem_type.min_value
    raise ValueError(f"unknown reduction group {group!r}")


class Update:
    """One recognized commutative update of an accumulator."""

    #: forms the recognizer accepts
    COMPOUND = "compound"   # lv op= e
    INCDEC = "incdec"       # lv++ / lv-- (pre or post)
    ASSIGN = "assign"       # lv = lv op e  (or  lv = e op lv, op commutative)
    GUARD = "guard"         # if (e REL lv) lv = e;   (min/max)

    def __init__(self, root: ast.VarDecl, group: str, form: str,
                 node: ast.Node, sites: Set[int], elems: Set[int],
                 store_nids: Set[int], consumed: Set[int]):
        self.root = root
        self.group = group
        self.form = form
        #: the update's anchor node (Assign / Unary / If)
        self.node = node
        #: DDG site nids this update generates (load + store attribution)
        self.sites = sites
        #: CFG element nids allowed to touch the accumulator
        self.elems = elems
        #: element nids that *define* the accumulator (reaching-defs check)
        self.store_nids = store_nids
        #: ids() of the accumulator Ident occurrences inside this update
        self.consumed = consumed


class ReductionInfo:
    """Everything the pipeline and the certificate need for one proven
    accumulator."""

    def __init__(self, root: ast.VarDecl, group: str,
                 updates: List[Update], class_reps: List[int],
                 facts: Dict[str, object]):
        self.root = root
        self.root_origin = root.nid  # proof runs on the original program
        self.name = root.name
        self.group = group
        self.updates = updates
        self.class_reps = class_reps
        self.facts = facts
        ctype = root.ctype
        if isinstance(ctype, ArrayType):
            self.is_array = True
            self.length = ctype.length
            self.elem_type = ctype.elem
        else:
            self.is_array = False
            self.length = 1
            self.elem_type = ctype
        self.identity = identity_value(group, self.elem_type)

    @property
    def sites(self) -> Set[int]:
        out: Set[int] = set()
        for u in self.updates:
            out |= u.sites
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "root": self.root_origin,
            "name": self.name,
            "op": self.group,
            "identity": self.identity,
            "is_array": self.is_array,
            "length": self.length,
            "elem": repr(self.elem_type),
            "updates": [
                {"origin": u.node.nid, "form": u.form,
                 "sites": sorted(u.sites)}
                for u in self.updates
            ],
            "classes": sorted(self.class_reps),
            "facts": self.facts,
        }

    def __repr__(self) -> str:
        return (
            f"<ReductionInfo {self.name} op={self.group} "
            f"updates={len(self.updates)}>"
        )


# -- structural recognition -------------------------------------------------

def expr_equal(a: Optional[ast.Expr], b: Optional[ast.Expr]) -> bool:
    """Structural equality over side-effect-free expressions; anything
    with calls or assignments compares unequal (conservative)."""
    if a is None or b is None:
        return a is b
    if isinstance(a, ast.Cast):
        a = a.expr
    if isinstance(b, ast.Cast):
        b = b.expr
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.IntLit):
        return a.value == b.value
    if isinstance(a, ast.Ident):
        return a.decl is b.decl and a.name == b.name
    if isinstance(a, ast.Unary):
        return a.op == b.op and a.op not in ("++", "--", "p++", "p--") \
            and expr_equal(a.operand, b.operand)
    if isinstance(a, ast.Binary):
        return a.op == b.op and expr_equal(a.left, b.left) \
            and expr_equal(a.right, b.right)
    if isinstance(a, ast.Index):
        return expr_equal(a.base, b.base) and expr_equal(a.index, b.index)
    if isinstance(a, ast.Member):
        return a.name == b.name and a.arrow == b.arrow \
            and expr_equal(a.base, b.base)
    return False


def _lv_root(expr: ast.Expr) -> Optional[Tuple[ast.VarDecl, ast.Ident, int]]:
    """Accepted accumulator lvalues: ``x`` or ``a[idx]`` with ``a`` a
    true array (no pointer hops — disjointness stays decidable).
    Returns (decl, root Ident occurrence, site nid of the lvalue)."""
    if isinstance(expr, ast.Ident) and isinstance(expr.decl, ast.VarDecl):
        return expr.decl, expr, expr.nid
    if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Ident) \
            and isinstance(expr.base.decl, ast.VarDecl):
        base_t = expr.base.decl.ctype
        if isinstance(base_t, ArrayType):
            return expr.base.decl, expr.base, expr.nid
    return None


def _root_type_ok(decl: ast.VarDecl) -> bool:
    """Integer scalars and 1-D integer arrays of static length only:
    wrapping integer ops are associative/commutative mod 2**w, so the
    merged result is bit-identical; floats and anything pointer-shaped
    are out."""
    ctype = decl.ctype
    if isinstance(ctype, ArrayType):
        if ctype.length is None or not isinstance(ctype.elem, IntType):
            return False
        return True
    return isinstance(ctype, IntType)


def _match_update(stmt_expr: ast.Expr) -> Optional[Tuple[
        ast.VarDecl, str, str, Set[int], Set[int], Set[int], Set[int],
        List[ast.Expr]]]:
    """Recognize one statement-level expression as a reduction update.

    Returns ``(root, group, form, sites, elems, store_nids, consumed,
    foreign_subexprs)`` where ``foreign_subexprs`` are the parts that
    must not reference the accumulator (index and value operands)."""
    node = stmt_expr
    if isinstance(node, ast.Assign) and node.op in _COMPOUND_TO_GROUP:
        got = _lv_root(node.target)
        if got is None:
            return None
        decl, root_ident, load_site = got
        foreign = [node.value]
        if isinstance(node.target, ast.Index):
            foreign.append(node.target.index)
        return (decl, _COMPOUND_TO_GROUP[node.op], Update.COMPOUND,
                {node.nid, load_site}, {node.nid}, {node.nid},
                {id(root_ident)}, foreign)
    if isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
        got = _lv_root(node.operand)
        if got is None:
            return None
        decl, root_ident, load_site = got
        foreign = []
        if isinstance(node.operand, ast.Index):
            foreign.append(node.operand.index)
        return (decl, "add", Update.INCDEC,
                {node.nid, load_site}, {node.nid}, {node.nid},
                {id(root_ident)}, foreign)
    if isinstance(node, ast.Assign) and node.op == "=":
        got = _lv_root(node.target)
        if got is None:
            return None
        decl, target_ident, _ = got
        value = node.value
        if not (isinstance(value, ast.Binary)
                and value.op in _BINARY_TO_GROUP):
            return None
        group = _BINARY_TO_GROUP[value.op]
        inner: Optional[ast.Expr] = None
        rest: Optional[ast.Expr] = None
        if expr_equal(value.left, node.target):
            inner, rest = value.left, value.right
        elif value.op in _SYMMETRIC_OPS and \
                expr_equal(value.right, node.target):
            inner, rest = value.right, value.left
        if inner is None:
            return None
        got_inner = _lv_root(inner)
        if got_inner is None or got_inner[0] is not decl:
            return None
        inner_root_ident, inner_site = got_inner[1], got_inner[2]
        foreign = [rest]
        if isinstance(node.target, ast.Index):
            foreign.append(node.target.index)
        return (decl, group, Update.ASSIGN,
                {node.nid, inner_site}, {node.nid}, {node.nid},
                {id(target_ident), id(inner_root_ident)}, foreign)
    return None


def _match_guard(stmt: ast.If) -> Optional[Tuple[
        ast.VarDecl, str, Set[int], Set[int], Set[int], Set[int],
        List[ast.Expr], ast.Assign]]:
    """Recognize ``if (e REL lv) lv = e;`` (no else) as min/max."""
    if stmt.els is not None:
        return None
    cond = stmt.cond
    if not (isinstance(cond, ast.Binary)
            and cond.op in ("<", ">", "<=", ">=")):
        return None
    then = stmt.then
    if isinstance(then, ast.Block):
        if len(then.stmts) != 1:
            return None
        then = then.stmts[0]
    if not (isinstance(then, ast.ExprStmt)
            and isinstance(then.expr, ast.Assign)
            and then.expr.op == "="):
        return None
    assign = then.expr
    got = _lv_root(assign.target)
    if got is None:
        return None
    decl, target_ident, _ = got
    # which side of the condition is the accumulator?
    if expr_equal(cond.left, assign.target):
        lv_side, e_side, rel = cond.left, cond.right, cond.op
        # lv REL e, assign lv = e:  lv < e -> e larger kept -> max
        group = "max" if rel in ("<", "<=") else "min"
    elif expr_equal(cond.right, assign.target):
        lv_side, e_side = cond.right, cond.left
        # e REL lv, assign lv = e:  e > lv -> e larger kept -> max
        group = "max" if cond.op in (">", ">=") else "min"
    else:
        return None
    if not expr_equal(e_side, assign.value):
        return None
    got_cond = _lv_root(lv_side)
    if got_cond is None or got_cond[0] is not decl:
        return None
    cond_root_ident, cond_site = got_cond[1], got_cond[2]
    foreign: List[ast.Expr] = [e_side, assign.value]
    if isinstance(assign.target, ast.Index):
        foreign.append(assign.target.index)
    if isinstance(lv_side, ast.Index):
        foreign.append(lv_side.index)
    sites = {assign.nid, cond_site}
    elems = {cond.nid, assign.nid}
    consumed = {id(target_ident), id(cond_root_ident)}
    return (decl, group, sites, elems, {assign.nid}, consumed,
            foreign, assign)


class _RegionWalker:
    """Collect reduction updates and every variable reference from a
    loop region plus its transitively called function bodies."""

    def __init__(self, sema: SemaResult):
        self.sema = sema
        self.updates: List[Update] = []
        #: decl nid -> [Ident occurrences] across the whole region
        self.refs: Dict[int, List[ast.Ident]] = {}
        self.indirect_call = False
        self.callees: List[ast.FunctionDef] = []
        self._seen_fns: Set[int] = set()
        self._seen_updates: Set[int] = set()

    # -- entry points -----------------------------------------------------
    def walk_loop(self, loop: ast.LoopStmt) -> None:
        init = getattr(loop, "init", None)
        if init is not None:
            # refs only: a write in the loop header runs once per loop
            # entry, so it can never count as a per-iteration update
            if isinstance(init, ast.ExprStmt):
                if init.expr is not None:
                    self._expr(init.expr)
            elif isinstance(init, ast.DeclStmt):
                for decl in init.decls:
                    for leaf in self._init_leaves(decl.init):
                        self._expr(leaf)
            else:
                self._stmt(init)
        if getattr(loop, "cond", None) is not None:
            self._expr(loop.cond)
        step = getattr(loop, "step", None)
        if step is not None:
            if not self._maybe_update(step):
                self._expr(step)
        self._stmt(loop.body)

    def _walk_fn(self, fn: ast.FunctionDef) -> None:
        if fn.nid in self._seen_fns:
            return
        self._seen_fns.add(fn.nid)
        self.callees.append(fn)
        if fn.body is not None:
            self._stmt(fn.body)

    # -- statements -------------------------------------------------------
    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._stmt(s)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                if not self._maybe_update(stmt.expr):
                    self._expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                for leaf in self._init_leaves(decl.init):
                    self._expr(leaf)
        elif isinstance(stmt, ast.If):
            guard = _match_guard(stmt)
            if guard is not None:
                (decl, group, sites, elems, stores, consumed, foreign,
                 _assign) = guard
                self._record(Update(decl, group, Update.GUARD, stmt,
                                    sites, elems, stores, consumed))
                self._expr(stmt.cond)
                then = stmt.then
                body = then.stmts[0] if isinstance(then, ast.Block) \
                    else then
                self._expr(body.expr)
                return
            self._expr(stmt.cond)
            self._stmt(stmt.then)
            if stmt.els is not None:
                self._stmt(stmt.els)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            if stmt.cond is not None:
                self._expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                if not self._maybe_update(stmt.step):
                    self._expr(stmt.step)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                self._expr(stmt.expr)
        # Break / Continue: nothing to record

    @staticmethod
    def _init_leaves(init) -> List[ast.Expr]:
        if init is None:
            return []
        if isinstance(init, list):
            out: List[ast.Expr] = []
            for item in init:
                out.extend(_RegionWalker._init_leaves(item))
            return out
        return [init]

    def _maybe_update(self, expr: ast.Expr) -> bool:
        got = _match_update(expr)
        if got is None:
            return False
        decl, group, form, sites, elems, stores, consumed, foreign = got
        self._record(Update(decl, group, form, expr, sites, elems,
                            stores, consumed))
        for sub in foreign:
            self._expr(sub)
        return True

    def _record(self, update: Update) -> None:
        if update.node.nid in self._seen_updates:
            return
        self._seen_updates.add(update.node.nid)
        self.updates.append(update)

    # -- expressions ------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, ast.VarDecl):
                self.refs.setdefault(expr.decl.nid, []).append(expr)
            return
        if isinstance(expr, ast.Call):
            name = expr.callee_name
            if name is None:
                self.indirect_call = True
            else:
                fn = self.sema.functions.get(name)
                if fn is not None:
                    self._walk_fn(fn)
            for arg in expr.args:
                self._expr(arg)
            return
        for field in expr._fields:
            child = getattr(expr, field)
            if isinstance(child, ast.Expr):
                self._expr(child)
            elif isinstance(child, list):
                for item in child:
                    if isinstance(item, ast.Expr):
                        self._expr(item)


# -- the prover -------------------------------------------------------------

def _candidate_classes(priv: PrivatizationResult) -> List[ClassInfo]:
    """Non-private classes whose blockers include a loop-carried flow
    dependence — the one thing that actually forbids a DOALL schedule.
    Classes that are merely exposed (e.g. ``a[i] = a[i] + 1``: disjoint
    elements, no cross-iteration conflict) stay shared; privatizing
    them would buy nothing and cost N copies plus a merge."""
    out = []
    for info in priv.class_infos:
        if info.private or info.commutative:
            continue
        if any(b.startswith("loop-carried flow dependence")
               for b in info.blockers):
            out.append(info)
    return out


def _dynamic_objects_ok(profile: LoopProfile, sites: Set[int],
                        root_nid: int) -> bool:
    """Every observed object at the accumulator's sites is the
    accumulator's own storage (global or stack slot of the decl)."""
    allowed = {("global", root_nid), ("stack", root_nid)}
    for site in sites:
        for key in profile.site_objects.get(site, ()):
            if key not in allowed:
                return False
    return True


def _static_objects_ok(pointsto: PointsToResult, sites: Set[int],
                       root_nid: int) -> bool:
    """Andersen agreement: where the points-to analysis has an opinion
    about an accumulator site, it must pin it to the accumulator."""
    for site in sites:
        objs = pointsto.objects_of_access(site)
        if objs and not objs <= {("var", root_nid)}:
            return False
    return True


def _foreign_alias_free(profile: LoopProfile, pointsto: PointsToResult,
                        update_sites: Set[int], root_nid: int) -> bool:
    """No *other* access site in the loop may reach the accumulator's
    storage — dynamically observed or statically possible."""
    keys = {("global", root_nid), ("stack", root_nid)}
    var_obj = ("var", root_nid)
    for site in profile.ddg.sites:
        if site in update_sites:
            continue
        if profile.site_objects.get(site, set()) & keys:
            return False
        if var_obj in pointsto.objects_of_access(site):
            return False
    return True


def _address_never_escapes(program: ast.Program, decl: ast.VarDecl) -> bool:
    """The accumulator's address must never escape anywhere in the
    program: no ``&x``, and for arrays no bare (decayed) use outside an
    index base — otherwise a pointer could reach it on a path the
    profile never saw."""
    is_array = isinstance(decl.ctype, ArrayType)

    def check(node: ast.Node) -> bool:
        for field in node._fields:
            child = getattr(node, field)
            children = child if isinstance(child, list) else [child]
            for item in children:
                if not isinstance(item, ast.Node):
                    continue
                if isinstance(item, ast.Ident) and item.decl is decl:
                    if isinstance(node, ast.Unary) and node.op == "&":
                        return False
                    if is_array and not (
                        isinstance(node, ast.Index) and field == "base"
                    ):
                        return False
                if not check(item):
                    return False
        return True

    for fn in program.functions():
        if fn.body is not None and not check(fn.body):
            return False
    for gdecl in program.decls:
        if isinstance(gdecl, ast.VarDecl):
            for leaf in _RegionWalker._init_leaves(gdecl.init):
                if not check(leaf):
                    return False
                if isinstance(leaf, ast.Ident) and leaf.decl is decl:
                    return False
    return True


def _carried_edges_closed(profile: LoopProfile,
                          update_sites: Set[int]) -> bool:
    """Every carried dependence touching the accumulator must stay
    within its update sites (no cross-variable carried coupling)."""
    for edge in profile.ddg.edges:
        if not edge.carried:
            continue
        src_in = edge.src in update_sites
        dst_in = edge.dst in update_sites
        if src_in != dst_in:
            return False
    return True


def _prove_dataflow(loop: ast.LoopStmt, callees: List[ast.FunctionDef],
                    root: ast.VarDecl, updates: List[Update]
                    ) -> Optional[Dict[str, object]]:
    """Run the value-flow lattice and reaching definitions over the
    loop region and every callee body; returns the fact record on
    success, None when any path taints the accumulator."""
    allowed_elems: Set[int] = set()
    store_nids: Set[int] = set()
    for u in updates:
        allowed_elems |= u.elems
        store_nids |= u.store_nids
    cfgs: List[Tuple[str, object]] = [("loop", build_loop_body_cfg(loop))]
    for fn in callees:
        cfgs.append((fn.name, build_cfg(fn)))
    vf_facts: List[List[object]] = []
    rd_facts: Dict[str, List[int]] = {}
    for name, cfg in cfgs:
        vf = solve(cfg, ReductionValueFlow({root.nid}, allowed_elems))
        taints = reduction_taints(vf)
        if (root.nid, "tainted") in taints:
            return None
        for fact in sorted(taints):
            vf_facts.append([name, fact[0], fact[1]])
        rd = solve(cfg, ReachingDefinitions([(root.nid, None)]))
        exit_defs = {
            site for decl, site in rd.at_exit
            if decl == root.nid and site is not None
        }
        if not exit_defs <= store_nids:
            return None
        rd_facts[name] = sorted(exit_defs)
    return {
        "value_flow": vf_facts,
        "reaching_defs": rd_facts,
        "allowed_elems": sorted(allowed_elems),
    }


def prove_reductions(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
    profile: LoopProfile,
    priv: PrivatizationResult,
    pointsto: Optional[PointsToResult] = None,
) -> List[ReductionInfo]:
    """Find every provable reduction accumulator of ``loop``.  Pure
    query — :func:`upgrade_commutative` applies the result."""
    candidates = _candidate_classes(priv)
    if not candidates:
        return []
    walker = _RegionWalker(sema)
    walker.walk_loop(loop)
    if walker.indirect_call or not walker.updates:
        return []

    # group structural updates by accumulator decl
    by_root: Dict[int, List[Update]] = {}
    decls: Dict[int, ast.VarDecl] = {}
    for u in walker.updates:
        by_root.setdefault(u.root.nid, []).append(u)
        decls[u.root.nid] = u.root

    # which candidate classes could each root explain?
    root_classes: Dict[int, List[ClassInfo]] = {}
    for info in candidates:
        for root_nid, updates in by_root.items():
            union_sites: Set[int] = set()
            for u in updates:
                union_sites |= u.sites
            if info.members <= union_sites:
                root_classes.setdefault(root_nid, []).append(info)
                break

    if not root_classes:
        return []
    if pointsto is None:
        pointsto = analyze_pointsto(program, sema)

    proven: List[ReductionInfo] = []
    for root_nid, infos in root_classes.items():
        root = decls[root_nid]
        updates = by_root[root_nid]
        if not _root_type_ok(root):
            continue
        groups = {u.group for u in updates}
        if len(groups) != 1:
            continue
        group = groups.pop()
        # every accumulator reference in the region must be consumed by
        # a recognized update (induction variables and plain reads of
        # the accumulator both fail here)
        consumed: Set[int] = set()
        union_sites = set()
        for u in updates:
            consumed |= u.consumed
            union_sites |= u.sites
        refs = walker.refs.get(root_nid, [])
        if any(id(r) not in consumed for r in refs):
            continue
        if not _address_never_escapes(program, root):
            continue
        member_union: Set[int] = set()
        for info in infos:
            member_union |= info.members
        if not _dynamic_objects_ok(profile, member_union, root_nid):
            continue
        if not _static_objects_ok(pointsto, member_union, root_nid):
            continue
        if not _foreign_alias_free(profile, pointsto, union_sites,
                                   root_nid):
            continue
        if not _carried_edges_closed(profile, union_sites):
            continue
        facts = _prove_dataflow(loop, walker.callees, root, updates)
        if facts is None:
            continue
        facts["objects"] = {
            str(site): sorted(
                list(k) for k in profile.site_objects.get(site, ())
            )
            for site in sorted(member_union)
        }
        facts["carried_edges_closed"] = True
        proven.append(ReductionInfo(
            root, group, updates,
            [info.representative for info in infos], facts,
        ))
    return proven


def upgrade_commutative(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
    profile: LoopProfile,
    priv: PrivatizationResult,
    pointsto: Optional[PointsToResult] = None,
) -> List[ReductionInfo]:
    """Prove and apply: upgraded classes join ``private_sites`` (their
    storage expands and redirects per worker) and ``commutative_sites``
    (the pipeline adds identity init + merge-back; replays are known
    non-idempotent).  Mutates ``priv`` in place."""
    proven = prove_reductions(program, sema, loop, profile, priv,
                              pointsto)
    for red in proven:
        reps = set(red.class_reps)
        for i, info in enumerate(priv.class_infos):
            if info.representative not in reps:
                continue
            priv.class_infos[i] = info._replace(commutative=True)
            priv.shared_sites -= info.members
            priv.private_sites |= info.members
            priv.commutative_sites |= info.members
        priv.reductions[red.root_origin] = red
    return proven


def build_certificate(label: str, profile: LoopProfile,
                      priv: PrivatizationResult) -> Dict[str, object]:
    """The serializable parallelism certificate for one loop: class
    assignment per access site, reduction op + identity per upgraded
    accumulator, and the dataflow facts used.  Verified from scratch by
    :mod:`repro.lint.certify` (LINT-CERT) on the output IR."""
    classes = []
    sites: Dict[str, str] = {}
    for info in priv.class_infos:
        if info.commutative:
            category = "commutative"
        elif info.private:
            category = "private"
        elif all(b == FREE_BLOCKER for b in info.blockers):
            category = "free"
        else:
            category = "shared"
        classes.append({
            "representative": info.representative,
            "members": sorted(info.members),
            "category": category,
            "blockers": list(info.blockers),
        })
        for site in info.members:
            sites[str(site)] = category
    return {
        "schema": CERT_SCHEMA_VERSION,
        "loop": label,
        "sites": sites,
        "classes": sorted(classes, key=lambda c: c["representative"]),
        "reductions": [
            red.as_dict() for red in priv.reductions.values()
        ],
    }
