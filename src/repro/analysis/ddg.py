"""Loop-level data dependence graph (paper Definition 1).

Vertices are memory-access *sites* — AST node ids of the expressions
that load or store.  Edges carry a dependence kind (flow / anti /
output) and whether the dependence is loop-carried or loop-independent.

The graph also records the two per-access properties Definitions 2 and
3 introduce: *upwards-exposed loads* (the value read comes from outside
the loop) and *downwards-exposed stores* (the value written is used
after the loop).  Definition 5's privatizability test consumes exactly
these ingredients.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"


class Dep(NamedTuple):
    """One dependence edge: ``src`` must happen before ``dst``."""

    src: int
    dst: int
    kind: str          # FLOW / ANTI / OUTPUT
    carried: bool      # loop-carried vs loop-independent

    def __repr__(self) -> str:
        arrow = "~>" if self.carried else "->"
        return f"{self.src}{arrow}{self.dst}:{self.kind}"


class DDG:
    """A loop-level data dependence graph."""

    def __init__(self):
        self.sites: Set[int] = set()
        self.edges: Set[Dep] = set()
        self.upward_exposed: Set[int] = set()
        self.downward_exposed: Set[int] = set()
        #: dynamic access count per site (weights for Figure 8)
        self.dyn_counts: Dict[int, int] = {}
        #: whether each site was observed storing / loading
        self.store_sites: Set[int] = set()
        self.load_sites: Set[int] = set()

    # -- construction -------------------------------------------------------
    def add_site(self, site: int, is_store: bool, count: int = 1) -> None:
        self.sites.add(site)
        self.dyn_counts[site] = self.dyn_counts.get(site, 0) + count
        (self.store_sites if is_store else self.load_sites).add(site)

    def add_edge(self, src: int, dst: int, kind: str, carried: bool) -> None:
        self.edges.add(Dep(src, dst, kind, carried))

    def merge(self, other: "DDG") -> None:
        """Union another execution's graph into this one (candidate
        loops nested inside outer loops profile once per execution)."""
        self.sites |= other.sites
        self.edges |= other.edges
        self.upward_exposed |= other.upward_exposed
        self.downward_exposed |= other.downward_exposed
        self.store_sites |= other.store_sites
        self.load_sites |= other.load_sites
        for site, count in other.dyn_counts.items():
            self.dyn_counts[site] = self.dyn_counts.get(site, 0) + count

    # -- queries ---------------------------------------------------------------
    def edges_of(self, site: int) -> List[Dep]:
        return [e for e in self.edges if e.src == site or e.dst == site]

    def carried_edges(self, kind: Optional[str] = None) -> Iterable[Dep]:
        for e in self.edges:
            if e.carried and (kind is None or e.kind == kind):
                yield e

    def independent_edges(self, kind: Optional[str] = None) -> Iterable[Dep]:
        for e in self.edges:
            if not e.carried and (kind is None or e.kind == kind):
                yield e

    def sites_with_carried_dep(self, kinds: FrozenSet[str] = frozenset(
            (FLOW, ANTI, OUTPUT))) -> Set[int]:
        out: Set[int] = set()
        for e in self.edges:
            if e.carried and e.kind in kinds:
                out.add(e.src)
                out.add(e.dst)
        return out

    def total_dynamic_accesses(self) -> int:
        return sum(self.dyn_counts.values())

    def __repr__(self) -> str:
        return (
            f"<DDG {len(self.sites)} sites, {len(self.edges)} edges, "
            f"{len(self.upward_exposed)} up-exposed, "
            f"{len(self.downward_exposed)} down-exposed>"
        )
