"""Thread-private access classification (paper Definition 5).

Given a loop's DDG and its access-class partition, an access class is
**thread-private** iff:

1. no member is an upwards-exposed load or downwards-exposed store;
2. no member is involved in any loop-carried flow dependence;
3. at least one member is involved in a loop-carried anti- or output
   dependence.

Condition 3 is what separates "needs privatization" from "already
independent": accesses with no carried dependences at all parallelize
as-is and expanding their storage would only waste memory.  Non-private
accesses are *shared* and keep targeting copy 0.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set

from .access_classes import AccessClasses, build_access_classes
from .ddg import DDG, FLOW


class ClassInfo(NamedTuple):
    """Classification of one access class."""

    representative: int
    members: frozenset
    private: bool
    #: why the class is not private (empty when private)
    blockers: tuple
    #: proven commutative reduction (§3.2 extension): the class keeps
    #: its Definition-5 blockers but its copies merge at loop exit
    commutative: bool = False


class PrivatizationResult:
    """Site-level view of Definition 5 over a whole loop."""

    def __init__(self, ddg: DDG, classes: AccessClasses):
        self.ddg = ddg
        self.classes = classes
        self.class_infos: List[ClassInfo] = []
        self.private_sites: Set[int] = set()
        self.shared_sites: Set[int] = set()
        #: sites whose class was upgraded to the commutative class
        #: (subset of ``private_sites``: they get expanded copies, but
        #: their copies must be *merged*, not discarded — and a chunk
        #: replay is never idempotent for them)
        self.commutative_sites: Set[int] = set()
        #: accumulator decl nid -> ReductionInfo
        #: (:mod:`repro.analysis.commutative` fills this on upgrade)
        self.reductions: Dict[int, object] = {}

    def is_private(self, site: int) -> bool:
        return site in self.private_sites

    def private_classes(self) -> List[ClassInfo]:
        return [c for c in self.class_infos if c.private]

    def commutative_classes(self) -> List[ClassInfo]:
        return [c for c in self.class_infos if c.commutative]

    def __repr__(self) -> str:
        return (
            f"<Privatization {len(self.private_sites)} private / "
            f"{len(self.shared_sites)} shared sites in "
            f"{len(self.class_infos)} classes>"
        )


def classify(ddg: DDG, classes: AccessClasses = None) -> PrivatizationResult:
    """Apply Definition 5 to every access class of the loop."""
    if classes is None:
        classes = build_access_classes(ddg)
    result = PrivatizationResult(ddg, classes)

    carried_flow: Set[int] = set()
    carried_anti_output: Set[int] = set()
    for edge in ddg.edges:
        if not edge.carried:
            continue
        bucket = carried_flow if edge.kind == FLOW else carried_anti_output
        bucket.add(edge.src)
        bucket.add(edge.dst)

    for members in classes.classes():
        blockers: List[str] = []
        exposed = members & (ddg.upward_exposed | ddg.downward_exposed)
        if exposed:
            up = members & ddg.upward_exposed
            down = members & ddg.downward_exposed
            if up:
                blockers.append(f"upwards-exposed load at {sorted(up)}")
            if down:
                blockers.append(f"downwards-exposed store at {sorted(down)}")
        flow_hit = members & carried_flow
        if flow_hit:
            blockers.append(
                f"loop-carried flow dependence at {sorted(flow_hit)}"
            )
        if not (members & carried_anti_output):
            blockers.append("no loop-carried anti/output dependence")
        private = not blockers
        info = ClassInfo(
            representative=min(members),
            members=frozenset(members),
            private=private,
            blockers=tuple(blockers),
        )
        result.class_infos.append(info)
        (result.private_sites if private else result.shared_sites).update(members)
    return result
