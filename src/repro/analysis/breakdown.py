"""Dynamic memory-access breakdown (paper Figure 8).

Partitions the candidate loop's *dynamic* accesses (weighted by
observed execution counts) into the paper's three bars:

* ``free`` — accesses involved in no loop-carried dependence at all;
* ``expandable`` — thread-private accesses per Definition 5 (the ones
  data structure expansion rescues);
* ``carried`` — everything else: accesses stuck in loop-carried
  dependences that privatization cannot remove.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from .ddg import DDG
from .privatization import PrivatizationResult


class Breakdown(NamedTuple):
    free: int
    expandable: int
    carried: int

    @property
    def total(self) -> int:
        return self.free + self.expandable + self.carried

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1
        return {
            "free": self.free / total,
            "expandable": self.expandable / total,
            "carried": self.carried / total,
        }

    def __repr__(self) -> str:
        f = self.fractions()
        return (
            f"<Breakdown free={f['free']:.1%} "
            f"expandable={f['expandable']:.1%} carried={f['carried']:.1%}>"
        )


def compute_breakdown(ddg: DDG, priv: PrivatizationResult) -> Breakdown:
    """Classify each site, weight by its dynamic count, and sum."""
    carried_sites = ddg.sites_with_carried_dep()
    free = expandable = carried = 0
    for site, count in ddg.dyn_counts.items():
        if site in priv.private_sites:
            expandable += count
        elif site not in carried_sites:
            free += count
        else:
            carried += count
    return Breakdown(free, expandable, carried)
