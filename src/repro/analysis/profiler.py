"""Dynamic loop-level data dependence profiling.

The paper obtained its dependence graphs by off-line data dependence
profiling (their refs [38, 39]) followed by manual verification.  This
module does the same against the MiniC machine: it runs the program
once sequentially, drives the candidate loop iteration-by-iteration
through a loop controller, and observes every memory access at *byte*
granularity.  Byte granularity matters because benchmarks recast
buffers between element sizes (256.bzip2's ``zptr``), where word-level
tracking would miss partial overlaps.

Outputs per candidate loop:

* the :class:`~repro.analysis.ddg.DDG` with flow/anti/output edges
  split into loop-carried vs loop-independent (Definition 1),
  upwards-exposed loads and downwards-exposed stores (Definitions 2-3);
* per-site dynamic access counts (the weights behind Figure 8);
* the set of *objects* (allocation sites) each access site touched —
  dynamic alias ground truth used to validate the static points-to
  analysis and by the runtime-privatization baseline.

Loop-control variable accesses (the ``i`` of a canonical ``for``) are
exempted: the parallel scheduler rebinds the induction variable per
chunk, exactly as OpenMP-style codegen privatizes control variables, so
their carried dependences are not real obstacles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.sema import SemaResult
from ..interp.machine import (
    BreakSignal, ContinueSignal, Machine, resolve_engine,
)
from .ddg import ANTI, DDG, FLOW, OUTPUT

#: an object key: (segment-kind, allocation-site tag)
ObjectKey = Tuple[str, int]


class LoopProfile:
    """Everything the profiler learned about one candidate loop."""

    def __init__(self, loop: ast.LoopStmt):
        self.loop = loop
        self.ddg = DDG()
        self.iterations = 0
        self.executions = 0
        #: site -> set of objects it touched
        self.site_objects: Dict[int, Set[ObjectKey]] = {}
        #: object -> human label (for reports)
        self.object_labels: Dict[ObjectKey, str] = {}
        #: object -> original (unexpanded) byte size observed
        self.object_sizes: Dict[ObjectKey, int] = {}
        #: cycles spent inside the loop vs the whole program
        self.loop_cycles = 0.0
        self.total_cycles = 0.0
        #: per top-level-statement cycles, for DOACROSS sync planning
        self.stmt_cycles: Dict[int, float] = {}

    @property
    def loop_time_fraction(self) -> float:
        """Fraction of program cycles spent in the candidate loop
        (Table 4's %Time column)."""
        if self.total_cycles == 0:
            return 0.0
        return self.loop_cycles / self.total_cycles

    def __repr__(self) -> str:
        return (
            f"<LoopProfile iters={self.iterations} {self.ddg!r} "
            f"%time={100 * self.loop_time_fraction:.1f}>"
        )


class _ProfileObserver:
    """Byte-granular dependence tracker.

    Maintains, per byte address: the last in-loop writer ``(site,
    iteration)`` and the readers since that write ``site -> (first_iter,
    last_iter)``.  Dependence edges come from the classic last-writer
    construction, which realizes Definition 1 including its covered-
    write refinement of loop-carried flow dependences.
    """

    def __init__(self, machine: Machine, profile: LoopProfile):
        self.machine = machine
        self.profile = profile
        self.in_loop = False
        self.iteration = 0
        self.exempt: Set[int] = set()
        # in-loop state (reset per loop execution)
        self.last_write: Dict[int, Tuple[int, int]] = {}
        self.readers: Dict[int, Dict[int, List[int]]] = {}
        # post-loop exposure state (survives across executions)
        self.pending_down: Dict[int, int] = {}  # byte -> last in-loop store site

    # -- execution boundaries ---------------------------------------------
    def begin_execution(self) -> None:
        self.in_loop = True
        self.last_write.clear()
        self.readers.clear()

    def end_execution(self, last_store_site: Optional[Dict[int, int]] = None):
        # archive this execution's final writers for downward-exposure
        for byte, (site, _iter) in self.last_write.items():
            self.pending_down[byte] = site
        self.in_loop = False

    def begin_iteration(self, k: int) -> None:
        self.iteration = k

    # -- the hook -------------------------------------------------------------
    def on_access(self, site: int, addr: int, size: int, is_store: bool):
        if not self.in_loop:
            self._post_access(addr, size, is_store)
            return
        ddg = self.profile.ddg
        cur = self.iteration
        record = self.machine.memory.find(addr)
        if record is not None:
            key: ObjectKey = (record.kind, record.tag)
            self.profile.site_objects.setdefault(site, set()).add(key)
            if key not in self.profile.object_labels:
                self.profile.object_labels[key] = record.label
                self.profile.object_sizes[key] = record.size
        exempt = self.exempt
        if is_store:
            ddg.add_site(site, True)
            add_edge = ddg.add_edge
            last_write = self.last_write
            readers = self.readers
            for byte in range(addr, addr + size):
                if byte in exempt:
                    continue
                prev = last_write.get(byte)
                if prev is not None:
                    add_edge(prev[0], site, OUTPUT, prev[1] != cur)
                reads = readers.get(byte)
                if reads:
                    for rsite, (first, last) in reads.items():
                        if first < cur:
                            add_edge(rsite, site, ANTI, True)
                        if last == cur:
                            add_edge(rsite, site, ANTI, False)
                    readers[byte] = {}
                last_write[byte] = (site, cur)
                # a write inside the loop also kills pending downward
                # exposure from earlier executions
                if byte in self.pending_down:
                    del self.pending_down[byte]
        else:
            ddg.add_site(site, False)
            add_edge = ddg.add_edge
            last_write = self.last_write
            readers = self.readers
            exposed = False
            for byte in range(addr, addr + size):
                if byte in exempt:
                    continue
                prev = last_write.get(byte)
                if prev is None:
                    exposed = True
                else:
                    add_edge(prev[0], site, FLOW, prev[1] != cur)
                entry = readers.setdefault(byte, {})
                span = entry.get(site)
                if span is None:
                    entry[site] = [cur, cur]
                else:
                    span[1] = cur
                # reading a value stored by a previous execution of the
                # loop marks that store downwards-exposed (Definition 3)
                down_site = self.pending_down.get(byte)
                if down_site is not None and prev is None:
                    self.profile.ddg.downward_exposed.add(down_site)
            if exposed:
                ddg.upward_exposed.add(site)

    def _post_access(self, addr: int, size: int, is_store: bool) -> None:
        pending = self.pending_down
        if not pending:
            return
        for byte in range(addr, addr + size):
            if is_store:
                pending.pop(byte, None)
            else:
                site = pending.get(byte)
                if site is not None:
                    self.profile.ddg.downward_exposed.add(site)


def find_control_decl(loop: ast.LoopStmt) -> Optional[ast.VarDecl]:
    """The induction variable of a canonical ``for`` loop, if any."""
    if not isinstance(loop, ast.For) or loop.step is None:
        return None
    step = loop.step
    target: Optional[ast.Expr] = None
    if isinstance(step, ast.Unary) and step.op in ("++", "--", "p++", "p--"):
        target = step.operand
    elif isinstance(step, ast.Assign):
        target = step.target
    if isinstance(target, ast.Ident) and isinstance(target.decl, ast.VarDecl):
        return target.decl
    return None


class _ProfileController:
    """Drives the candidate loop's iterations, bracketing each with
    iteration markers and attributing cycles to the loop."""

    def __init__(self, observer: _ProfileObserver, profile: LoopProfile):
        self.observer = observer
        self.profile = profile

    def __call__(self, machine: Machine, loop: ast.LoopStmt) -> None:
        profile = self.profile
        observer = self.observer
        profile.executions += 1
        start_cycles = machine.cost.cycles

        control = find_control_decl(loop)
        if isinstance(loop, ast.For) and loop.init is not None:
            machine.exec_stmt(loop.init)
        if control is not None:
            addr = machine.var_addr(control)
            observer.exempt = set(range(addr, addr + control.ctype.size))
        observer.begin_execution()
        k = profile.iterations
        try:
            if isinstance(loop, ast.DoWhile):
                while True:
                    observer.begin_iteration(k)
                    k += 1
                    self._run_body(machine, loop.body)
                    if not machine.eval(loop.cond):
                        break
            else:
                cond = loop.cond
                body = loop.body
                step = loop.step if isinstance(loop, ast.For) else None
                while True:
                    if cond is not None and not machine.eval(cond):
                        break
                    observer.begin_iteration(k)
                    k += 1
                    self._run_body(machine, body)
                    if step is not None:
                        machine.eval(step)
        except BreakSignal:
            pass
        finally:
            profile.iterations = k
            observer.end_execution()
            observer.exempt = set()
            profile.loop_cycles += machine.cost.cycles - start_cycles

    def _run_body(self, machine: Machine, body: ast.Stmt) -> None:
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        profile = self.profile
        try:
            for stmt in stmts:
                before = machine.cost.cycles
                machine.exec_stmt(stmt)
                profile.stmt_cycles[stmt.nid] = profile.stmt_cycles.get(
                    stmt.nid, 0.0
                ) + machine.cost.cycles - before
        except ContinueSignal:
            pass


def profile_loop(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
    entry: str = "main",
    engine: Optional[str] = None,
) -> LoopProfile:
    """Run the program once and profile dependences of ``loop``.

    The given ``program`` must be the analyzed AST containing ``loop``.
    Returns a :class:`LoopProfile`; the program's observable behaviour
    (output) is unaffected by profiling.

    ``engine`` picks the interpreter tier; the bare bytecode variant is
    promoted to instrumented (the profiler is an observer).
    """
    eng = resolve_engine(engine)
    if eng == "bytecode-bare":
        eng = "bytecode"
    machine = Machine(program, sema, engine=eng)
    profile = LoopProfile(loop)
    observer = _ProfileObserver(machine, profile)
    controller = _ProfileController(observer, profile)
    machine.observers.append(observer)
    machine.loop_controllers[loop.nid] = controller
    machine.run(entry)
    profile.total_cycles = machine.cost.cycles
    if profile.executions == 0:
        raise RuntimeError(
            "candidate loop never executed; check the loop label/selection"
        )
    return profile
