"""Access classes (paper Definition 4).

A loop-independent dependence between two memory accesses is treated as
an equivalence relation; its transitive closure partitions all accesses
of a loop into *access classes*.  Privatization then decides per class,
never per access — this is how the paper avoids the semantic violation
of privatizing only one side of a same-iteration dependence (the
``*p``/``a[i]`` example in §3.2).

Implementation: union-find over site ids, unioning the endpoints of
every loop-independent edge.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ddg import DDG


class UnionFind:
    """Classic disjoint-set with path compression and union by size."""

    def __init__(self):
        self.parent: Dict[int, int] = {}
        self.size: Dict[int, int] = {}

    def add(self, x: int) -> None:
        if x not in self.parent:
            self.parent[x] = x
            self.size[x] = 1

    def find(self, x: int) -> int:
        self.add(x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def groups(self) -> Dict[int, Set[int]]:
        out: Dict[int, Set[int]] = {}
        for x in self.parent:
            out.setdefault(self.find(x), set()).add(x)
        return out


class AccessClasses:
    """The partition of a loop's accesses into equivalence classes."""

    def __init__(self, ddg: DDG):
        self.ddg = ddg
        self._uf = UnionFind()
        for site in ddg.sites:
            self._uf.add(site)
        for edge in ddg.independent_edges():
            self._uf.union(edge.src, edge.dst)

    def class_of(self, site: int) -> int:
        """Canonical representative of ``site``'s access class."""
        return self._uf.find(site)

    def members(self, site: int) -> Set[int]:
        root = self.class_of(site)
        return self._uf.groups()[root]

    def classes(self) -> List[Set[int]]:
        return list(self._uf.groups().values())

    def __len__(self) -> int:
        return len(self._uf.groups())


def build_access_classes(ddg: DDG) -> AccessClasses:
    """Partition the DDG's sites per Definition 4."""
    return AccessClasses(ddg)
