"""Flow-insensitive, field-insensitive Andersen-style points-to analysis.

The expansion pipeline uses this in two places the paper calls out:

* **expansion-set selection** (§3.4): "we perform alias analysis in the
  compiler to find out whether a data structure gets referenced by
  private memory accesses ... If not, the data structure will not be
  expanded";
* **selective promotion** (§3.4): "if the object that a pointer points
  to is not involved in privatization, we do not promote the pointer at
  all".

Abstraction:

* an **object** is an allocation site: ``("var", decl_nid)`` for every
  declared variable, ``("heap", call_nid)`` per malloc/calloc/realloc
  call, ``("str", nid)`` per string literal, ``("ret", fn_name)`` as the
  return-value slot of each function;
* every object has one **content variable** holding what pointers
  stored anywhere inside it may point to (field-insensitive within an
  object, but objects from different sites stay separate — which is the
  granularity expansion decisions need, since expansion is per site);
* inclusion constraints are solved with a standard worklist.

The dynamic profiler provides per-site object ground truth, so the test
suite can check this analysis is a sound over-approximation on every
benchmark kernel.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.ctypes import ArrayType, CType, StructType
from ..frontend.sema import SemaResult

#: object / constraint-variable handles
Obj = Tuple[str, object]
Handle = Tuple[str, object]

_ALLOC_FNS = ("malloc", "calloc", "realloc")


def _contains_pointer(ctype: CType, seen=None) -> bool:
    """Does a value of this type (transitively) contain pointers?"""
    if ctype.is_pointer:
        return True
    if isinstance(ctype, ArrayType):
        return _contains_pointer(ctype.elem, seen)
    if isinstance(ctype, StructType):
        seen = seen or set()
        if ctype.name in seen:
            return False
        seen.add(ctype.name)
        return any(_contains_pointer(f.type, seen) for f in ctype.fields)
    return False


class PointsToResult:
    """Solved points-to sets plus the queries the pipeline needs."""

    def __init__(self):
        #: content-variable handle -> set of objects
        self.pts: Dict[Handle, Set[Obj]] = {}
        #: object -> static types it was observed allocated/declared as
        self.object_types: Dict[Obj, Set[CType]] = {}
        #: object -> human label
        self.object_labels: Dict[Obj, str] = {}
        #: per access-expression nid: objects the access may touch
        self.access_objects: Dict[int, Set[Obj]] = {}

    def pts_of(self, handle: Handle) -> Set[Obj]:
        return self.pts.get(handle, set())

    def objects_of_access(self, nid: int) -> Set[Obj]:
        return self.access_objects.get(nid, set())

    def pointer_vars_to(self, objs: Set[Obj],
                        decls: Iterable[ast.VarDecl]) -> Set[ast.VarDecl]:
        """Declared variables whose stored pointers may reach ``objs``."""
        out: Set[ast.VarDecl] = set()
        for decl in decls:
            if not _contains_pointer(decl.ctype):
                continue
            if self.pts_of(("obj", ("var", decl.nid))) & objs:
                out.add(decl)
        return out

    def struct_types_to(self, objs: Set[Obj]) -> Set[str]:
        """Struct type names whose instances' pointer fields may reach
        ``objs`` (field promotion is decided per struct type)."""
        out: Set[str] = set()
        for obj, types in self.object_types.items():
            if not self.pts_of(("obj", obj)) & objs:
                continue
            for ctype in types:
                base = ctype
                while isinstance(base, ArrayType):
                    base = base.elem
                if isinstance(base, StructType) and _contains_pointer(base):
                    out.add(base.name)
        return out


class _Solver:
    """Inclusion-constraint worklist solver."""

    def __init__(self):
        self.pts: Dict[Handle, Set[Obj]] = {}
        self.copy_edges: Dict[Handle, Set[Handle]] = {}   # src -> dsts
        self.load_cons: Dict[Handle, Set[Handle]] = {}    # ptr -> dsts
        self.store_cons: Dict[Handle, Set[Handle]] = {}   # ptr -> srcs
        self._work: List[Handle] = []

    def _pts(self, h: Handle) -> Set[Obj]:
        return self.pts.setdefault(h, set())

    def add_base(self, dst: Handle, obj: Obj) -> None:
        if obj not in self._pts(dst):
            self.pts[dst].add(obj)
            self._work.append(dst)

    def add_copy(self, dst: Handle, src: Handle) -> None:
        if dst == src:
            return
        dsts = self.copy_edges.setdefault(src, set())
        if dst not in dsts:
            dsts.add(dst)
            if self._pts(src):
                self._work.append(src)

    def add_load(self, dst: Handle, ptr: Handle) -> None:
        dsts = self.load_cons.setdefault(ptr, set())
        if dst not in dsts:
            dsts.add(dst)
            if self._pts(ptr):
                self._work.append(ptr)

    def add_store(self, ptr: Handle, src: Handle) -> None:
        srcs = self.store_cons.setdefault(ptr, set())
        if src not in srcs:
            srcs.add(src)
            if self._pts(ptr):
                self._work.append(ptr)

    def solve(self) -> None:
        while self._work:
            h = self._work.pop()
            pts_h = self._pts(h)
            # resolve load/store constraints through h's points-to set
            for dst in self.load_cons.get(h, ()):
                for obj in list(pts_h):
                    self.add_copy(dst, ("obj", obj))
            for src in self.store_cons.get(h, ()):
                for obj in list(pts_h):
                    self.add_copy(("obj", obj), src)
            # propagate along copy edges
            for dst in self.copy_edges.get(h, ()):
                pts_dst = self._pts(dst)
                new = pts_h - pts_dst
                if new:
                    pts_dst |= new
                    self._work.append(dst)


class _ConstraintGen:
    def __init__(self, program: ast.Program, sema: SemaResult):
        self.program = program
        self.sema = sema
        self.solver = _Solver()
        self.result = PointsToResult()
        self._tmp_count = 0

    # -- helpers -----------------------------------------------------------
    def _fresh(self) -> Handle:
        self._tmp_count += 1
        return ("tmp", self._tmp_count)

    def _note_object(self, obj: Obj, ctype: Optional[CType], label: str):
        if ctype is not None:
            self.result.object_types.setdefault(obj, set()).add(ctype)
        self.result.object_labels.setdefault(obj, label)

    def _var_obj(self, decl: ast.VarDecl) -> Obj:
        obj: Obj = ("var", decl.nid)
        self._note_object(obj, decl.ctype, decl.name)
        return obj

    # -- entry ------------------------------------------------------------
    def run(self) -> PointsToResult:
        for fn in self.program.functions():
            self._walk_stmt(fn.body, fn)
        for decl in self.sema.globals:
            if decl.init is not None:
                self._bind_init(decl, decl.init)
        self.solver.solve()
        self.result.pts = self.solver.pts
        self._collect_access_objects()
        return self.result

    def _bind_init(self, decl: ast.VarDecl, init) -> None:
        if isinstance(init, list):
            for item in init:
                self._bind_init(decl, item)
            return
        # always walk the initializer: calls inside it generate
        # argument-to-parameter constraints even when the declared
        # variable itself holds no pointers
        handle = self._rv(init)
        if _contains_pointer(decl.ctype):
            self.solver.add_copy(("obj", self._var_obj(decl)), handle)

    # -- statements ----------------------------------------------------------
    def _walk_stmt(self, stmt: ast.Stmt, fn: ast.FunctionDef) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._walk_stmt(s, fn)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._var_obj(decl)
                if decl.init is not None:
                    self._bind_init(decl, decl.init)
        elif isinstance(stmt, ast.ExprStmt):
            self._walk_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._walk_expr(stmt.cond)
            self._walk_stmt(stmt.then, fn)
            if stmt.els is not None:
                self._walk_stmt(stmt.els, fn)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._walk_expr(stmt.cond)
            self._walk_stmt(stmt.body, fn)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._walk_stmt(stmt.init, fn)
            if stmt.cond is not None:
                self._walk_expr(stmt.cond)
            if stmt.step is not None:
                self._walk_expr(stmt.step)
            self._walk_stmt(stmt.body, fn)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                handle = self._walk_expr(stmt.expr)
                if handle is not None:
                    ret_obj: Obj = ("ret", fn.name)
                    self._note_object(ret_obj, fn.ret_type, f"{fn.name}()")
                    self.solver.add_copy(("obj", ret_obj), handle)
        # Break/Continue: nothing

    # -- expressions -----------------------------------------------------------
    def _walk_expr(self, expr: ast.Expr) -> Optional[Handle]:
        """Generate constraints for ``expr``; returns its rvalue handle
        when the expression may produce pointers, else None."""
        return self._rv(expr)

    def _lv(self, expr: ast.Expr):
        """Resolve an lvalue: ('objs', [Obj...]) for statically known
        locations, ('ptr', handle) when the location is *(handle)."""
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, ast.VarDecl):
                return ("objs", [self._var_obj(expr.decl)])
            return ("objs", [])
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return ("ptr", self._rv(expr.operand))
        if isinstance(expr, ast.Index):
            base_t = expr.base.ctype
            if base_t is not None and base_t.is_array:
                self._rv(expr.index)
                return self._lv(expr.base)
            self._rv(expr.index)
            return ("ptr", self._rv(expr.base))
        if isinstance(expr, ast.Member):
            if expr.arrow:
                return ("ptr", self._rv(expr.base))
            return self._lv(expr.base)
        if isinstance(expr, ast.Cast):
            return self._lv(expr.expr)
        if isinstance(expr, ast.Comma):
            self._rv(expr.left)
            return self._lv(expr.right)
        return ("objs", [])

    def _lv_objects_handle(self, lv) -> Handle:
        """A handle whose pts() is the content of the lvalue's objects."""
        kind, payload = lv
        if kind == "objs":
            if len(payload) == 1:
                return ("obj", payload[0])
            tmp = self._fresh()
            for obj in payload:
                self.solver.add_copy(tmp, ("obj", obj))
            return tmp
        tmp = self._fresh()
        self.solver.add_load(tmp, payload)
        return tmp

    def _assign_into(self, lv, src: Handle) -> None:
        kind, payload = lv
        if kind == "objs":
            for obj in payload:
                self.solver.add_copy(("obj", obj), src)
        else:
            self.solver.add_store(payload, src)

    def _rv(self, expr: ast.Expr) -> Handle:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.SizeofType)):
            return self._fresh()
        if isinstance(expr, ast.SizeofExpr):
            self._rv(expr.expr)
            return self._fresh()
        if isinstance(expr, ast.StrLit):
            obj: Obj = ("str", expr.nid)
            self._note_object(obj, expr.ctype, "strlit")
            tmp = self._fresh()
            self.solver.add_base(tmp, obj)
            return tmp
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, ast.VarDecl):
                if expr.decl.ctype.is_array:
                    tmp = self._fresh()
                    self.solver.add_base(tmp, self._var_obj(expr.decl))
                    return tmp
                return ("obj", self._var_obj(expr.decl))
            return self._fresh()
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                lv = self._lv(expr.operand)
                kind, payload = lv
                if kind == "objs":
                    tmp = self._fresh()
                    for obj in payload:
                        self.solver.add_base(tmp, obj)
                    return tmp
                return payload  # &*p, &p[i], &p->f alias p's targets
            if expr.op == "*":
                return self._lv_objects_handle(("ptr", self._rv(expr.operand)))
            if expr.op in ("++", "--", "p++", "p--"):
                return self._rv(expr.operand)
            self._rv(expr.operand)
            return self._fresh()
        if isinstance(expr, ast.Binary):
            lh = self._rv(expr.left)
            rh = self._rv(expr.right)
            lt = expr.left.ctype.decay() if expr.left.ctype else None
            rt = expr.right.ctype.decay() if expr.right.ctype else None
            if expr.op in ("+", "-"):
                if lt is not None and lt.is_pointer:
                    return lh
                if rt is not None and rt.is_pointer:
                    return rh
            return self._fresh()
        if isinstance(expr, ast.Assign):
            lv = self._lv(expr.target)
            src = self._rv(expr.value)
            target_t = expr.target.ctype
            if target_t is not None and _contains_pointer(target_t):
                self._assign_into(lv, src)
            elif isinstance(target_t, StructType) and _contains_pointer(target_t):
                self._assign_into(lv, src)
            return src
        if isinstance(expr, ast.Cond):
            self._rv(expr.cond)
            th = self._rv(expr.then)
            eh = self._rv(expr.els)
            tmp = self._fresh()
            self.solver.add_copy(tmp, th)
            self.solver.add_copy(tmp, eh)
            return tmp
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._lv_objects_handle(self._lv(expr))
        if isinstance(expr, ast.Cast):
            inner = self._rv(expr.expr)
            return inner
        if isinstance(expr, ast.Comma):
            self._rv(expr.left)
            return self._rv(expr.right)
        return self._fresh()  # pragma: no cover

    def _call(self, expr: ast.Call) -> Handle:
        name = expr.callee_name
        arg_handles = [self._rv(a) for a in expr.args]
        if name in _ALLOC_FNS and name not in self.sema.functions:
            obj: Obj = ("heap", expr.nid)
            self._note_object(obj, None, f"{name}@L{expr.loc[0]}:{expr.loc[1]}")
            tmp = self._fresh()
            self.solver.add_base(tmp, obj)
            if name == "realloc" and arg_handles:
                self.solver.add_copy(tmp, arg_handles[0])
                # contents survive the copy
                self.solver.add_load(("obj", obj), arg_handles[0])
            return tmp
        if name == "memcpy" or name == "memmove":
            # pointer contents may be copied between objects
            if len(arg_handles) >= 2:
                tmp = self._fresh()
                self.solver.add_load(tmp, arg_handles[1])
                self.solver.add_store(arg_handles[0], tmp)
            return arg_handles[0] if arg_handles else self._fresh()
        fn = self.sema.functions.get(name) if name else None
        if fn is not None:
            for param, handle in zip(fn.params, arg_handles):
                if _contains_pointer(param.ctype):
                    self.solver.add_copy(("obj", self._var_obj(param)), handle)
            if _contains_pointer(fn.ret_type):
                ret_obj: Obj = ("ret", fn.name)
                self._note_object(ret_obj, fn.ret_type, f"{fn.name}()")
                return ("obj", ret_obj)
        return self._fresh()

    # -- post-solve: per-access object sets ----------------------------------
    def _collect_access_objects(self) -> None:
        """For every load/store expression in the program, the objects
        it may touch (used for expansion-set selection)."""
        for fn in self.program.functions():
            for node in fn.body.walk():
                objs = self._access_objs(node)
                if objs is not None:
                    self.result.access_objects[node.nid] = objs

    def _access_objs(self, node: ast.Node) -> Optional[Set[Obj]]:
        if isinstance(node, ast.Ident) and isinstance(node.decl, ast.VarDecl):
            return {("var", node.decl.nid)}
        if isinstance(node, ast.Unary) and node.op == "*":
            return set(self._resolve_ptr(node.operand))
        if isinstance(node, ast.Index):
            base_t = node.base.ctype
            if base_t is not None and base_t.is_array:
                return self._access_objs(node.base)
            return set(self._resolve_ptr(node.base))
        if isinstance(node, ast.Member):
            if node.arrow:
                return set(self._resolve_ptr(node.base))
            return self._access_objs(node.base)
        if isinstance(node, ast.Assign):
            return self._access_objs(node.target)
        if isinstance(node, ast.Call):
            name = node.callee_name
            if name in ("memset", "memcpy", "memmove", "strlen") and node.args:
                out: Set[Obj] = set()
                for arg in node.args:
                    at = arg.ctype.decay() if arg.ctype else None
                    if at is not None and at.is_pointer:
                        out |= set(self._resolve_ptr(arg))
                return out
        return None

    def _resolve_ptr(self, expr: ast.Expr) -> Set[Obj]:
        """Objects a pointer-valued expression may point to (post-solve)."""
        if isinstance(expr, ast.Cast):
            return self._resolve_ptr(expr.expr)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            lt = expr.left.ctype.decay() if expr.left.ctype else None
            if lt is not None and lt.is_pointer:
                return self._resolve_ptr(expr.left)
            return self._resolve_ptr(expr.right)
        if isinstance(expr, ast.Ident) and isinstance(expr.decl, ast.VarDecl):
            if expr.decl.ctype.is_array:
                return {("var", expr.decl.nid)}
            return set(self.solver.pts.get(("obj", ("var", expr.decl.nid)), ()))
        if isinstance(expr, ast.Unary) and expr.op == "&":
            lv_objs = self._access_objs(expr.operand)
            return lv_objs if lv_objs is not None else set()
        if isinstance(expr, (ast.Member, ast.Index, ast.Unary)):
            # loads of pointers from memory: union content of base objects
            base_objs = self._access_objs(expr)
            out: Set[Obj] = set()
            if base_objs:
                for obj in base_objs:
                    out |= self.solver.pts.get(("obj", obj), set())
            return out
        if isinstance(expr, ast.Call):
            name = expr.callee_name
            if name in _ALLOC_FNS:
                return {("heap", expr.nid)}
            fn = self.sema.functions.get(name) if name else None
            if fn is not None:
                return set(self.solver.pts.get(("obj", ("ret", fn.name)), ()))
            return set()
        if isinstance(expr, ast.Cond):
            return self._resolve_ptr(expr.then) | self._resolve_ptr(expr.els)
        if isinstance(expr, ast.Comma):
            return self._resolve_ptr(expr.right)
        if isinstance(expr, ast.Assign):
            return self._resolve_ptr(expr.value)
        return set()


def analyze_pointsto(program: ast.Program, sema: SemaResult) -> PointsToResult:
    """Build and solve points-to constraints for a whole program."""
    return _ConstraintGen(program, sema).run()
