"""Dependence-graph serialization and the verification report.

The paper's workflow (Figure 7) profiles candidate loops off-line and
then has the *programmer verify* the resulting dependence graph before
the compiler trusts it.  This module supports that loop:

* :func:`ddg_to_dict` / :func:`ddg_from_dict` — lossless JSON-able
  round-trip of a :class:`~repro.analysis.ddg.DDG`;
* :func:`verification_report` — the human-facing rendering: every
  access site with its source location, touched structures, dependence
  edges, and Definition 5 verdict, so a reviewer can eyeball exactly
  what the compiler is about to privatize;
* :func:`save_profile` / :func:`load_ddg` — file-level convenience.

A loaded (possibly hand-edited) graph can be passed back into the
pipeline through the ``profiles`` parameter of ``expand_for_threads``
by wrapping it in a :class:`~repro.analysis.profiler.LoopProfile`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..frontend import ast
from .ddg import DDG, Dep
from .privatization import PrivatizationResult
from .profiler import LoopProfile


def ddg_to_dict(ddg: DDG) -> Dict[str, object]:
    return {
        "sites": sorted(ddg.sites),
        "load_sites": sorted(ddg.load_sites),
        "store_sites": sorted(ddg.store_sites),
        "upward_exposed": sorted(ddg.upward_exposed),
        "downward_exposed": sorted(ddg.downward_exposed),
        "dyn_counts": {str(k): v for k, v in sorted(ddg.dyn_counts.items())},
        "edges": [
            {"src": e.src, "dst": e.dst, "kind": e.kind,
             "carried": e.carried}
            for e in sorted(ddg.edges)
        ],
    }


def ddg_from_dict(data: Dict[str, object]) -> DDG:
    ddg = DDG()
    ddg.sites = set(data["sites"])
    ddg.load_sites = set(data["load_sites"])
    ddg.store_sites = set(data["store_sites"])
    ddg.upward_exposed = set(data["upward_exposed"])
    ddg.downward_exposed = set(data["downward_exposed"])
    ddg.dyn_counts = {int(k): v for k, v in data["dyn_counts"].items()}
    for e in data["edges"]:
        ddg.edges.add(Dep(e["src"], e["dst"], e["kind"], e["carried"]))
    return ddg


def save_profile(profile: LoopProfile, path: str) -> None:
    """Persist a loop profile's dependence graph as JSON."""
    payload = {
        "loop_label": profile.loop.label,
        "iterations": profile.iterations,
        "executions": profile.executions,
        "ddg": ddg_to_dict(profile.ddg),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def load_ddg(path: str) -> DDG:
    """Load a (possibly hand-edited) dependence graph."""
    with open(path) as fh:
        payload = json.load(fh)
    return ddg_from_dict(payload["ddg"])


def _site_index(program: ast.Program) -> Dict[int, ast.Node]:
    return {node.nid: node for node in program.walk()}


def verification_report(
    program: ast.Program,
    profile: LoopProfile,
    priv: Optional[PrivatizationResult] = None,
) -> str:
    """The programmer-verification view of a profiled graph."""
    from .access_classes import build_access_classes
    from .privatization import classify
    from ..frontend.printer import print_expr

    if priv is None:
        priv = classify(profile.ddg, build_access_classes(profile.ddg))
    index = _site_index(program)
    lines: List[str] = []
    lines.append(
        f"Dependence graph of loop {profile.loop.label!r}: "
        f"{len(profile.ddg.sites)} sites, {len(profile.ddg.edges)} edges, "
        f"{profile.iterations} iterations profiled"
    )
    lines.append("")
    for site in sorted(profile.ddg.sites):
        node = index.get(site)
        loc = f"L{node.loc[0]}" if node is not None else "?"
        try:
            text = print_expr(node) if isinstance(node, ast.Expr) else \
                type(node).__name__ if node else "?"
        except Exception:  # pragma: no cover - printing best-effort
            text = type(node).__name__
        objs = sorted(
            profile.object_labels[o]
            for o in profile.site_objects.get(site, ())
        )
        kind = "store" if site in profile.ddg.store_sites else "load"
        verdict = "PRIVATE" if site in priv.private_sites else "shared"
        flags = []
        if site in profile.ddg.upward_exposed:
            flags.append("up-exposed")
        if site in profile.ddg.downward_exposed:
            flags.append("down-exposed")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"site {site:>5} {loc:>6} {kind:<5} {verdict:<7} "
            f"{text[:46]:<46} on {objs}{flag_text}"
        )
    lines.append("")
    lines.append("edges (src -> dst):")
    for edge in sorted(profile.ddg.edges):
        mode = "carried" if edge.carried else "independent"
        lines.append(
            f"  {edge.src:>5} -> {edge.dst:>5}  {edge.kind:<6} {mode}"
        )
    return "\n".join(lines)
