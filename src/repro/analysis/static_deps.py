"""Conservative *static* loop dependence analysis.

The paper justifies its use of dependence profiling bluntly: "current
compile-time data dependence analysis algorithms are still too
conservative and they report false positives that prevent loop
parallelization" (§4.1).  This module implements such a compile-time
analysis so the claim is demonstrable inside this repository: build the
static DDG for a candidate loop, feed it to the same Definition 4/5
machinery, and watch privatization opportunities disappear under
may-alias conservatism (see ``benchmarks/test_static_vs_profiled.py``).

The analysis is deliberately representative of what a production
compiler can justify without runtime information:

* memory accesses are resolved to *object sets* via the Andersen
  points-to analysis (may-alias);
* two accesses to overlapping object sets where at least one writes
  are assumed dependent — both loop-independent **and** loop-carried
  (no dependence-distance reasoning for pointer-based structures, which
  is precisely the paper's starting point);
* the only subscript precision implemented is the classic ZIV/SIV test
  on direct array accesses ``a[c]`` / ``a[i*s + c]`` with the loop's
  own induction variable: equal-stride affine accesses with distinct
  constants are independent, and identical subscripts are
  loop-independent only.  Anything else falls back to "assume both".
* upward/downward exposure is approximated from reachability: a read
  of an object written before the loop is assumed exposed; a write to
  an object read after the loop is assumed downward-exposed.

The result type is the same :class:`~repro.analysis.ddg.DDG`, so every
downstream consumer (classes, Definition 5, breakdown) works unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.sema import SemaResult
from .ddg import ANTI, DDG, FLOW, OUTPUT
from .pointsto import Obj, PointsToResult, analyze_pointsto
from .profiler import find_control_decl


class StaticAccess:
    """One static memory access site inside the candidate loop."""

    __slots__ = ("site", "is_store", "objs", "affine")

    def __init__(self, site: int, is_store: bool, objs: Set[Obj],
                 affine: Optional[Tuple[object, int, int]]):
        self.site = site
        self.is_store = is_store
        self.objs = objs
        #: (array object, stride, offset) for a[i*stride + offset] with
        #: the candidate loop's induction variable, else None
        self.affine = affine


def _affine_subscript(expr: ast.Index, control: Optional[ast.VarDecl]):
    """Recognize ``a[c]`` and ``a[i*s + c]`` over a direct array."""
    base = expr.base
    if not (isinstance(base, ast.Ident)
            and isinstance(base.decl, ast.VarDecl)
            and base.decl.ctype.is_array):
        return None
    obj: Obj = ("var", base.decl.nid)
    idx = expr.index

    def const_of(e) -> Optional[int]:
        return e.value if isinstance(e, ast.IntLit) else None

    if isinstance(idx, ast.IntLit):
        return (obj, 0, idx.value)
    if control is None:
        return None
    if isinstance(idx, ast.Ident) and idx.decl is control:
        return (obj, 1, 0)
    if isinstance(idx, ast.Binary) and idx.op in ("+", "-"):
        left, right = idx.left, idx.right
        sign = 1 if idx.op == "+" else -1
        for a, b, flip in ((left, right, False), (right, left, True)):
            c = const_of(b)
            if c is None:
                continue
            if flip and idx.op == "-":
                continue  # c - i*s: not handled
            inner = _affine_term(a, control)
            if inner is not None:
                return (obj, inner, sign * c if not flip else c)
    stride = _affine_term(idx, control)
    if stride is not None:
        return (obj, stride, 0)
    return None


def _affine_term(expr, control) -> Optional[int]:
    """``i`` -> 1, ``i*c``/``c*i`` -> c."""
    if isinstance(expr, ast.Ident) and expr.decl is control:
        return 1
    if isinstance(expr, ast.Binary) and expr.op == "*":
        for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(a, ast.Ident) and a.decl is control and \
                    isinstance(b, ast.IntLit):
                return b.value
    return None


def _collect_accesses(
    loop: ast.LoopStmt,
    pointsto: PointsToResult,
    control: Optional[ast.VarDecl],
    called_fns: Dict[str, ast.FunctionDef],
) -> List[StaticAccess]:
    out: List[StaticAccess] = []
    seen_fns: Set[str] = set()

    def visit(root: ast.Node) -> None:
        for node in root.walk():
            if isinstance(node, ast.Assign):
                objs = pointsto.objects_of_access(node.nid)
                if objs:
                    affine = _affine_subscript(node.target, control) \
                        if isinstance(node.target, ast.Index) else None
                    out.append(StaticAccess(node.nid, True, objs, affine))
            elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"
            ):
                objs = pointsto.objects_of_access(node.operand.nid)
                if objs:
                    out.append(StaticAccess(node.nid, True, objs, None))
            elif isinstance(node, (ast.Index, ast.Member)) or (
                isinstance(node, ast.Unary) and node.op == "*"
            ):
                if _is_load_position(node):
                    objs = pointsto.objects_of_access(node.nid)
                    if objs:
                        affine = _affine_subscript(node, control) \
                            if isinstance(node, ast.Index) else None
                        out.append(
                            StaticAccess(node.nid, False, objs, affine)
                        )
            elif isinstance(node, ast.Ident) and \
                    isinstance(node.decl, ast.VarDecl) and \
                    node.decl.ctype.is_scalar and _is_load_position(node):
                out.append(StaticAccess(
                    node.nid, False, {("var", node.decl.nid)}, None
                ))
            elif isinstance(node, ast.Call) and node.callee_name:
                name = node.callee_name
                fn = called_fns.get(name)
                if fn is not None and name not in seen_fns:
                    seen_fns.add(name)
                    visit(fn.body)

    visit(loop.body)
    if isinstance(loop, (ast.While, ast.DoWhile)) and loop.cond is not None:
        visit(loop.cond)
    return out


def _is_load_position(node: ast.Node) -> bool:
    """Approximation: we cannot see parents, so treat every lvalue-form
    expression as a load too; store sites are added separately from
    Assign nodes.  Conservative (extra loads only strengthen deps)."""
    return True


def build_static_ddg(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
    pointsto: Optional[PointsToResult] = None,
) -> DDG:
    """A conservative compile-time DDG for ``loop`` (see module doc)."""
    if pointsto is None:
        pointsto = analyze_pointsto(program, sema)
    control = find_control_decl(loop)
    called = dict(sema.functions)
    accesses = _collect_accesses(loop, pointsto, control, called)

    ddg = DDG()
    control_obj = ("var", control.nid) if control is not None else None
    for acc in accesses:
        if control_obj is not None and acc.objs == {control_obj}:
            continue  # induction variable: scheduler-owned
        ddg.add_site(acc.site, acc.is_store)

    # exposure approximation: reads of objects that exist before the
    # loop (globals, heap allocated earlier, locals of enclosing fns)
    # are upward-exposed; writes to objects readable after are downward
    for acc in accesses:
        if control_obj is not None and acc.objs == {control_obj}:
            continue
        if not acc.is_store:
            ddg.upward_exposed.add(acc.site)
        else:
            ddg.downward_exposed.add(acc.site)

    for i, a in enumerate(accesses):
        if control_obj is not None and a.objs == {control_obj}:
            continue
        for b in accesses[i:]:
            if control_obj is not None and b.objs == {control_obj}:
                continue
            if not (a.is_store or b.is_store):
                continue
            if not (a.objs & b.objs):
                continue
            kinds = _dep_kinds(a, b)
            for kind, carried in kinds:
                src, dst = (a.site, b.site)
                ddg.add_edge(src, dst, kind, carried)
    return ddg


def _dep_kinds(a: StaticAccess, b: StaticAccess):
    """Which dependences to assume between two may-aliasing accesses."""
    if a.affine is not None and b.affine is not None and \
            a.affine[0] == b.affine[0]:
        obj_a, s1, c1 = a.affine
        _obj, s2, c2 = b.affine
        if s1 == s2:
            if c1 != c2:
                return []          # same stride, distinct offsets: disjoint
            carried_opts = [False]  # identical subscript: same-iter only
        else:
            carried_opts = [False, True]
    else:
        carried_opts = [False, True]  # assume everything
    kind = _kind(a.is_store, b.is_store)
    return [(kind, carried) for carried in carried_opts]


def _kind(a_store: bool, b_store: bool) -> str:
    if a_store and b_store:
        return OUTPUT
    if a_store:
        return FLOW
    return ANTI


def static_parallelizability_report(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
) -> Dict[str, object]:
    """Compare what Definition 5 finds with the static vs profiled DDG.

    Returns counts a report/bench can render: the number of
    thread-private sites under each graph, and whether the static
    graph's conservatism blocks privatization entirely (the paper's
    §4.1 claim)."""
    from .access_classes import build_access_classes
    from .privatization import classify
    from .profiler import profile_loop

    static_ddg = build_static_ddg(program, sema, loop)
    static_priv = classify(static_ddg, build_access_classes(static_ddg))

    profile = profile_loop(program, sema, loop)
    dynamic_priv = classify(
        profile.ddg, build_access_classes(profile.ddg)
    )
    return {
        "static_sites": len(static_ddg.sites),
        "static_private": len(static_priv.private_sites),
        "static_carried_edges": sum(
            1 for e in static_ddg.edges if e.carried
        ),
        "profiled_sites": len(profile.ddg.sites),
        "profiled_private": len(dynamic_priv.private_sites),
        "profiled_carried_edges": sum(
            1 for e in profile.ddg.edges if e.carried
        ),
    }
