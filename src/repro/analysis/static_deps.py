"""Conservative *static* loop dependence analysis.

The paper justifies its use of dependence profiling bluntly: "current
compile-time data dependence analysis algorithms are still too
conservative and they report false positives that prevent loop
parallelization" (§4.1).  This module implements such a compile-time
analysis so the claim is demonstrable inside this repository: build the
static DDG for a candidate loop, feed it to the same Definition 4/5
machinery, and watch privatization opportunities disappear under
may-alias conservatism (see ``benchmarks/test_static_vs_profiled.py``).

The analysis is deliberately representative of what a production
compiler can justify without runtime information:

* memory accesses are resolved to *object sets* via the Andersen
  points-to analysis (may-alias);
* two accesses to overlapping object sets where at least one writes
  are assumed dependent — both loop-independent **and** loop-carried
  (no dependence-distance reasoning for pointer-based structures, which
  is precisely the paper's starting point);
* the only subscript precision implemented is the classic ZIV/SIV test
  on direct array accesses ``a[c]`` / ``a[i*s + c]`` with the loop's
  own induction variable: equal-stride affine accesses with distinct
  constants are independent, and identical subscripts are
  loop-independent only.  Anything else falls back to "assume both".
* upward/downward exposure is approximated from reachability: a read
  of an object written before the loop is assumed exposed; a write to
  an object read after the loop is assumed downward-exposed.

The result type is the same :class:`~repro.analysis.ddg.DDG`, so every
downstream consumer (classes, Definition 5, breakdown) works unchanged.

Soundness contract (checked by ``tests/test_static_soundness.py``): the
static DDG is an *over-approximation* of anything the profiler can
observe.  Every dynamically profiled access site is a static site, and
every profiled dependence edge has a static counterpart with the same
endpoints, kind, and carried flag.  To honour the contract the collector
mirrors the interpreter's site vocabulary exactly: stores at ``Assign``
nids, ``++/--`` stores at the ``Unary`` nid, parameter-binding stores at
``param.nid``, initializer stores at ``init.nid``, builtin memory
operations (``memset``/``memcpy``/``memmove``/``strlen``/``calloc``) at
the ``Call`` nid, and loads at every non-array ``Ident``/``Index``/
``Member``/deref nid.  Loop-control accesses stay in the site set but
are exempt from edges and exposure, matching the profiler's byte-level
exemption of the induction variable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.sema import SemaResult
from .ddg import ANTI, DDG, FLOW, OUTPUT
from .pointsto import Obj, PointsToResult, analyze_pointsto
from .profiler import find_control_decl


class StaticAccess:
    """One static memory access site inside the candidate loop."""

    __slots__ = ("site", "is_store", "objs", "affine")

    def __init__(self, site: int, is_store: bool, objs: Set[Obj],
                 affine: Optional[Tuple[object, int, int]]):
        self.site = site
        self.is_store = is_store
        self.objs = objs
        #: (array object, stride, offset) for a[i*stride + offset] with
        #: the candidate loop's induction variable, else None
        self.affine = affine


def _affine_subscript(expr: ast.Index, control: Optional[ast.VarDecl]):
    """Recognize ``a[c]`` and ``a[i*s + c]`` over a direct array."""
    base = expr.base
    if not (isinstance(base, ast.Ident)
            and isinstance(base.decl, ast.VarDecl)
            and base.decl.ctype.is_array):
        return None
    obj: Obj = ("var", base.decl.nid)
    idx = expr.index

    def const_of(e) -> Optional[int]:
        return e.value if isinstance(e, ast.IntLit) else None

    if isinstance(idx, ast.IntLit):
        return (obj, 0, idx.value)
    if control is None:
        return None
    if isinstance(idx, ast.Ident) and idx.decl is control:
        return (obj, 1, 0)
    if isinstance(idx, ast.Binary) and idx.op in ("+", "-"):
        left, right = idx.left, idx.right
        sign = 1 if idx.op == "+" else -1
        for a, b, flip in ((left, right, False), (right, left, True)):
            c = const_of(b)
            if c is None:
                continue
            if flip and idx.op == "-":
                continue  # c - i*s: not handled
            inner = _affine_term(a, control)
            if inner is not None:
                return (obj, inner, sign * c if not flip else c)
    stride = _affine_term(idx, control)
    if stride is not None:
        return (obj, stride, 0)
    return None


def _affine_term(expr, control) -> Optional[int]:
    """``i`` -> 1, ``i*c``/``c*i`` -> c."""
    if isinstance(expr, ast.Ident) and expr.decl is control:
        return 1
    if isinstance(expr, ast.Binary) and expr.op == "*":
        for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(a, ast.Ident) and a.decl is control and \
                    isinstance(b, ast.IntLit):
                return b.value
    return None


#: builtins whose interpreter implementation traces accesses at the
#: ``Call`` node's nid (see ``repro.interp.builtins``)
_MEM_BUILTINS = {
    "memset": (True, False),    # (stores, loads)
    "memcpy": (True, True),
    "memmove": (True, True),
    "strlen": (False, True),
}


def _init_store_leaves(init) -> List[ast.Expr]:
    """Leaf expressions of an initializer; each is one store site
    (the machine stores brace initializers element-wise at the leaf
    expression's nid)."""
    if isinstance(init, list):
        out: List[ast.Expr] = []
        for item in init:
            out.extend(_init_store_leaves(item))
        return out
    return [init]


def _collect_accesses(
    loop: ast.LoopStmt,
    pointsto: PointsToResult,
    control: Optional[ast.VarDecl],
    called_fns: Dict[str, ast.FunctionDef],
) -> List[StaticAccess]:
    out: List[StaticAccess] = []
    seen_fns: Set[str] = set()

    def visit(root: ast.Node) -> None:
        for node in root.walk():
            if isinstance(node, ast.Assign):
                objs = pointsto.objects_of_access(node.nid)
                if objs:
                    affine = _affine_subscript(node.target, control) \
                        if isinstance(node.target, ast.Index) else None
                    out.append(StaticAccess(node.nid, True, objs, affine))
            elif isinstance(node, ast.VarDecl):
                # a local declaration executed inside the loop stores its
                # initializer (site: the initializer expression's nid)
                if node.init is not None:
                    obj: Obj = ("var", node.nid)
                    for leaf in _init_store_leaves(node.init):
                        out.append(StaticAccess(leaf.nid, True, {obj}, None))
            elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"
            ):
                operand = node.operand
                if isinstance(operand, ast.Ident) and \
                        isinstance(operand.decl, ast.VarDecl):
                    # increment of a variable writes the variable itself,
                    # not what it points to
                    objs: Set[Obj] = {("var", operand.decl.nid)}
                else:
                    objs = pointsto.objects_of_access(operand.nid) or set()
                if objs:
                    out.append(StaticAccess(node.nid, True, objs, None))
            elif isinstance(node, (ast.Index, ast.Member)) or (
                isinstance(node, ast.Unary) and node.op == "*"
            ):
                if _is_load_position(node):
                    objs = pointsto.objects_of_access(node.nid)
                    if objs:
                        affine = _affine_subscript(node, control) \
                            if isinstance(node, ast.Index) else None
                        out.append(
                            StaticAccess(node.nid, False, objs, affine)
                        )
            elif isinstance(node, ast.Ident) and \
                    isinstance(node.decl, ast.VarDecl) and \
                    not node.decl.ctype.is_array and _is_load_position(node):
                # the machine loads every non-array identifier (scalars,
                # pointers, struct blobs); arrays decay without a load
                out.append(StaticAccess(
                    node.nid, False, {("var", node.decl.nid)}, None
                ))
            elif isinstance(node, ast.Call) and node.callee_name:
                name = node.callee_name
                if name in _MEM_BUILTINS:
                    stores, loads = _MEM_BUILTINS[name]
                    objs = pointsto.objects_of_access(node.nid) or set()
                    if objs:
                        if stores:
                            out.append(
                                StaticAccess(node.nid, True, objs, None))
                        if loads:
                            out.append(
                                StaticAccess(node.nid, False, objs, None))
                elif name == "calloc":
                    # calloc zero-fills its fresh heap object
                    out.append(StaticAccess(
                        node.nid, True, {("heap", node.nid)}, None
                    ))
                fn = called_fns.get(name)
                if fn is not None and name not in seen_fns:
                    seen_fns.add(name)
                    # parameter binding stores the argument values
                    for param in fn.params:
                        out.append(StaticAccess(
                            param.nid, True, {("var", param.nid)}, None
                        ))
                    visit(fn.body)

    visit(loop.body)
    # the machine evaluates the loop condition (and, for ``for`` loops,
    # the step) while profiling is active; the ``for`` init runs before
    if loop.cond is not None:
        visit(loop.cond)
    if isinstance(loop, ast.For) and loop.step is not None:
        visit(loop.step)
    return out


def _is_load_position(node: ast.Node) -> bool:
    """Approximation: we cannot see parents, so treat every lvalue-form
    expression as a load too; store sites are added separately from
    Assign nodes.  Conservative (extra loads only strengthen deps)."""
    return True


def _step_delta(loop: ast.LoopStmt,
                control: Optional[ast.VarDecl]) -> Optional[int]:
    """Constant per-iteration increment of the canonical induction
    variable, or None when the step is not a recognized constant
    advance (in which case affine subscript reasoning is disabled)."""
    if control is None or not isinstance(loop, ast.For) or loop.step is None:
        return None
    step = loop.step
    if isinstance(step, ast.Unary):
        if step.op in ("++", "p++"):
            return 1
        if step.op in ("--", "p--"):
            return -1
        return None
    if isinstance(step, ast.Assign) and isinstance(step.target, ast.Ident) \
            and step.target.decl is control:
        if step.op in ("+=", "-=") and isinstance(step.value, ast.IntLit):
            c = step.value.value
            return c if step.op == "+=" else -c
        if step.op == "=" and isinstance(step.value, ast.Binary) and \
                step.value.op in ("+", "-"):
            left, right = step.value.left, step.value.right
            if isinstance(left, ast.Ident) and left.decl is control and \
                    isinstance(right, ast.IntLit):
                return right.value if step.value.op == "+" else -right.value
            if step.value.op == "+" and isinstance(right, ast.Ident) and \
                    right.decl is control and isinstance(left, ast.IntLit):
                return left.value
    return None


def build_static_ddg(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
    pointsto: Optional[PointsToResult] = None,
) -> DDG:
    """A conservative compile-time DDG for ``loop`` (see module doc)."""
    if pointsto is None:
        pointsto = analyze_pointsto(program, sema)
    control = find_control_decl(loop)
    delta = _step_delta(loop, control)
    # affine distance reasoning is only meaningful when the induction
    # variable advances by a known constant every iteration
    affine_control = control if delta else None
    called = dict(sema.functions)
    accesses = _collect_accesses(loop, pointsto, affine_control, called)

    ddg = DDG()
    control_obj = ("var", control.nid) if control is not None else None

    def scheduler_owned(acc: StaticAccess) -> bool:
        # induction-variable accesses stay in the site set (the profiler
        # records them too) but carry no edges or exposure: the parallel
        # scheduler rebinds the control variable per chunk
        return control_obj is not None and acc.objs == {control_obj}

    for acc in accesses:
        ddg.add_site(acc.site, acc.is_store)

    # exposure approximation: reads of objects that exist before the
    # loop (globals, heap allocated earlier, locals of enclosing fns)
    # are upward-exposed; writes to objects readable after are downward
    for acc in accesses:
        if scheduler_owned(acc):
            continue
        if not acc.is_store:
            ddg.upward_exposed.add(acc.site)
        else:
            ddg.downward_exposed.add(acc.site)

    for i, a in enumerate(accesses):
        if scheduler_owned(a):
            continue
        for b in accesses[i:]:
            if scheduler_owned(b):
                continue
            if not (a.is_store or b.is_store):
                continue
            if not (a.objs & b.objs):
                continue
            for src, dst, kind, carried in _dep_edges(a, b, delta):
                ddg.add_edge(src, dst, kind, carried)
    return ddg


def _dep_kinds(a: StaticAccess, b: StaticAccess,
               delta: Optional[int] = None):
    """Which carried flags to assume between two may-aliasing accesses.

    Returns the list of carried options (possibly empty when the affine
    test proves the accesses disjoint).  With a known constant step
    ``delta``, ``a[i*s + c1]`` vs ``a[i*s + c2]`` collide exactly when
    ``s*delta`` divides ``c2 - c1`` — and then only across iterations."""
    if a.affine is not None and b.affine is not None and \
            a.affine[0] == b.affine[0]:
        _obj, s1, c1 = a.affine
        _obj2, s2, c2 = b.affine
        if s1 == s2:
            diff = c2 - c1
            advance = s1 * delta if delta else 0
            if advance == 0:
                # loop-invariant subscripts: same element every iteration
                if diff != 0:
                    return []
                return [False, True]
            if diff == 0:
                return [False]      # identical subscript: same-iter only
            if diff % advance == 0:
                return [True]       # constant-distance, cross-iteration
            return []               # never the same element
        return [False, True]
    return [False, True]            # assume everything


def _dep_edges(a: StaticAccess, b: StaticAccess, delta: Optional[int]):
    """Directed dependence edges to assume between ``a`` and ``b``.

    Static analysis does not order the two accesses, so a store/load
    pair yields both the flow (store→load) and anti (load→store)
    directions; store/store pairs yield output dependences both ways."""
    carried_opts = _dep_kinds(a, b, delta)
    edges = []
    for carried in carried_opts:
        if a.is_store and b.is_store:
            edges.append((a.site, b.site, OUTPUT, carried))
            if a.site != b.site:
                edges.append((b.site, a.site, OUTPUT, carried))
        elif a.is_store or b.is_store:
            store, load = (a, b) if a.is_store else (b, a)
            edges.append((store.site, load.site, FLOW, carried))
            edges.append((load.site, store.site, ANTI, carried))
    return edges


def static_parallelizability_report(
    program: ast.Program,
    sema: SemaResult,
    loop: ast.LoopStmt,
) -> Dict[str, object]:
    """Compare what Definition 5 finds with the static vs profiled DDG.

    Returns counts a report/bench can render: the number of
    thread-private sites under each graph, and whether the static
    graph's conservatism blocks privatization entirely (the paper's
    §4.1 claim)."""
    from .access_classes import build_access_classes
    from .privatization import classify
    from .profiler import profile_loop

    static_ddg = build_static_ddg(program, sema, loop)
    static_priv = classify(static_ddg, build_access_classes(static_ddg))

    profile = profile_loop(program, sema, loop)
    dynamic_priv = classify(
        profile.ddg, build_access_classes(profile.ddg)
    )
    return {
        "static_sites": len(static_ddg.sites),
        "static_private": len(static_priv.private_sites),
        "static_carried_edges": sum(
            1 for e in static_ddg.edges if e.carried
        ),
        "profiled_sites": len(profile.ddg.sites),
        "profiled_private": len(dynamic_priv.private_sites),
        "profiled_carried_edges": sum(
            1 for e in profile.ddg.edges if e.carried
        ),
    }
