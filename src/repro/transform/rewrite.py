"""AST rewriting infrastructure.

Transforms never mutate the analyzed original program: the pipeline
first deep-clones it.  Every cloned or transform-created node carries an
``origin`` attribute — the node id of the *original* node it descends
from — so analysis facts computed on the original program (private
sites, statement cycle profiles, the candidate loop identity) remain
addressable across arbitrarily many rewriting stages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..frontend import ast
from ..frontend.ctypes import CType


def origin_of(node: ast.Node) -> int:
    """The original-program node id this node descends from."""
    return getattr(node, "origin", node.nid)


def set_origin(node: ast.Node, origin: int) -> ast.Node:
    node.origin = origin
    return node


def inherit_origin(new: ast.Node, old: ast.Node) -> ast.Node:
    """Mark ``new`` as the rewrite of ``old``."""
    new.origin = origin_of(old)
    return new


def clone_program(program: ast.Program) -> Tuple[ast.Program, Dict[int, int]]:
    """Deep-copy a program AST.

    Returns ``(clone, nid_map)`` where ``nid_map`` maps original node
    ids to clone node ids.  Cloned nodes get ``origin`` set to their
    original's id (or its origin, if the input was itself a clone).
    Types are shared, not copied — they are immutable until the
    promotion stage deliberately rebuilds them.
    """
    nid_map: Dict[int, int] = {}
    decl_map: Dict[ast.Node, ast.Node] = {}

    def dup(node):
        if node is None:
            return None
        if isinstance(node, list):
            return [dup(item) for item in node]
        if not isinstance(node, ast.Node):
            return node
        new = object.__new__(type(node))
        for key, value in node.__dict__.items():
            if key == "nid":
                continue
            if key == "decl":
                new.__dict__[key] = value  # fixed up below
            elif isinstance(value, (ast.Node, list)):
                new.__dict__[key] = dup(value)
            else:
                new.__dict__[key] = value
        new.nid = next(ast._nid_counter)
        new.origin = origin_of(node)
        nid_map[node.nid] = new.nid
        if isinstance(node, (ast.VarDecl, ast.FunctionDef)):
            decl_map[node] = new
        return new

    clone = dup(program)
    # remap Ident.decl links to the cloned declarations
    for node in clone.walk():
        if isinstance(node, ast.Ident) and node.decl is not None:
            node.decl = decl_map.get(node.decl, node.decl)
    return clone, nid_map


class Rewriter:
    """Bottom-up expression/statement rewriter.

    Subclasses override ``rewrite_expr``/``rewrite_stmt`` (called after
    children have been rewritten) and return a replacement node or the
    node unchanged.  ``rewrite_stmt`` may return a list of statements
    to splice in place of one (how span-computing statements are
    inserted after pointer assignments, Table 3).
    """

    def run(self, program: ast.Program) -> ast.Program:
        for decl in program.decls:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                decl.body = self._do_stmt(decl.body)
            elif isinstance(decl, ast.VarDecl) and decl.init is not None:
                decl.init = self._do_init(decl.init)
        return program

    # -- traversal ---------------------------------------------------------
    def _do_init(self, init):
        if isinstance(init, list):
            return [self._do_init(i) for i in init]
        return self._do_expr(init)

    def _do_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        out = self._do_stmt_multi(stmt)
        if isinstance(out, list):
            if len(out) == 1:
                return out[0]
            block = ast.Block(out, loc=stmt.loc)
            return inherit_origin(block, stmt)
        return out

    def _do_stmt_multi(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            new_stmts: List[ast.Stmt] = []
            for s in stmt.stmts:
                result = self._do_stmt_multi(s)
                if isinstance(result, list):
                    new_stmts.extend(result)
                else:
                    new_stmts.append(result)
            stmt.stmts = new_stmts
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._do_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    decl.init = self._do_init(decl.init)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._do_expr(stmt.cond)
            stmt.then = self._do_stmt(stmt.then)
            if stmt.els is not None:
                stmt.els = self._do_stmt(stmt.els)
        elif isinstance(stmt, ast.While):
            stmt.cond = self._do_expr(stmt.cond)
            stmt.body = self._do_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            stmt.body = self._do_stmt(stmt.body)
            stmt.cond = self._do_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                stmt.init = self._do_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._do_expr(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._do_expr(stmt.step)
            stmt.body = self._do_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                stmt.expr = self._do_expr(stmt.expr)
        return self.rewrite_stmt(stmt)

    def _do_expr(self, expr: ast.Expr) -> ast.Expr:
        for name in expr._fields:
            value = getattr(expr, name)
            if isinstance(value, ast.Expr):
                setattr(expr, name, self._do_expr(value))
            elif isinstance(value, list):
                setattr(
                    expr, name,
                    [self._do_expr(v) if isinstance(v, ast.Expr) else v
                     for v in value],
                )
        return self.rewrite_expr(expr)

    # -- override points --------------------------------------------------------
    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        return expr

    def rewrite_stmt(self, stmt: ast.Stmt):
        return stmt


# -- small node factories (origin-aware) -------------------------------------

def ident(name: str, like: Optional[ast.Node] = None) -> ast.Ident:
    node = ast.Ident(name)
    if like is not None:
        inherit_origin(node, like)
    return node


def intlit(value: int, like: Optional[ast.Node] = None) -> ast.IntLit:
    node = ast.IntLit(value)
    if like is not None:
        inherit_origin(node, like)
    return node


def member(base: ast.Expr, field: str, arrow: bool = False,
           like: Optional[ast.Node] = None) -> ast.Member:
    node = ast.Member(base, field, arrow)
    inherit_origin(node, like if like is not None else base)
    return node


def binary(op: str, left: ast.Expr, right: ast.Expr,
           like: Optional[ast.Node] = None) -> ast.Binary:
    node = ast.Binary(op, left, right)
    inherit_origin(node, like if like is not None else left)
    return node


def unary(op: str, operand: ast.Expr,
          like: Optional[ast.Node] = None) -> ast.Unary:
    node = ast.Unary(op, operand)
    inherit_origin(node, like if like is not None else operand)
    return node


def index(base: ast.Expr, idx: ast.Expr,
          like: Optional[ast.Node] = None) -> ast.Index:
    node = ast.Index(base, idx)
    inherit_origin(node, like if like is not None else base)
    return node


def assign(target: ast.Expr, value: ast.Expr,
           like: Optional[ast.Node] = None) -> ast.Assign:
    node = ast.Assign("=", target, value)
    inherit_origin(node, like if like is not None else target)
    return node


def expr_stmt(expr: ast.Expr, like: Optional[ast.Node] = None) -> ast.ExprStmt:
    node = ast.ExprStmt(expr)
    inherit_origin(node, like if like is not None else expr)
    return node


def call(name: str, args: List[ast.Expr],
         like: Optional[ast.Node] = None) -> ast.Call:
    node = ast.Call(ast.Ident(name), args)
    if like is not None:
        inherit_origin(node, like)
        inherit_origin(node.func, like)
    return node


def sizeof_type(ctype: CType, like: Optional[ast.Node] = None) -> ast.SizeofType:
    node = ast.SizeofType(ctype)
    if like is not None:
        inherit_origin(node, like)
    return node


def clone_expr(expr: ast.Expr) -> ast.Expr:
    """Deep-copy a single expression subtree, preserving origins."""

    def dup(node):
        if not isinstance(node, ast.Node):
            return node
        new = object.__new__(type(node))
        for key, value in node.__dict__.items():
            if key == "nid":
                continue
            if isinstance(value, ast.Node):
                new.__dict__[key] = dup(value)
            elif isinstance(value, list):
                new.__dict__[key] = [dup(v) for v in value]
            else:
                new.__dict__[key] = value
        new.nid = next(ast._nid_counter)
        new.origin = origin_of(node)
        return new

    return dup(expr)
