"""End-to-end expansion pipeline (the paper's Figure 7 workflow).

Stages, in the paper's required order ("the creation and computation of
the symbol span is prior to the data structure expansion"):

1. **Profile** each candidate loop on the original program → DDG
   (Definitions 1-3).
2. **Classify** accesses: access classes (Definition 4), thread-private
   classes (Definition 5).
3. **Alias analysis** (Andersen) → expansion set = objects reachable
   from private accesses; promotion plan (§3.4 selective promotion).
4. **Clone** the program (originals stay runnable as the baseline).
5. **Promote** pointers to fat pointers + insert span statements
   (Figures 5-6, Table 3).
6. **Heapify + expand**: globals/locals in the expansion set become
   heap objects; every expansion-set allocation is multiplied by
   ``__nthreads`` (Table 1); named-variable accesses are redirected
   (Table 2 rows 1-6).
7. **Redirect** private pointer dereferences through spans (Table 2
   last row), with constant spans where §3.4's optimization applies.
8. **Plan parallel execution**: loop kind from its pragma, plus the
   set of statements that must stay ordered for DOACROSS loops
   (accesses with surviving cross-thread dependences).

The result is a runnable transformed program plus everything the
parallel runtime and the benchmark harness need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..diagnostics import (
    Diagnostic, DiagnosticSink, diagnostic_of,
)
from ..obs import ensure_tracer
from ..frontend import ast
from ..frontend.ctypes import ArrayType, CTypeError
from ..frontend.sema import SemaError, SemaResult, analyze
from ..interp.machine import InterpError
from ..interp.memory import MemoryError_
from ..analysis.access_classes import build_access_classes
from ..analysis.breakdown import Breakdown, compute_breakdown
from ..analysis.commutative import (
    GROUP_MERGE_OPS, ReductionInfo, build_certificate,
    upgrade_commutative,
)
from ..analysis.pointsto import Obj, PointsToResult, analyze_pointsto
from ..analysis.privatization import PrivatizationResult, classify
from ..analysis.profiler import LoopProfile, profile_loop
from . import expand as ex
from .promote import (
    PromotionPlan, TransformError, TypePromoter, heap_object_types,
    promote_program,
)
from .redirect import (RedirectStats, hoist_redirections,
    redirect_private_derefs)
from .rewrite import clone_program, origin_of

DOALL = "doall"
DOACROSS = "doacross"

#: failure classes the permissive pipeline degrades on (anything else
#: is a toolchain bug and propagates regardless of mode)
PIPELINE_FAULTS = (
    TransformError, SemaError, CTypeError, InterpError, MemoryError_,
    KeyError, ValueError,
)


class QuarantinedLoop:
    """A candidate loop excluded from the transform after a stage
    failure.  It stays sequential in the emitted program; when its
    profile and privatization classification survived, the parallel
    runtime may instead run it under SpiceC-style runtime privatization
    (``fallback == RUNTIME_PRIV``), which needs exactly that data."""

    SEQUENTIAL = "sequential"
    RUNTIME_PRIV = "runtime-priv"

    def __init__(
        self,
        label: str,
        phase: str,
        reason: str,
        fallback: str = SEQUENTIAL,
        loop: Optional[ast.LoopStmt] = None,
        profile: Optional[LoopProfile] = None,
        priv: Optional[PrivatizationResult] = None,
    ):
        self.label = label
        self.phase = phase
        self.reason = reason
        self.fallback = fallback
        self.loop = loop
        self.profile = profile
        self.priv = priv

    def __repr__(self) -> str:
        return (
            f"<QuarantinedLoop {self.label!r} phase={self.phase} "
            f"fallback={self.fallback}>"
        )


class OptFlags:
    """§3.4 optimization toggles (for ablation; ``optimize=bool`` in the
    public API sets them all)."""

    def __init__(self, selective_promotion=True, trivial_span_elim=True,
                 constant_spans=True, hoisting=True, licm=True):
        self.selective_promotion = selective_promotion
        self.trivial_span_elim = trivial_span_elim
        self.constant_spans = constant_spans
        self.hoisting = hoisting
        self.licm = licm

    @classmethod
    def all_off(cls):
        return cls(False, False, False, False, False)

    @classmethod
    def from_bool(cls, optimize):
        if isinstance(optimize, cls):
            return optimize
        return cls() if optimize else cls.all_off()


class TransformedLoop:
    """One candidate loop in the transformed program."""

    def __init__(self, loop: ast.LoopStmt, kind: str,
                 profile: LoopProfile, priv: PrivatizationResult):
        self.loop = loop
        self.kind = kind
        self.profile = profile
        self.priv = priv
        #: origins of loop-body top-level statements that must execute
        #: in iteration order under DOACROSS (surviving carried deps)
        self.serial_stmt_origins: Set[int] = set()
        self.breakdown: Optional[Breakdown] = None
        #: serializable parallelism certificate (class assignment per
        #: site + reduction proofs), re-verified by LINT-CERT
        self.certificate: Optional[Dict[str, object]] = None

    def __repr__(self) -> str:
        return f"<TransformedLoop {self.kind} label={self.loop.label!r}>"


class TransformResult:
    """Everything produced by :func:`expand_for_threads`."""

    def __init__(self):
        self.program: Optional[ast.Program] = None
        self.sema: Optional[SemaResult] = None
        self.promoter: Optional[TypePromoter] = None
        self.expansion = ex.ExpansionResult()
        self.loops: List[TransformedLoop] = []
        self.redirect_stats: Optional[RedirectStats] = None
        self.pointsto: Optional[PointsToResult] = None
        self.private_sites: Set[int] = set()
        self.redirect_origins: Set[int] = set()
        self.expansion_objs: Set[Obj] = set()
        #: structured findings from this run (quarantines, degradations)
        self.diagnostics: List[Diagnostic] = []
        #: loops excluded from the transform in permissive mode
        self.quarantined: List[QuarantinedLoop] = []
        #: span stores removed by the liveness-based §3.4 pass
        self.span_stores_dead_eliminated = 0
        #: sites of classes upgraded to the commutative class
        self.commutative_sites: Set[int] = set()
        #: accumulators that received identity-init + merge-back code
        self.reduction_merges = 0

    @property
    def num_privatized(self) -> int:
        """Number of dynamic data structures privatized (Table 5)."""
        return self.expansion.num_expanded

    def loop_by_label(self, label: str) -> TransformedLoop:
        for tl in self.loops:
            if tl.loop.label == label:
                return tl
        raise KeyError(f"no transformed loop labeled {label!r}")


def parse_loop_kind(loop: ast.LoopStmt) -> str:
    """Read the parallelism kind from ``#pragma expand parallel(...)``."""
    for pragma in loop.pragmas:
        text = pragma.replace(" ", "").lower()
        if "parallel(doacross)" in text:
            return DOACROSS
        if "parallel(doall)" in text:
            return DOALL
    return DOALL


def _spine_nids(expr: ast.Expr) -> Set[int]:
    """The lvalue spine of an access expression: the nodes that denote
    the accessed location itself (not separate loads feeding the
    address computation).  Stops at pointer loads: the base of ``p->f``
    or ``*p`` is its own access with its own classification."""
    out: Set[int] = set()
    node: Optional[ast.Expr] = expr
    while node is not None:
        out.add(node.nid)
        if isinstance(node, ast.Index):
            base_t = node.base.ctype
            if base_t is not None and base_t.is_array:
                node = node.base     # a[i][j]: inner index is same object
            else:
                node = None          # pointer base: separate load
        elif isinstance(node, ast.Member):
            node = None if node.arrow else node.base
        elif isinstance(node, ast.Cast):
            node = node.expr
        else:
            node = None
    return out


def compute_redirect_origins(
    program: ast.Program, private_sites: Set[int]
) -> Set[int]:
    """Private sites plus the full lvalue spines of private accesses:
    the root identifier of ``a[i][j]`` or ``s.f`` carries its access's
    classification so the expansion stage can decide copy selection at
    the identifier."""
    out = set(private_sites)
    for fn in program.functions():
        for node in fn.body.walk():
            if node.nid not in private_sites:
                continue
            if isinstance(node, ast.Assign):
                out |= _spine_nids(node.target)
            elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"
            ):
                out |= _spine_nids(node.operand)
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    at = arg.ctype.decay() if arg.ctype else None
                    if at is not None and at.is_pointer:
                        out |= _spine_nids(arg)
            elif isinstance(node, (ast.Index, ast.Member, ast.Ident,
                                   ast.Unary)):
                out |= _spine_nids(node)
    return out


def _const_fold(expr: ast.Expr,
                const_env: Optional[Dict[object, int]] = None) -> Optional[int]:
    """Fold integer-constant expressions (literals, sizeof, + - * /,
    and reads of never-written literal-initialized globals — the
    constant propagation §3.4 leans on)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.of_type.size
    if isinstance(expr, ast.SizeofExpr):
        ctype = expr.expr.ctype
        return ctype.size if ctype is not None else None
    if isinstance(expr, ast.Cast):
        return _const_fold(expr.expr, const_env)
    if isinstance(expr, ast.Ident) and const_env is not None:
        key = getattr(expr.decl, "origin", None) or             (expr.decl.nid if expr.decl is not None else None)
        return const_env.get(key)
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-", "*", "/"):
        left = _const_fold(expr.left, const_env)
        right = _const_fold(expr.right, const_env)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left // right if right else None
    return None


def read_only_literal_globals(program: ast.Program,
                              sema: SemaResult) -> Dict[int, int]:
    """Global int decls with literal initializers that are never
    stored to or address-taken: map decl nid -> value."""
    candidates: Dict[int, int] = {}
    for decl in sema.globals:
        if isinstance(decl.init, ast.IntLit) and decl.ctype.is_integer:
            candidates[decl.nid] = decl.init.value
    for fn in program.functions():
        for node in fn.body.walk():
            target = None
            if isinstance(node, ast.Assign):
                target = node.target
            elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--", "&"
            ):
                target = node.operand
            if isinstance(target, ast.Ident) and                     isinstance(target.decl, ast.VarDecl):
                candidates.pop(target.decl.nid, None)
    return candidates


def _normalize_profile_obj(key) -> Optional[Obj]:
    """Map a profiler object key (segment kind, tag) to the points-to
    object vocabulary."""
    kind, tag = key
    if kind in ("global", "stack"):
        return ("var", tag)
    if kind == "heap":
        return ("heap", tag)
    return None  # rodata


class ExpansionPipeline:
    """Configurable driver; :func:`expand_for_threads` is the one-call API."""

    def __init__(
        self,
        program: ast.Program,
        sema: SemaResult,
        loop_labels: List[str],
        optimize=True,
        expansion_source: str = "static",
        entry: str = "main",
        profiles: Optional[Dict[str, LoopProfile]] = None,
        layout: str = "bonded",
        strict: bool = True,
        sink: Optional[DiagnosticSink] = None,
        tracer=None,
        commutative: bool = True,
    ):
        if expansion_source not in ("static", "profile"):
            raise ValueError("expansion_source must be 'static' or 'profile'")
        if layout not in (ex.BONDED, ex.INTERLEAVED, ex.ADAPTIVE):
            raise ValueError(
                "layout must be 'bonded', 'interleaved' or 'adaptive'"
            )
        self.program = program
        self.sema = sema
        self.loop_labels = loop_labels
        self.flags = OptFlags.from_bool(optimize)
        self.optimize = bool(
            self.flags.selective_promotion or self.flags.hoisting
            or self.flags.constant_spans or self.flags.trivial_span_elim
        )
        self.expansion_source = expansion_source
        self.entry = entry
        self.layout = layout
        self._given_profiles = profiles or {}
        self.strict = strict
        self.commutative = commutative
        # empty sinks are falsy (len 0) — compare to None explicitly
        self.sink = sink if sink is not None else DiagnosticSink()
        self.tracer = ensure_tracer(tracer)
        self.quarantined: List[QuarantinedLoop] = []
        self.result = TransformResult()
        self._cm_counter = 0

    # -- graceful degradation ----------------------------------------------
    def _quarantine(
        self,
        label: str,
        phase: str,
        exc: BaseException,
        loop: Optional[ast.LoopStmt] = None,
        profile: Optional[LoopProfile] = None,
        priv: Optional[PrivatizationResult] = None,
    ) -> QuarantinedLoop:
        """Exclude one loop (permissive mode) or fail fast (strict)."""
        if self.strict:
            raise exc
        fallback = (
            QuarantinedLoop.RUNTIME_PRIV
            if loop is not None and profile is not None and priv is not None
            else QuarantinedLoop.SEQUENTIAL
        )
        q = QuarantinedLoop(label, phase, str(exc), fallback,
                            loop=loop, profile=profile, priv=priv)
        self.quarantined.append(q)
        cause = diagnostic_of(exc)
        cause.loop = cause.loop or label
        self.sink.emit(cause)
        self.sink.warning(
            "PIPE-QUARANTINE",
            f"loop {label!r} quarantined after {phase} failure; "
            f"it will execute via {fallback} fallback",
            loop=label, phase=phase, data={"fallback": fallback},
        )
        return q

    def _resolve_labels(self) -> List[ast.LoopStmt]:
        loops: List[ast.LoopStmt] = []
        for lbl in self.loop_labels:
            try:
                loops.append(ast.find_loop(self.program, lbl))
            except KeyError as exc:
                self._quarantine(lbl, "lookup", exc)
        return loops

    def _profile_and_classify(self, loops: List[ast.LoopStmt]):
        profiles: Dict[str, LoopProfile] = {}
        privs: Dict[str, PrivatizationResult] = {}
        kept: List[ast.LoopStmt] = []
        for loop in loops:
            label = loop.label
            try:
                with self.tracer.phase("profile", loop=label):
                    profile = self._given_profiles.get(label) or \
                        profile_loop(
                            self.program, self.sema, loop, self.entry
                        )
            except PIPELINE_FAULTS as exc:
                self._quarantine(label, "profile", exc, loop=loop)
                continue
            try:
                with self.tracer.phase("classify", loop=label):
                    priv = classify(
                        profile.ddg, build_access_classes(profile.ddg)
                    )
                    if self.commutative:
                        upgrade_commutative(
                            self.program, self.sema, loop, profile, priv
                        )
            except PIPELINE_FAULTS as exc:
                self._quarantine(label, "classify", exc, loop=loop,
                                 profile=profile)
                continue
            profiles[label] = profile
            privs[label] = priv
            kept.append(loop)
        return kept, profiles, privs

    def _attribute_failure(
        self,
        loops: List[ast.LoopStmt],
        profiles: Dict[str, LoopProfile],
        privs: Dict[str, PrivatizationResult],
        exc: BaseException,
    ) -> List[ast.LoopStmt]:
        """Bisect a whole-transform failure: retry each loop alone and
        quarantine the ones that fail individually."""
        if len(loops) <= 1:
            for loop in loops:
                self._quarantine(
                    loop.label, "transform", exc, loop=loop,
                    profile=profiles.get(loop.label),
                    priv=privs.get(loop.label),
                )
            return []
        survivors: List[ast.LoopStmt] = []
        for loop in loops:
            try:
                self._run_transform([loop], profiles, privs)
            except PIPELINE_FAULTS as solo_exc:
                self._quarantine(
                    loop.label, "transform", solo_exc, loop=loop,
                    profile=profiles.get(loop.label),
                    priv=privs.get(loop.label),
                )
            else:
                survivors.append(loop)
        return survivors

    def _identity_result(self) -> TransformResult:
        """Last-resort degradation: keep the program untransformed so
        every candidate loop runs sequentially (or via runtime
        privatization) instead of taking the run down."""
        result = TransformResult()
        clone, _nid_map = clone_program(self.program)
        result.program = clone
        result.sema = analyze(clone)
        result.redirect_stats = RedirectStats()
        self.sink.warning(
            "PIPE-DEGRADED",
            "no candidate loop survived the transform; program left "
            "untransformed (sequential / runtime-priv execution)",
            phase="transform",
        )
        self.result = result
        return result

    # -- stages ------------------------------------------------------------
    def run(self) -> TransformResult:
        with self.tracer.phase("expand-pipeline",
                               loops=",".join(self.loop_labels)):
            loops = self._resolve_labels()
            loops, profiles, privs = self._profile_and_classify(loops)
            try:
                self._run_transform(loops, profiles, privs)
            except PIPELINE_FAULTS as exc:
                if self.strict:
                    raise
                survivors = self._attribute_failure(
                    loops, profiles, privs, exc
                )
                try:
                    self._run_transform(survivors, profiles, privs)
                except PIPELINE_FAULTS:
                    self._identity_result()
            self.result.diagnostics = list(self.sink.diagnostics)
            self.result.quarantined = list(self.quarantined)
            self._record_metrics()
        return self.result

    def _record_metrics(self) -> None:
        record_transform_metrics(self.result, self.tracer)

    def _run_transform(
        self,
        loops: List[ast.LoopStmt],
        profiles: Dict[str, LoopProfile],
        privs: Dict[str, PrivatizationResult],
    ) -> TransformResult:
        """The three transform stages back to back (the monolithic
        path; the service's :class:`~repro.service.StagedCompiler`
        drives the same stages individually with a cache probe between
        each)."""
        self.stage_expand(loops, profiles, privs)
        self.stage_optimize(loops)
        self.stage_plan(loops, profiles, privs)
        return self.result

    def stage_expand(
        self,
        loops: List[ast.LoopStmt],
        profiles: Dict[str, LoopProfile],
        privs: Dict[str, PrivatizationResult],
    ) -> TransformResult:
        """Points-to → promote → heapify/expand → redirect, on a fresh
        clone.  Resets ``self.result``; on return ``result.program`` is
        the redirected (not yet optimized) clone."""
        self.result = TransformResult()
        tracer = self.tracer
        # only the loops actually being transformed contribute sites:
        # quarantined loops must not drag their structures into the
        # expansion set on a retry
        labels = [loop.label for loop in loops]
        private_sites: Set[int] = set()
        commutative_sites: Set[int] = set()
        for label in labels:
            private_sites |= privs[label].private_sites
            commutative_sites |= getattr(
                privs[label], "commutative_sites", set()
            )
        self.result.private_sites = private_sites
        self.result.commutative_sites = commutative_sites

        with tracer.phase("pointsto"):
            pointsto = analyze_pointsto(self.program, self.sema)
        # heap object types feed promotion-group decisions
        for nid, types in heap_object_types(self.program).items():
            pointsto.object_types.setdefault(("heap", nid), set()).update(types)
        self.result.pointsto = pointsto

        expansion_objs = self._expansion_set(
            private_sites, pointsto,
            {label: profiles[label] for label in labels},
        )
        self.result.expansion_objs = expansion_objs

        redirect_origins = compute_redirect_origins(
            self.program, private_sites
        )
        self.result.redirect_origins = redirect_origins

        with tracer.phase("promote"):
            plan = PromotionPlan.from_analysis(
                self.program, self.sema, pointsto, expansion_objs,
                promote_all=not self.flags.selective_promotion,
            )
            clone, _nid_map = clone_program(self.program)
            promoter = promote_program(
                clone, self.sema, plan,
                keep_trivial_spans=not self.flags.trivial_span_elim,
            )
            self.result.promoter = promoter
            analyze(clone)

        with tracer.phase("expand"):
            self._heapify_and_expand(clone, expansion_objs,
                                     redirect_origins)
            analyze(clone)
            static_spans = self._static_spans(
                clone, pointsto, redirect_origins
            ) if self.flags.constant_spans else {}
            ex.expand_allocations(
                clone,
                {nid for kind, nid in expansion_objs if kind == "heap"},
                self.result.expansion,
            )

        with tracer.phase("redirect"):
            self.result.redirect_stats = redirect_private_derefs(
                clone, promoter, redirect_origins,
                static_spans, use_constant_spans=self.flags.constant_spans,
            )
        if self.commutative:
            with tracer.phase("merge-back"):
                self.result.reduction_merges = self._insert_merge_back(
                    clone, loops, privs
                )
            if self.result.reduction_merges:
                # resolve the freshly generated identifiers before the
                # optimizer walks the clone
                analyze(clone)
        self.result.program = clone
        return self.result

    def stage_optimize(
        self, loops: List[ast.LoopStmt]
    ) -> TransformResult:
        """§3.4 hoisting / LICM / dead span-store elimination over the
        clone produced by :meth:`stage_expand`, then the final semantic
        re-analysis.  ``loops`` are the *original-program* candidate
        loops (the clone's loops are matched by origin)."""
        tracer = self.tracer
        clone = self.result.program
        if self.flags.hoisting or self.flags.licm:
            optimize_span = tracer.begin("optimize")
            # LICM-lite over *every* loop (innermost first): redirected
            # derefs inside called functions hoist to their own loops
            all_loops: List[ast.LoopStmt] = []
            for fn in clone.functions():
                all_loops.extend(
                    node for node in fn.body.walk()
                    if isinstance(node, ast.LoopStmt)
                )
            # preorder = outermost first: hoist each redirection as
            # far out as its invariance allows; inner loops pick up
            # whatever the outer level had to skip (dirty variables)
            candidate_nids = {
                lp.nid for lp in ast.iter_loops(clone)
                if origin_of(lp) in {loop.nid for loop in loops}
            }
            from .optimize import (
                build_parent_blocks, hoist_expanded_bases, licm_globals,
            )
            parents = build_parent_blocks(clone)
            try:
                if self.flags.hoisting:
                    hoist_redirections(all_loops,
                                       self.result.redirect_stats,
                                       candidate_nids, parents)
                    hoist_expanded_bases(all_loops, candidate_nids,
                                         parents)
                if self.flags.licm:
                    licm_globals(clone)
            finally:
                tracer.end(optimize_span)
        final_sema = analyze(clone)
        if self.flags.trivial_span_elim:
            # §3.4 dead span-store elimination, liveness-derived: sweeps
            # whatever the emission-time peephole could not see (e.g.
            # spans never read again on any path).  Runs after the
            # re-analysis so hoisted initializers have resolved
            # identifiers — liveness must see their span reads.
            from .optimize import eliminate_dead_spans
            self.result.span_stores_dead_eliminated = \
                eliminate_dead_spans(clone)
            if self.result.span_stores_dead_eliminated:
                final_sema = analyze(clone)

        self.result.sema = final_sema
        return self.result

    def stage_plan(
        self,
        loops: List[ast.LoopStmt],
        profiles: Dict[str, LoopProfile],
        privs: Dict[str, PrivatizationResult],
    ) -> TransformResult:
        """Derive the parallel execution plan (loop kinds, serialized
        DOACROSS statements, breakdowns) for the optimized clone."""
        with self.tracer.phase("plan"):
            self._plan_loops(self.result.program, loops, profiles, privs)
        return self.result

    # -- helpers --------------------------------------------------------------
    def _expansion_set(
        self,
        private_sites: Set[int],
        pointsto: PointsToResult,
        profiles: Dict[str, LoopProfile],
    ) -> Set[Obj]:
        objs: Set[Obj] = set()
        if self.expansion_source == "static":
            for site in private_sites:
                objs |= pointsto.objects_of_access(site)
        else:
            for profile in profiles.values():
                for site in private_sites:
                    for key in profile.site_objects.get(site, ()):
                        norm = _normalize_profile_obj(key)
                        if norm is not None:
                            objs.add(norm)
        # returns-slots and string literals are not expandable storage
        return {o for o in objs if o[0] in ("var", "heap")}

    def _heapify_and_expand(
        self, clone: ast.Program, expansion_objs: Set[Obj],
        redirect_origins: Set[int],
    ) -> None:
        var_origins = {nid for kind, nid in expansion_objs if kind == "var"}
        global_targets: List[ast.VarDecl] = []
        local_targets: List[ast.VarDecl] = []
        for node in clone.walk():
            if isinstance(node, ast.VarDecl) and \
                    origin_of(node) in var_origins:
                if node.storage == "global":
                    global_targets.append(node)
                else:
                    local_targets.append(node)
        if self.layout == ex.INTERLEAVED:
            heap_sites = {o for o in expansion_objs if o[0] == "heap"}
            if heap_sites:
                raise TransformError(
                    "interleaved layout cannot expand heap-allocated "
                    "structures: without knowing the exact element size "
                    "(structures may be recast between differently-sized "
                    "types, like 256.bzip2's zptr) the compiler cannot "
                    "place per-element duplicates — use bonded mode"
                )
        layout_for = self._layout_chooser(clone, global_targets
                                          + local_targets)
        ex.heapify_globals(clone, global_targets, self.result.expansion,
                           layout_for)
        ex.vla_expand_locals(clone, local_targets, self.result.expansion,
                             layout_for)
        ex.rewrite_expanded_references(
            clone, self.result.expansion, redirect_origins
        )

    def _layout_chooser(self, clone: ast.Program, targets):
        """Per-structure copy layout.

        * ``bonded``/``interleaved``: every structure uses that mode
          (interleaved additionally rejects unsupported shapes loudly);
        * ``adaptive`` (the paper's §6 future work, implemented here):
          each structure independently gets interleaved placement when
          it is legal for it — a one-dimensional array only ever used
          with a subscript — and bonded otherwise.  Heap chunks and
          whole-copy (decayed) arrays must stay bonded because their
          element size or copy contiguity is load-bearing.
        """
        if self.layout == ex.BONDED:
            return lambda decl: ex.BONDED
        if self.layout == ex.INTERLEAVED:
            return lambda decl: ex.INTERLEAVED

        target_set = set(targets)
        bare_used: Set[object] = set()
        multi_dim = {
            decl for decl in target_set
            if isinstance(decl.ctype, ArrayType)
            and isinstance(decl.ctype.elem, ArrayType)
        }
        for fn in clone.functions():
            for node in fn.body.walk():
                for name in node._fields:
                    value = getattr(node, name)
                    children = value if isinstance(value, list) else [value]
                    for child in children:
                        if not (isinstance(child, ast.Ident)
                                and child.decl in target_set
                                and isinstance(child.decl.ctype, ArrayType)):
                            continue
                        if not (isinstance(node, ast.Index)
                                and name == "base"):
                            bare_used.add(child.decl)

        def choose(decl) -> str:
            if not isinstance(decl.ctype, ArrayType):
                return ex.BONDED  # scalars/records: modes coincide
            if decl in bare_used or decl in multi_dim:
                return ex.BONDED
            if isinstance(decl.init, list):
                return ex.BONDED  # initialized arrays keep bonded layout
            return ex.INTERLEAVED

        return choose

    def _static_spans(
        self,
        clone: ast.Program,
        pointsto: PointsToResult,
        redirect_origins: Set[int],
    ) -> Dict[int, int]:
        const_env = read_only_literal_globals(self.program, self.sema)
        """§3.4: accesses whose every possible target object has the
        same compile-time-constant size can use a literal span."""
        # object -> static size (bytes) in the *transformed* program
        obj_sizes: Dict[Obj, Optional[int]] = {}
        heapified_by_origin = {
            origin_of(decl): hvar
            for decl, hvar in self.result.expansion.heapified.items()
        }
        alloc_by_origin: Dict[int, ast.Call] = {}
        for node in clone.walk():
            if isinstance(node, ast.Call) and node.callee_name in (
                "malloc", "calloc", "realloc"
            ):
                alloc_by_origin[origin_of(node)] = node

        def size_of(obj: Obj) -> Optional[int]:
            if obj in obj_sizes:
                return obj_sizes[obj]
            kind, nid = obj
            size: Optional[int] = None
            if kind == "var":
                hvar = heapified_by_origin.get(nid)
                if hvar is not None and hvar.orig_type.size is not None:
                    size = hvar.orig_type.size
            elif kind == "heap":
                node = alloc_by_origin.get(nid)
                if node is not None:
                    name = node.callee_name
                    if name == "malloc":
                        size = _const_fold(node.args[0], const_env)
                    elif name == "calloc":
                        a = _const_fold(node.args[0], const_env)
                        b = _const_fold(node.args[1], const_env)
                        size = a * b if a is not None and b is not None \
                            else None
                    elif name == "realloc":
                        size = _const_fold(node.args[1], const_env)
            obj_sizes[obj] = size
            return size

        out: Dict[int, int] = {}
        for origin in redirect_origins:
            objs = pointsto.objects_of_access(origin)
            if not objs:
                continue
            sizes = {size_of(o) for o in objs}
            if len(sizes) == 1:
                size = next(iter(sizes))
                if size is not None:
                    out[origin] = size
        return out

    def _plan_loops(
        self,
        clone: ast.Program,
        loops: List[ast.LoopStmt],
        profiles: Dict[str, LoopProfile],
        privs: Dict[str, PrivatizationResult],
    ) -> None:
        clone_loops = {origin_of(lp): lp for lp in ast.iter_loops(clone)}
        for loop in loops:
            new_loop = clone_loops.get(loop.nid)
            if new_loop is None:
                raise TransformError(
                    f"candidate loop {loop.label!r} lost during transform"
                )
            profile = profiles[loop.label]
            priv = privs[loop.label]
            tl = TransformedLoop(
                new_loop, parse_loop_kind(loop), profile, priv
            )
            tl.breakdown = compute_breakdown(profile.ddg, priv)
            tl.serial_stmt_origins = self._serial_stmts(loop, profile, priv)
            if self.commutative:
                tl.certificate = build_certificate(
                    loop.label, profile, priv
                )
            self.result.loops.append(tl)

    def _serial_stmts(
        self,
        loop: ast.LoopStmt,
        profile: LoopProfile,
        priv: PrivatizationResult,
    ) -> Set[int]:
        """Loop-body top-level statements with surviving cross-thread
        dependences (expansion removed the private ones)."""
        surviving_sites: Set[int] = set()
        for edge in profile.ddg.edges:
            if not edge.carried:
                continue
            if edge.src in priv.private_sites and \
                    edge.dst in priv.private_sites:
                continue  # removed by expansion
            surviving_sites.add(edge.src)
            surviving_sites.add(edge.dst)
        body = loop.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        out: Set[int] = set()
        for stmt in stmts:
            nids = {n.nid for n in stmt.walk()}
            if nids & surviving_sites:
                out.add(stmt.nid)
        return out

    # -- commutative merge-back codegen -----------------------------------
    def _insert_merge_back(
        self,
        clone: ast.Program,
        loops: List[ast.LoopStmt],
        privs: Dict[str, PrivatizationResult],
    ) -> int:
        """For every proven reduction accumulator: initialize copies
        1..N-1 to the op's identity immediately before the loop and
        fold them back into copy 0 immediately after it.  Copy 0 keeps
        the pre-loop value (upward exposure) and receives the merged
        total before any post-loop read (downward exposure), so the
        sequential semantics is preserved bit-for-bit — integer update
        ops are associative and commutative modulo 2**w."""
        with_reds = [
            (loop, privs[loop.label].reductions)
            for loop in loops
            if getattr(privs[loop.label], "reductions", None)
        ]
        if not with_reds:
            return 0
        clone_loops = {origin_of(lp): lp for lp in ast.iter_loops(clone)}
        evar_by_origin = {
            origin_of(decl): evar
            for decl, evar in self.result.expansion.expanded_vars.items()
        }
        merges = 0
        for loop, reds in with_reds:
            new_loop = clone_loops.get(loop.nid)
            if new_loop is None:
                raise TransformError(
                    f"candidate loop {loop.label!r} lost during transform"
                )
            pairs = []
            for red in reds.values():
                evar = evar_by_origin.get(red.root_origin)
                if evar is None:
                    raise TransformError(
                        f"commutative accumulator {red.name!r} of loop "
                        f"{loop.label!r} was not expanded"
                    )
                pairs.append((red, evar))
            parent, idx = self._enclosing_block(clone, new_loop)
            init_block = self._copies_loop(pairs, merge=False)
            merge_block = self._copies_loop(pairs, merge=True)
            parent.stmts[idx:idx] = [init_block]
            parent.stmts.insert(idx + 2, merge_block)
            merges += len(pairs)
        return merges

    @staticmethod
    def _enclosing_block(clone: ast.Program, target: ast.Stmt):
        for fn in clone.functions():
            if fn.body is None:
                continue
            for node in fn.body.walk():
                if isinstance(node, ast.Block):
                    for i, stmt in enumerate(node.stmts):
                        if stmt is target:
                            return node, i
        raise TransformError(
            "commutative merge-back: candidate loop has no enclosing "
            "statement block"
        )

    def _fresh_cm(self) -> str:
        name = f"__cm{self._cm_counter}"
        self._cm_counter += 1
        return name

    @staticmethod
    def _count_loop(var: str, start: int, bound: ast.Expr,
                    body: List[ast.Stmt]) -> ast.Block:
        """``{ int var; for (var = start; var < bound; var++) body }``"""
        from ..frontend.ctypes import INT
        decl = ast.VarDecl(var, INT, None, "local")
        loop = ast.For(
            ast.ExprStmt(ast.Assign("=", ast.Ident(var),
                                    ast.IntLit(start))),
            ast.Binary("<", ast.Ident(var), bound),
            ast.Unary("++", ast.Ident(var)),
            ast.Block(body),
        )
        return ast.Block([ast.DeclStmt([decl]), loop])

    @staticmethod
    def _copy_lvalue(red: ReductionInfo, evar, copy: ast.Expr,
                     elem: Optional[ast.Expr] = None) -> ast.Expr:
        """Address copy ``copy`` (element ``elem`` for arrays) of an
        expanded accumulator, matching the layout the expansion stage
        chose for it."""
        base = ast.Ident(evar.decl.name)
        if not red.is_array:
            return ast.Index(base, copy)  # VLA and heapified scalars alike
        if evar.mode == ex.MODE_VLA:
            return ast.Index(ast.Index(base, copy), elem)
        if evar.layout == ex.INTERLEAVED:
            return ast.Index(base, ast.Binary(
                "+", ast.Binary("*", elem, ast.Ident(ex.NTHREADS)), copy
            ))
        return ast.Index(base, ast.Binary(
            "+", ast.Binary("*", copy, ast.IntLit(evar.copy_elems)), elem
        ))

    def _copies_loop(self, pairs, merge: bool) -> ast.Block:
        """One pass over copies 1..N-1 doing identity-init (before the
        loop) or merge-back into copy 0 (after it) for every proven
        accumulator of the loop."""
        cvar = self._fresh_cm()
        body: List[ast.Stmt] = []
        for red, evar in pairs:
            if red.is_array:
                ivar = self._fresh_cm()
                inner = self._elem_stmt(red, evar, cvar, ivar, merge)
                body.append(self._count_loop(
                    ivar, 0, ast.IntLit(red.length), [inner]
                ))
            else:
                body.append(self._elem_stmt(red, evar, cvar, None, merge))
        return self._count_loop(cvar, 1, ast.Ident(ex.NTHREADS), body)

    def _elem_stmt(self, red: ReductionInfo, evar, cvar: str,
                   ivar: Optional[str], merge: bool) -> ast.Stmt:
        def lv(copy: ast.Expr) -> ast.Expr:
            elem = ast.Ident(ivar) if ivar is not None else None
            return self._copy_lvalue(red, evar, copy, elem)

        if not merge:
            return ast.ExprStmt(ast.Assign(
                "=", lv(ast.Ident(cvar)), ast.IntLit(red.identity)
            ))
        if red.group in ("min", "max"):
            rel = "<" if red.group == "min" else ">"
            cond = ast.Binary(rel, lv(ast.Ident(cvar)), lv(ast.IntLit(0)))
            assign = ast.ExprStmt(ast.Assign(
                "=", lv(ast.IntLit(0)), lv(ast.Ident(cvar))
            ))
            return ast.If(cond, ast.Block([assign]))
        op = GROUP_MERGE_OPS[red.group]
        return ast.ExprStmt(ast.Assign(
            op, lv(ast.IntLit(0)), lv(ast.Ident(cvar))
        ))


def expand_for_threads(
    program: ast.Program,
    sema: SemaResult,
    loop_labels: List[str],
    optimize=True,
    expansion_source: str = "static",
    entry: str = "main",
    profiles: Optional[Dict[str, LoopProfile]] = None,
    layout: str = "bonded",
    strict: bool = True,
    sink: Optional[DiagnosticSink] = None,
    tracer=None,
    commutative: bool = True,
) -> TransformResult:
    """Transform ``program`` so the labeled loops can run multithreaded.

    ``optimize`` toggles the §3.4 optimizations (selective promotion,
    trivial-span elimination, constant spans); ``False`` reproduces the
    paper's un-optimized configuration from Figure 9a.

    ``expansion_source`` picks how the expansion set is derived:
    ``"static"`` uses the Andersen points-to analysis (the paper's
    approach), ``"profile"`` uses the objects dynamically observed at
    private accesses.

    ``optimize`` also accepts an :class:`OptFlags` for per-optimization
    ablation.  ``layout`` selects bonded (default) or interleaved copy
    placement (Figure 2); interleaved refuses heap-allocated expansion
    targets, reproducing the paper's recasting argument.

    ``strict=False`` turns on graceful degradation: a stage failure on
    one labeled loop quarantines *that loop* (it stays sequential, or
    falls back to runtime privatization when its profile survived) with
    a structured diagnostic in ``result.diagnostics``, while the
    remaining loops still transform.  ``sink`` collects diagnostics
    across calls when provided.

    ``tracer`` (a :class:`repro.obs.Tracer`) records per-stage phase
    spans and the transform metrics; omit it for zero-overhead
    operation.

    ``commutative`` enables the static commutativity prover
    (:mod:`repro.analysis.commutative`): loop-carried reductions whose
    updates are provably commutative are upgraded to the commutative
    access class, expanded per worker, and merged back at loop exit,
    with a parallelism certificate on each
    :class:`TransformedLoop`.
    """
    pipeline = ExpansionPipeline(
        program, sema, loop_labels, optimize=optimize,
        expansion_source=expansion_source, entry=entry, profiles=profiles,
        layout=layout, strict=strict, sink=sink, tracer=tracer,
        commutative=commutative,
    )
    return pipeline.run()


def record_transform_metrics(result: TransformResult, tracer) -> None:
    """Publish the transform counters the paper reports (§3.4
    effectiveness, Table 5) into the tracer's metrics registry.

    A module-level function (not just a pipeline method) so a cached
    :class:`TransformResult` served without re-running the pipeline
    still populates the same metrics."""
    if not tracer:
        return
    metrics = tracer.metrics
    stats = result.redirect_stats
    if stats is not None:
        metrics.set("transform.redirected_accesses", stats.redirected)
        metrics.set("transform.constant_span_redirects",
                    stats.constant_span)
        metrics.set("transform.dynamic_span_redirects",
                    stats.dynamic_span)
        metrics.set("transform.hoisted_redirects", stats.hoisted)
    promoter = result.promoter
    if promoter is not None:
        metrics.set("transform.fat_pointer_types",
                    promoter.num_fat_types)
        metrics.set("transform.span_stores_inserted",
                    promoter.span_stores_inserted)
        metrics.set("transform.span_stores_eliminated",
                    promoter.span_stores_eliminated)
    metrics.set("transform.span_stores_dead_eliminated",
                result.span_stores_dead_eliminated)
    metrics.set("transform.structures_expanded",
                result.expansion.num_expanded)
    metrics.set("transform.scalars_expanded",
                result.expansion.num_scalars)
    metrics.set("transform.expansion_bytes_per_thread", sum(
        ev.orig_type.size or 0
        for ev in result.expansion.expanded_vars.values()
    ))
    metrics.set("transform.private_sites", len(result.private_sites))
    metrics.set("transform.quarantined_loops", len(result.quarantined))
    metrics.set("transform.commutative_sites",
                len(getattr(result, "commutative_sites", ()) or ()))
    metrics.set("transform.commutative_classes", sum(
        len(tl.priv.commutative_classes())
        for tl in result.loops
        if hasattr(tl.priv, "commutative_classes")
    ))
    metrics.set("transform.reduction_merges",
                getattr(result, "reduction_merges", 0))
