"""The paper's contribution: general data structure expansion."""

from .expand import ExpandedVar, ExpansionResult, INIT_FN_NAME
from .expand import ADAPTIVE, BONDED, INTERLEAVED
from .pipeline import (
    DOALL, DOACROSS, ExpansionPipeline, OptFlags, QuarantinedLoop,
    TransformResult, TransformedLoop, expand_for_threads, parse_loop_kind,
)
from .promote import (
    PTR_FIELD, PromotionPlan, SPAN_FIELD, TransformError, TypePromoter,
    promote_program,
)
from .redirect import RedirectStats, redirect_private_derefs
from .validate import validate_transform
from .rewrite import clone_program, origin_of

__all__ = [
    "expand_for_threads", "ExpansionPipeline", "TransformResult",
    "TransformedLoop", "DOALL", "DOACROSS", "parse_loop_kind",
    "QuarantinedLoop",
    "OptFlags", "BONDED", "INTERLEAVED", "ADAPTIVE",
    "PromotionPlan", "TypePromoter", "promote_program", "TransformError",
    "PTR_FIELD", "SPAN_FIELD",
    "ExpansionResult", "ExpandedVar", "INIT_FN_NAME",
    "RedirectStats", "redirect_private_derefs", "validate_transform",
    "clone_program", "origin_of",
]
