"""Post-transform invariant validation.

The pipeline's output is executable, so most bugs surface as wrong
output or race reports — but some classes of miscompilation could hide
behind lucky data (an unexpanded allocation only races under specific
interleavings; a missing span statement only matters when sizes
differ).  ``validate_transform`` checks structural invariants directly
on the transformed AST and returns a list of human-readable violations
(empty = clean).  The test suite runs it on every benchmark kernel and
the pipeline can be asked to run it eagerly (``validate=True``).

Checked invariants:

1. every expansion-set heap allocation's size argument multiplies by
   ``__nthreads``;
2. every fat struct has exactly the ``pointer``/``span`` field pair
   with a pointer/long layout (Figure 4);
3. every candidate loop survived the rewrite and kept its pragma;
4. expanded VLA locals declare a ``__nthreads`` length;
5. converted globals are allocated in ``__expand_init``, which is the
   first statement of ``main``;
6. the transformed program re-analyzes cleanly (names resolve, types
   check) — guaranteed if the pipeline's final ``analyze`` ran, but
   re-checked here so hand-modified results are also validated.
"""

from __future__ import annotations

from typing import List

from ..frontend import ast
from ..frontend.ctypes import ArrayType, LONG, PointerType, StructType
from ..frontend.sema import SemaError, analyze
from .expand import INIT_FN_NAME, MODE_HEAP, MODE_VLA, NTHREADS
from .promote import PTR_FIELD, SPAN_FIELD


def validate_transform(result) -> List[str]:
    """Check a :class:`TransformResult`; returns violation strings."""
    problems: List[str] = []
    program = result.program
    if program is None:
        return ["transform produced no program"]

    _check_expanded_allocations(result, program, problems)
    _check_fat_structs(result, problems)
    _check_candidate_loops(result, problems)
    _check_expanded_vars(result, problems)
    _check_init_function(result, program, problems)
    _check_reanalysis(program, problems)
    return problems


def _contains_nthreads(expr: ast.Expr) -> bool:
    return any(
        isinstance(n, ast.Ident) and n.name == NTHREADS
        for n in expr.walk()
    )


def _check_expanded_allocations(result, program, problems) -> None:
    from .expand import _ALLOC_SIZE_ARG
    from .rewrite import origin_of

    expanded = result.expansion.expanded_alloc_origins
    found = set()
    for fn in program.functions():
        for node in fn.body.walk():
            if not isinstance(node, ast.Call):
                continue
            name = node.callee_name
            if name not in _ALLOC_SIZE_ARG:
                continue
            if origin_of(node) in expanded:
                found.add(origin_of(node))
                arg = node.args[_ALLOC_SIZE_ARG[name]]
                if not _contains_nthreads(arg):
                    problems.append(
                        f"expanded allocation at L{node.loc[0]} does not "
                        f"multiply its size by {NTHREADS}"
                    )
    missing = expanded - found
    if missing:
        problems.append(
            f"{len(missing)} expanded allocation site(s) vanished from "
            f"the transformed program"
        )


def _check_fat_structs(result, problems) -> None:
    promoter = result.promoter
    if promoter is None:
        return
    for fat in promoter.fat_structs():
        names = [f.name for f in fat.fields]
        if names != [PTR_FIELD, SPAN_FIELD]:
            problems.append(
                f"fat struct {fat.name} has fields {names}, expected "
                f"[{PTR_FIELD!r}, {SPAN_FIELD!r}]"
            )
            continue
        if not isinstance(fat.field(PTR_FIELD).type, PointerType):
            problems.append(
                f"fat struct {fat.name}.{PTR_FIELD} is not a pointer"
            )
        if fat.field(SPAN_FIELD).type != LONG:
            problems.append(
                f"fat struct {fat.name}.{SPAN_FIELD} is not long"
            )
        if fat.size != 16:
            problems.append(
                f"fat struct {fat.name} has size {fat.size}, expected 16"
            )


def _check_candidate_loops(result, problems) -> None:
    for tl in result.loops:
        loop = tl.loop
        if not isinstance(loop, ast.LoopStmt):
            problems.append(f"candidate loop {loop!r} is not a loop")
            continue
        if not loop.pragmas:
            problems.append(
                f"candidate loop {loop.label!r} lost its pragma"
            )
        if tl.kind not in ("doall", "doacross"):
            problems.append(
                f"candidate loop {loop.label!r} has kind {tl.kind!r}"
            )


def _check_expanded_vars(result, problems) -> None:
    for evar in result.expansion.expanded_vars.values():
        decl = evar.decl
        if evar.mode == MODE_VLA:
            if not isinstance(decl.ctype, ArrayType) or \
                    decl.ctype.length is not None:
                problems.append(
                    f"VLA-expanded {decl.name!r} has type "
                    f"{decl.ctype!r}, expected an unsized array"
                )
            elif decl.vla_length is None or \
                    not _contains_nthreads(decl.vla_length):
                problems.append(
                    f"VLA-expanded {decl.name!r} lacks a {NTHREADS} "
                    f"length"
                )
        elif evar.mode == MODE_HEAP:
            if not isinstance(decl.ctype, PointerType):
                problems.append(
                    f"heap-expanded {decl.name!r} has type "
                    f"{decl.ctype!r}, expected a pointer"
                )


def _check_init_function(result, program, problems) -> None:
    has_heapified_global = any(
        evar.mode == MODE_HEAP and evar.decl.storage == "global"
        for evar in result.expansion.expanded_vars.values()
    )
    if not has_heapified_global:
        return
    try:
        init_fn = program.function(INIT_FN_NAME)
    except KeyError:
        problems.append(
            f"globals were heapified but {INIT_FN_NAME} is missing"
        )
        return
    try:
        main = program.function("main")
    except KeyError:
        problems.append("program has no main")
        return
    first = main.body.stmts[0] if main.body.stmts else None
    is_init_call = (
        isinstance(first, ast.ExprStmt)
        and isinstance(first.expr, ast.Call)
        and first.expr.callee_name == INIT_FN_NAME
    )
    if not is_init_call:
        problems.append(
            f"main does not call {INIT_FN_NAME} as its first statement"
        )
    allocated = {
        stmt.expr.target.name
        for stmt in init_fn.body.stmts
        if isinstance(stmt, ast.ExprStmt)
        and isinstance(stmt.expr, ast.Assign)
        and isinstance(stmt.expr.target, ast.Ident)
        and isinstance(stmt.expr.value, ast.Call)
        and stmt.expr.value.callee_name == "malloc"
    }
    for evar in result.expansion.expanded_vars.values():
        if evar.mode == MODE_HEAP and evar.decl.storage == "global" and \
                evar.decl.name not in allocated:
            problems.append(
                f"heapified global {evar.decl.name!r} is never "
                f"allocated in {INIT_FN_NAME}"
            )


def _check_reanalysis(program, problems) -> None:
    try:
        analyze(program)
    except SemaError as exc:
        problems.append(f"transformed program fails re-analysis: {exc}")
