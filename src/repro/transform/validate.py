"""Post-transform invariant validation.

The pipeline's output is executable, so most bugs surface as wrong
output or race reports — but some classes of miscompilation could hide
behind lucky data (an unexpanded allocation only races under specific
interleavings; a missing span statement only matters when sizes
differ).  ``validate_transform`` checks structural invariants directly
on the transformed AST and returns a list of structured
:class:`~repro.diagnostics.Diagnostic`\\ s (empty = clean), each with a
stable ``VALID-*`` code, loop attribution when per-loop, and the source
location of the offending node.  Pass a
:class:`~repro.diagnostics.DiagnosticSink` to accumulate them alongside
the pipeline's own diagnostics.  The test suite runs the validator on
every benchmark kernel.

Checked invariants (code in parentheses):

1. every expansion-set heap allocation's size argument multiplies by
   ``__nthreads`` (``VALID-ALLOC-SCALE``) and no expanded allocation
   site vanished (``VALID-ALLOC-LOST``);
2. every fat struct has exactly the ``pointer``/``span`` field pair
   with a pointer/long layout — Figure 4 (``VALID-FAT-LAYOUT``);
3. every candidate loop survived the rewrite and kept its pragma
   (``VALID-LOOP-SHAPE``, ``VALID-LOOP-PRAGMA``, ``VALID-LOOP-KIND``);
4. expanded VLA locals declare a ``__nthreads`` length
   (``VALID-VLA-SHAPE``) and heapified variables became pointers
   (``VALID-HEAP-SHAPE``);
5. converted globals are allocated in ``__expand_init``, which is the
   first statement of ``main`` (``VALID-INIT-FN``);
6. the transformed program re-analyzes cleanly — names resolve, types
   check (``VALID-REANALYZE``); guaranteed if the pipeline's final
   ``analyze`` ran, but re-checked here so hand-modified results are
   also validated.
"""

from __future__ import annotations

from typing import List, Optional

from ..diagnostics import Diagnostic, DiagnosticSink, ERROR
from ..frontend import ast
from ..frontend.ctypes import ArrayType, LONG, PointerType
from ..frontend.sema import SemaError, analyze
from .expand import INIT_FN_NAME, MODE_HEAP, MODE_VLA, NTHREADS


class _Reporter:
    """Collects validator findings as diagnostics (and mirrors them
    into the caller's sink when one is given)."""

    def __init__(self, sink: Optional[DiagnosticSink]):
        self.sink = sink
        self.found: List[Diagnostic] = []

    def problem(self, code: str, message: str,
                node: Optional[ast.Node] = None,
                loop: Optional[str] = None, **data) -> Diagnostic:
        loc = getattr(node, "loc", None) if node is not None else None
        diag = Diagnostic(code, ERROR, message, loop=loop, loc=loc,
                          phase="validate", data=data or None)
        self.found.append(diag)
        if self.sink is not None:
            self.sink.emit(diag)
        return diag


def validate_transform(result,
                       sink: Optional[DiagnosticSink] = None
                       ) -> List[Diagnostic]:
    """Check a :class:`TransformResult`; returns violation diagnostics."""
    rep = _Reporter(sink)
    program = result.program
    if program is None:
        rep.problem("VALID-NO-PROGRAM", "transform produced no program")
        return rep.found

    _check_expanded_allocations(result, program, rep)
    _check_fat_structs(result, rep)
    _check_candidate_loops(result, rep)
    _check_expanded_vars(result, rep)
    _check_init_function(result, program, rep)
    _check_reanalysis(program, rep)
    return rep.found


def _contains_nthreads(expr: ast.Expr) -> bool:
    return any(
        isinstance(n, ast.Ident) and n.name == NTHREADS
        for n in expr.walk()
    )


def _check_expanded_allocations(result, program, rep: _Reporter) -> None:
    from .expand import _ALLOC_SIZE_ARG
    from .rewrite import origin_of

    expanded = result.expansion.expanded_alloc_origins
    found = set()
    for fn in program.functions():
        for node in fn.body.walk():
            if not isinstance(node, ast.Call):
                continue
            name = node.callee_name
            if name not in _ALLOC_SIZE_ARG:
                continue
            if origin_of(node) in expanded:
                found.add(origin_of(node))
                arg = node.args[_ALLOC_SIZE_ARG[name]]
                if not _contains_nthreads(arg):
                    rep.problem(
                        "VALID-ALLOC-SCALE",
                        f"expanded allocation at L{node.loc[0]} does not "
                        f"multiply its size by {NTHREADS}",
                        node=node,
                    )
    missing = expanded - found
    if missing:
        rep.problem(
            "VALID-ALLOC-LOST",
            f"{len(missing)} expanded allocation site(s) vanished from "
            "the transformed program",
            count=len(missing),
        )


def _check_fat_structs(result, rep: _Reporter) -> None:
    from .promote import PTR_FIELD, SPAN_FIELD

    promoter = result.promoter
    if promoter is None:
        return
    for fat in promoter.fat_structs():
        names = [f.name for f in fat.fields]
        if names != [PTR_FIELD, SPAN_FIELD]:
            rep.problem(
                "VALID-FAT-LAYOUT",
                f"fat struct {fat.name} has fields {names}, expected "
                f"[{PTR_FIELD!r}, {SPAN_FIELD!r}]",
            )
            continue
        if not isinstance(fat.field(PTR_FIELD).type, PointerType):
            rep.problem(
                "VALID-FAT-LAYOUT",
                f"fat struct {fat.name}.{PTR_FIELD} is not a pointer",
            )
        if fat.field(SPAN_FIELD).type != LONG:
            rep.problem(
                "VALID-FAT-LAYOUT",
                f"fat struct {fat.name}.{SPAN_FIELD} is not long",
            )
        if fat.size != 16:
            rep.problem(
                "VALID-FAT-LAYOUT",
                f"fat struct {fat.name} has size {fat.size}, expected 16",
            )


def _check_candidate_loops(result, rep: _Reporter) -> None:
    for tl in result.loops:
        loop = tl.loop
        if not isinstance(loop, ast.LoopStmt):
            rep.problem(
                "VALID-LOOP-SHAPE",
                f"candidate loop {loop!r} is not a loop",
            )
            continue
        if not loop.pragmas:
            rep.problem(
                "VALID-LOOP-PRAGMA",
                f"candidate loop {loop.label!r} lost its pragma",
                node=loop, loop=loop.label,
            )
        if tl.kind not in ("doall", "doacross"):
            rep.problem(
                "VALID-LOOP-KIND",
                f"candidate loop {loop.label!r} has kind {tl.kind!r}",
                node=loop, loop=loop.label,
            )


def _check_expanded_vars(result, rep: _Reporter) -> None:
    for evar in result.expansion.expanded_vars.values():
        decl = evar.decl
        if evar.mode == MODE_VLA:
            if not isinstance(decl.ctype, ArrayType) or \
                    decl.ctype.length is not None:
                rep.problem(
                    "VALID-VLA-SHAPE",
                    f"VLA-expanded {decl.name!r} has type "
                    f"{decl.ctype!r}, expected an unsized array",
                    node=decl,
                )
            elif decl.vla_length is None or \
                    not _contains_nthreads(decl.vla_length):
                rep.problem(
                    "VALID-VLA-SHAPE",
                    f"VLA-expanded {decl.name!r} lacks a {NTHREADS} "
                    "length",
                    node=decl,
                )
        elif evar.mode == MODE_HEAP:
            if not isinstance(decl.ctype, PointerType):
                rep.problem(
                    "VALID-HEAP-SHAPE",
                    f"heap-expanded {decl.name!r} has type "
                    f"{decl.ctype!r}, expected a pointer",
                    node=decl,
                )


def _check_init_function(result, program, rep: _Reporter) -> None:
    has_heapified_global = any(
        evar.mode == MODE_HEAP and evar.decl.storage == "global"
        for evar in result.expansion.expanded_vars.values()
    )
    if not has_heapified_global:
        return
    try:
        init_fn = program.function(INIT_FN_NAME)
    except KeyError:
        rep.problem(
            "VALID-INIT-FN",
            f"globals were heapified but {INIT_FN_NAME} is missing",
        )
        return
    try:
        main = program.function("main")
    except KeyError:
        rep.problem("VALID-INIT-FN", "program has no main")
        return
    first = main.body.stmts[0] if main.body.stmts else None
    is_init_call = (
        isinstance(first, ast.ExprStmt)
        and isinstance(first.expr, ast.Call)
        and first.expr.callee_name == INIT_FN_NAME
    )
    if not is_init_call:
        rep.problem(
            "VALID-INIT-FN",
            f"main does not call {INIT_FN_NAME} as its first statement",
        )
    allocated = {
        stmt.expr.target.name
        for stmt in init_fn.body.stmts
        if isinstance(stmt, ast.ExprStmt)
        and isinstance(stmt.expr, ast.Assign)
        and isinstance(stmt.expr.target, ast.Ident)
        and isinstance(stmt.expr.value, ast.Call)
        and stmt.expr.value.callee_name == "malloc"
    }
    for evar in result.expansion.expanded_vars.values():
        if evar.mode == MODE_HEAP and evar.decl.storage == "global" and \
                evar.decl.name not in allocated:
            rep.problem(
                "VALID-INIT-FN",
                f"heapified global {evar.decl.name!r} is never "
                f"allocated in {INIT_FN_NAME}",
                node=evar.decl,
            )


def _check_reanalysis(program, rep: _Reporter) -> None:
    try:
        analyze(program)
    except SemaError as exc:
        rep.problem(
            "VALID-REANALYZE",
            f"transformed program fails re-analysis: {exc}",
        )
