"""Fat-pointer promotion and span computation (paper §3.3.1-3.3.2).

Bonded-mode redirection needs the *original* size of the structure a
pointer points into (the ``span``), which C cannot recover from a bare
pointer.  The paper therefore promotes each relevant pointer to::

    struct { T *pointer; long span; }

(Figures 5-6) and inserts a span-computing statement after every
assignment to a promoted pointer (Table 3).

**Which pointers get promoted** is the §3.4 "selective promotion"
optimization.  Promotion decisions must be *consistent*: if a pointer
value can flow between two slots, both must be promoted or neither,
otherwise a raw pointer would land in a fat slot with a garbage span.
We make decisions per *pointee-type group*:

* each struct type is its own group; all primitive/void pointees share
  one group (benchmarks recast buffers between primitive element sizes
  — 256.bzip2's ``zptr`` — so primitive pointee types must promote
  together);
* a pointer cast whose operand is not a direct allocation call merges
  the two groups (an allocation-site cast like ``(struct s*)malloc(n)``
  *types* a fresh object rather than aliasing two existing ones);
* a group is promoted iff it contains the pointee type of some object
  in the expansion set (selective mode), or unconditionally
  (``promote_all``, the paper's un-optimized configuration measured in
  Figure 9a).

Type-correct programs then satisfy consistency by construction: any
flow between differently-grouped pointee types must pass through a
cast, which merged the groups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..diagnostics import DiagnosableError
from ..frontend import ast
from ..frontend.ctypes import (
    ArrayType, CType, FloatType, FunctionType, IntType, LONG, PointerType,
    StructType, VoidType,
)
from ..frontend.sema import SemaResult
from ..analysis.pointsto import Obj, PointsToResult
from . import rewrite as rw
from .rewrite import Rewriter, inherit_origin

_ALLOC_FNS = ("malloc", "calloc", "realloc")

#: field names of the fat struct (Figure 4)
PTR_FIELD = "pointer"
SPAN_FIELD = "span"


class TransformError(DiagnosableError):
    """Raised when a program uses a construct outside the transform's
    supported subset (documented restrictions, not silent miscompiles)."""

    default_code = "XFORM-UNSUPPORTED"
    default_phase = "transform"


def _group_key(pointee: CType) -> str:
    """Pointee-type group for promotion decisions."""
    base = pointee
    while isinstance(base, ArrayType):
        base = base.elem
    if isinstance(base, StructType):
        return f"struct:{base.name}"
    return "prim"  # all primitive + void pointees promote together


class PromotionPlan:
    """Decides which pointer occurrences become fat pointers."""

    def __init__(self, promote_all: bool = False):
        self.promote_all = promote_all
        self._group_parent: Dict[str, str] = {}
        self._promoted_groups: Set[str] = set()

    # -- union-find over group keys --------------------------------------
    def _find(self, g: str) -> str:
        parent = self._group_parent
        root = g
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(g, g) != root:
            parent[g], g = root, parent[g]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._group_parent[rb] = ra

    def mark_promoted(self, pointee: CType) -> None:
        self._promoted_groups.add(self._find(_group_key(pointee)))

    def should_promote(self, pointee: CType) -> bool:
        if self.promote_all:
            return True
        return self._find(_group_key(pointee)) in self._promoted_groups

    # -- construction -----------------------------------------------------
    @classmethod
    def from_analysis(
        cls,
        program: ast.Program,
        sema: SemaResult,
        pointsto: PointsToResult,
        expansion_objs: Set[Obj],
        promote_all: bool = False,
    ) -> "PromotionPlan":
        """Build the plan: merge cast-connected groups, then promote
        groups containing expansion-set object types."""
        plan = cls(promote_all=promote_all)
        # 1. merge groups connected by non-allocation pointer casts
        for fn in program.functions():
            for node in fn.body.walk():
                if not isinstance(node, ast.Cast):
                    continue
                to_t = node.to_type
                from_t = node.expr.ctype.decay() if node.expr.ctype else None
                if not (isinstance(to_t, PointerType)
                        and isinstance(from_t, PointerType)):
                    continue
                if _is_alloc_call(node.expr):
                    continue
                if isinstance(to_t.pointee, VoidType) or \
                        isinstance(from_t.pointee, VoidType):
                    continue  # void* laundering handled by 'prim' membership
                plan._union(_group_key(to_t.pointee), _group_key(from_t.pointee))
        # 2. promote groups of expansion-set object types
        for obj in expansion_objs:
            for ctype in _object_types(obj, pointsto, program, sema):
                plan.mark_promoted(ctype)
        return plan


def _is_alloc_call(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Call) and expr.callee_name in _ALLOC_FNS


def _object_types(obj: Obj, pointsto: PointsToResult,
                  program: ast.Program, sema: SemaResult) -> List[CType]:
    """Static type(s) of an abstract object, best effort.

    Variable objects use their declared type; heap objects use the
    pointee types of casts/assignment targets at the allocation site
    (collected by :func:`heap_object_types`).
    """
    kinds = pointsto.object_types.get(obj)
    out: List[CType] = []
    if kinds:
        for t in kinds:
            base = t
            while isinstance(base, ArrayType):
                base = base.elem
            out.append(base)
    return out


def heap_object_types(program: ast.Program) -> Dict[int, Set[CType]]:
    """Map each allocation-call nid to the pointee types it is cast to
    or assigned into (``(struct s*) malloc(...)``, ``int *p = malloc``)."""
    out: Dict[int, Set[CType]] = {}

    def note(call: ast.Expr, ctype: Optional[CType]) -> None:
        if _is_alloc_call(call) and isinstance(ctype, PointerType):
            out.setdefault(call.nid, set()).add(ctype.pointee)

    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, ast.Cast):
                note(node.expr, node.to_type)
            elif isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Cast):
                    value = value.expr
                note(value, node.target.ctype)
            elif isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    init = decl.init
                    if isinstance(init, ast.Cast):
                        init = init.expr
                    if isinstance(init, ast.Expr):
                        note(init, decl.ctype)
    return out


class TypePromoter:
    """Memoized type rewriting per Figure 6's ``promote()``."""

    def __init__(self, plan: PromotionPlan):
        self.plan = plan
        self._memo: Dict[CType, CType] = {}
        self._fat_registry: Dict[CType, StructType] = {}
        self._fat_names: Set[str] = set()
        self._counter = 0
        #: span stores emitted into the program (Table 3 rows)
        self.span_stores_inserted = 0
        #: trivial span stores the §3.4 optimization proved dead and
        #: dropped (``keep_trivial_spans`` retains them instead)
        self.span_stores_eliminated = 0

    @property
    def num_fat_types(self) -> int:
        """Distinct pointer types promoted to fat pointers."""
        return len(self._fat_registry)

    # -- queries -------------------------------------------------------------
    def is_fat(self, ctype: CType) -> bool:
        return isinstance(ctype, StructType) and ctype.name in self._fat_names

    def fat_structs(self) -> List[StructType]:
        return list(self._fat_registry.values())

    def fat_for_pointer(self, ptr: PointerType) -> StructType:
        """The fat struct replacing (an already-promoted-pointee) ``ptr``."""
        existing = self._fat_registry.get(ptr)
        if existing is None:
            self._counter += 1
            name = f"__fat{self._counter}"
            fat = StructType(name)
            self._fat_registry[ptr] = fat
            self._fat_names.add(name)
            fat.define([(PTR_FIELD, ptr), (SPAN_FIELD, LONG)])
        return self._fat_registry[ptr]

    # -- promotion ------------------------------------------------------------
    def promote(self, ctype: CType) -> CType:
        memo = self._memo.get(ctype)
        if memo is not None:
            return memo
        out = self._promote_inner(ctype)
        self._memo[ctype] = out
        return out

    def _promote_inner(self, ctype: CType) -> CType:
        if isinstance(ctype, (IntType, FloatType, VoidType)):
            return ctype
        if isinstance(ctype, PointerType):
            inner = PointerType(self.promote(ctype.pointee))
            if self.plan.should_promote(ctype.pointee):
                return self.fat_for_pointer(inner)
            return inner
        if isinstance(ctype, ArrayType):
            return ArrayType(self.promote(ctype.elem), ctype.length)
        if isinstance(ctype, StructType):
            if self.is_fat(ctype):
                return ctype
            rebuilt = StructType(ctype.name)
            self._memo[ctype] = rebuilt  # pre-memo for recursive structs
            rebuilt.define(
                [(f.name, self.promote(f.type)) for f in ctype.fields]
            )
            # identical layout -> reuse the original type object so that
            # un-promoted structs stay shared across the program
            if all(
                f.type == g.type and f.offset == g.offset
                for f, g in zip(ctype.fields, rebuilt.fields)
            ):
                self._memo[ctype] = ctype
                return ctype
            return rebuilt
        if isinstance(ctype, FunctionType):
            return FunctionType(
                self.promote(ctype.ret),
                [self.promote(p) for p in ctype.params],
                ctype.varargs,
            )
        return ctype  # pragma: no cover

    def pointer_needs_promotion(self, ctype: Optional[CType]) -> bool:
        """Was (the original) ``ctype`` a *pointer* this plan promotes?
        Arrays are never fat themselves (they decay to the shared base
        address); only genuine pointer slots carry spans."""
        return isinstance(ctype, PointerType) and \
            self.plan.should_promote(ctype.pointee)


def _otype(expr: ast.Expr) -> Optional[CType]:
    """The expression's type in the *original* program (stashed when a
    rewrite replaced the node, else the stale sema annotation)."""
    return getattr(expr, "_orig_type", None) or expr.ctype


def _is_fat_expr(expr: ast.Expr) -> bool:
    return getattr(expr, "_fat", False)


class _PromoteExprs(Rewriter):
    """Figure 5's Ref/Deref adjustment + Table 3 span insertion.

    Bottom-up: children are rewritten first; a child whose original
    type was a promoted pointer is now *fat* (flagged ``_fat``), and
    each consumer context that needs a raw pointer projects
    ``.pointer``.  Assignments into fat slots become a pointer-field
    assignment plus a span-computing statement (or a whole-struct copy
    when the source is itself fat, which transfers the span for free).

    ``keep_trivial_spans`` reproduces the paper's un-optimized mode:
    even no-op updates like ``p.span = p.span`` after ``p = p + 1`` are
    emitted (exactly the dead stores §3.4 eliminates).
    """

    def __init__(self, promoter: TypePromoter, sema: SemaResult,
                 keep_trivial_spans: bool):
        self.promoter = promoter
        self.sema = sema
        self.keep_trivial_spans = keep_trivial_spans

    # -- helpers ---------------------------------------------------------
    def _mark_fat(self, expr: ast.Expr, orig_type: Optional[CType]) -> ast.Expr:
        expr._orig_type = orig_type
        expr._fat = True
        return expr

    def _proj(self, expr: ast.Expr) -> ast.Expr:
        """Project a fat expression to its raw pointer field."""
        if not _is_fat_expr(expr):
            return expr
        node = rw.member(expr, PTR_FIELD, like=expr)
        node._orig_type = _otype(expr)
        return node

    def _span_of(self, fat_lvalue: ast.Expr) -> ast.Expr:
        return rw.member(rw.clone_expr(fat_lvalue), SPAN_FIELD, like=fat_lvalue)

    # -- expressions ----------------------------------------------------------
    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, ast.VarDecl) and \
                    self.promoter.pointer_needs_promotion(expr.decl.ctype):
                return self._mark_fat(expr, expr.ctype)
            return expr
        if isinstance(expr, ast.Member):
            expr.base = self._adjust_member_base(expr)
            if self.promoter.pointer_needs_promotion(expr.ctype):
                return self._mark_fat(expr, expr.ctype)
            return expr
        if isinstance(expr, ast.Index):
            expr.base = self._proj(expr.base)
            if self.promoter.pointer_needs_promotion(expr.ctype):
                return self._mark_fat(expr, expr.ctype)
            return expr
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            expr.left = self._proj(expr.left)
            expr.right = self._proj(expr.right)
            return expr
        if isinstance(expr, ast.Assign):
            return expr  # handled at statement level; checked there
        if isinstance(expr, ast.Cond):
            expr.cond = self._proj(expr.cond)
            if _is_fat_expr(expr.then) and _is_fat_expr(expr.els):
                return self._mark_fat(expr, _otype(expr.then))
            expr.then = self._proj(expr.then)
            expr.els = self._proj(expr.els)
            return expr
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Cast):
            expr.expr = self._proj(expr.expr)
            expr.to_type = self.promoter.promote(expr.to_type)
            if self.promoter.is_fat(expr.to_type):
                # (T*)e with T* promoted: produce the raw pointer; the
                # enclosing assignment pairs it with a span statement.
                expr.to_type = expr.to_type.field(PTR_FIELD).type
            return expr
        if isinstance(expr, ast.SizeofType):
            expr.of_type = self.promoter.promote(expr.of_type)
            return expr
        if isinstance(expr, ast.Comma):
            expr.left = self._proj(expr.left)
            if _is_fat_expr(expr.right):
                return self._mark_fat(expr, _otype(expr.right))
            return expr
        return expr

    def _adjust_member_base(self, expr: ast.Member) -> ast.Expr:
        if expr.arrow:
            return self._proj(expr.base)
        return expr.base

    def _unary(self, expr: ast.Unary) -> ast.Expr:
        op = expr.op
        if op == "*":
            expr.operand = self._proj(expr.operand)
            if self.promoter.pointer_needs_promotion(expr.ctype):
                return self._mark_fat(expr, expr.ctype)
            return expr
        if op == "&":
            if _is_fat_expr(expr.operand):
                raise TransformError(
                    "taking the address of a promoted pointer (&p) is "
                    "outside the supported subset"
                )
            return expr
        if op in ("++", "--", "p++", "p--"):
            if _is_fat_expr(expr.operand):
                orig = _otype(expr.operand)
                expr.operand = self._proj(expr.operand)
                expr._bumped_fat = True  # statement level may add span noop
                expr._orig_type = orig
            return expr
        expr.operand = self._proj(expr.operand)
        return expr

    def _call(self, expr: ast.Call) -> ast.Expr:
        name = expr.callee_name
        fn = self.sema.functions.get(name) if name else None
        if fn is None:
            # builtin: every pointer argument is raw
            expr.args = [self._proj(a) for a in expr.args]
            return expr
        new_args: List[ast.Expr] = []
        for arg, param in zip(expr.args, fn.params):
            if self.promoter.pointer_needs_promotion(param.ctype):
                if _is_fat_expr(arg):
                    new_args.append(arg)
                elif _is_null_literal(arg):
                    raise TransformError(
                        "passing a null/raw pointer literal to promoted "
                        f"parameter {param.name!r} of {fn.name}: assign it "
                        "to a pointer variable first"
                    )
                else:
                    raise TransformError(
                        f"argument to promoted parameter {param.name!r} of "
                        f"{fn.name} must be a promoted pointer lvalue"
                    )
            else:
                new_args.append(self._proj(arg))
        expr.args = new_args
        if self.promoter.pointer_needs_promotion(fn.ret_type):
            return self._mark_fat(expr, expr.ctype)
        return expr

    # -- statements ---------------------------------------------------------
    def rewrite_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.ExprStmt):
            return self._expr_stmt(stmt)
        if isinstance(stmt, ast.DeclStmt):
            return self._decl_stmt(stmt)
        if isinstance(stmt, ast.If):
            stmt.cond = self._proj(stmt.cond)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            stmt.cond = self._proj(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.cond is not None:
                stmt.cond = self._proj(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._finish_naked_expr(stmt.step)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None and _is_fat_expr(stmt.expr):
                pass  # returning a fat pointer: struct-by-value carries span
        self._assert_no_unhandled_assign(stmt)
        return stmt

    def _expr_stmt(self, stmt: ast.ExprStmt):
        expr = stmt.expr
        if isinstance(expr, ast.Assign):
            return self._assignment(stmt, expr)
        stmt.expr = self._finish_naked_expr(expr)
        return stmt

    def _finish_naked_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Assign):
            if self._target_promoted(expr):
                raise TransformError(
                    "assignment to a promoted pointer must be a standalone "
                    "statement"
                )
            return expr
        return self._proj(expr) if _is_fat_expr(expr) else expr

    def _target_promoted(self, assign: ast.Assign) -> bool:
        return _is_fat_expr(assign.target)

    def _assignment(self, stmt: ast.ExprStmt, expr: ast.Assign):
        target = expr.target
        if not _is_fat_expr(target):
            expr.value = self._proj(expr.value)
            return stmt
        # assignment into a promoted pointer slot
        if expr.op != "=":
            # p += i / p -= i: pointer arithmetic; span unchanged
            expr.target = self._proj(target)
            expr.value = self._proj(expr.value)
            out = [stmt]
            if self.keep_trivial_spans:
                span_lv = self._span_of(target)
                out.append(rw.expr_stmt(
                    rw.assign(span_lv, rw.clone_expr(span_lv), like=expr),
                    like=stmt,
                ))
                self.promoter.span_stores_inserted += 1
            else:
                self.promoter.span_stores_eliminated += 1
            return out
        value = expr.value
        if _is_fat_expr(value):
            # whole-struct copy: pointer + span move together (Table 3's
            # "Pointer assignment" realized as one fat copy)
            return stmt
        span_value = self._span_value(value)
        expr.target = self._proj(target)
        expr.value = self._proj(value)
        span_stmt = rw.expr_stmt(
            rw.assign(self._span_of(target), span_value, like=expr),
            like=stmt,
        )
        if not self.keep_trivial_spans and self._is_self_span(target, span_value):
            self.promoter.span_stores_eliminated += 1
            return stmt
        self.promoter.span_stores_inserted += 1
        return [stmt, span_stmt]

    def _decl_stmt(self, stmt: ast.DeclStmt):
        out: List[ast.Stmt] = [stmt]
        for decl in stmt.decls:
            if not self.promoter.pointer_needs_promotion(decl.ctype):
                continue
            init = decl.init
            if init is None:
                continue
            if isinstance(init, list):
                raise TransformError(
                    f"brace initializer on promoted pointer {decl.name!r}"
                )
            decl.init = None
            fat_lv = self._mark_fat(
                rw.ident(decl.name, like=decl), decl.ctype
            )
            assign_expr = ast.Assign("=", fat_lv, init)
            inherit_origin(assign_expr, decl)
            assign_stmt = rw.expr_stmt(assign_expr, like=stmt)
            result = self._assignment(assign_stmt, assign_expr)
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out if len(out) > 1 else stmt

    # -- span expressions (Table 3) -----------------------------------------
    def _span_value(self, value: ast.Expr) -> ast.Expr:
        """An expression computing the span of a raw pointer rvalue."""
        if isinstance(value, ast.Call):
            name = value.callee_name
            if name == "malloc":
                return rw.clone_expr(value.args[0])
            if name == "calloc":
                return rw.binary(
                    "*", rw.clone_expr(value.args[0]),
                    rw.clone_expr(value.args[1]), like=value,
                )
            if name == "realloc":
                return rw.clone_expr(value.args[1])
        if isinstance(value, ast.Unary) and value.op == "&":
            # strip to the root object: &s.f uses sizeof(s) (Address
            # taken 2: the whole structure), &a[i] uses sizeof(a) —
            # bonded-mode copies sit at whole-object stride
            operand = value.operand
            while True:
                if isinstance(operand, ast.Member) and not operand.arrow:
                    operand = operand.base
                elif isinstance(operand, ast.Index):
                    bt = _otype(operand.base)
                    if bt is not None and bt.is_array:
                        operand = operand.base
                    else:
                        break
                else:
                    break
            # root is a pointer dereference: the span travels with the
            # base fat pointer (&p->f, &p[i], &*p all alias p's object)
            if isinstance(operand, ast.Member) and operand.arrow and \
                    _is_fat_expr(operand.base):
                return rw.member(
                    rw.clone_expr(operand.base), SPAN_FIELD, like=value
                )
            if isinstance(operand, ast.Index) and \
                    isinstance(operand.base, ast.Member) and \
                    operand.base.name == PTR_FIELD and \
                    _is_fat_expr(operand.base.base):
                return rw.member(
                    rw.clone_expr(operand.base.base), SPAN_FIELD, like=value
                )
            ot = _otype(operand)
            if ot is None or ot.size is None:
                raise TransformError("cannot size &-taken object for span")
            return rw.sizeof_type(self.promoter.promote(ot), like=value)
        if isinstance(value, ast.Cast):
            return self._span_value(value.expr)
        if isinstance(value, ast.Member) and value.name == PTR_FIELD and \
                _is_fat_expr(value.base):
            # a projected fat pointer: span lives next to it
            return rw.member(
                rw.clone_expr(value.base), SPAN_FIELD, like=value
            )
        if isinstance(value, (ast.Ident, ast.Index)) and \
                isinstance(_otype(value), ArrayType):
            # array decay (p = a, p = a[i] for 2D rows): the span is the
            # size of the *root* array object — copies of the whole
            # structure sit at that stride
            root = value
            while isinstance(root, (ast.Index, ast.Member)) and \
                    not (isinstance(root, ast.Member) and root.arrow):
                root = root.base
            rt = _otype(root)
            if rt is None or rt.size is None:
                raise TransformError("cannot size decayed array for span")
            return rw.sizeof_type(self.promoter.promote(rt), like=value)
        if isinstance(value, ast.Binary) and value.op in ("+", "-"):
            lt = _otype(value.left)
            if lt is not None and lt.decay().is_pointer:
                return self._span_value(value.left)
            return self._span_value(value.right)
        if isinstance(value, ast.IntLit):
            return rw.intlit(0, like=value)  # NULL carries no span
        if isinstance(value, ast.Cond):
            return ast.Cond(
                rw.clone_expr(value.cond),
                self._span_value(value.then),
                self._span_value(value.els),
            )
        if isinstance(value, ast.Comma):
            return self._span_value(value.right)
        raise TransformError(
            f"cannot derive a span for pointer rvalue {value!r}; "
            "restructure the assignment"
        )

    @staticmethod
    def _is_self_span(target: ast.Expr, span_value: ast.Expr) -> bool:
        """Detect ``p.span = p.span`` no-ops (dead stores §3.4 removes)."""
        if not (isinstance(span_value, ast.Member)
                and span_value.name == SPAN_FIELD):
            return False
        return _lvalue_repr(span_value.base) == _lvalue_repr(target)

    def _assert_no_unhandled_assign(self, stmt: ast.Stmt) -> None:
        checks = []
        if isinstance(stmt, ast.If):
            checks.append(stmt.cond)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            checks.append(stmt.cond)
        elif isinstance(stmt, ast.For):
            checks.extend(x for x in (stmt.cond, stmt.step) if x is not None)
        elif isinstance(stmt, ast.Return) and stmt.expr is not None:
            checks.append(stmt.expr)
        for root in checks:
            for node in root.walk():
                if isinstance(node, ast.Assign) and _is_fat_expr(node.target):
                    raise TransformError(
                        "assignment to a promoted pointer nested in an "
                        "expression is outside the supported subset"
                    )


def _is_null_literal(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntLit) and expr.value == 0


def _lvalue_repr(expr: ast.Expr) -> Optional[str]:
    """Structural fingerprint of simple lvalues, for no-op detection."""
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Member):
        base = _lvalue_repr(expr.base)
        if base is None:
            return None
        sep = "->" if expr.arrow else "."
        return f"{base}{sep}{expr.name}"
    if isinstance(expr, ast.Index) and isinstance(expr.index, ast.IntLit):
        base = _lvalue_repr(expr.base)
        return None if base is None else f"{base}[{expr.index.value}]"
    return None


def promote_program(
    program: ast.Program,
    sema: SemaResult,
    plan: PromotionPlan,
    keep_trivial_spans: bool = False,
) -> TypePromoter:
    """Run pointer promotion over a (cloned) program in place.

    Rewrites expressions (Figure 5 Ref/Deref rules), inserts span
    statements (Table 3), then sweeps every declared type through
    ``promote()`` (Figure 5 Decl rules).  Returns the
    :class:`TypePromoter` so later stages can query fat types.  The
    caller must re-run semantic analysis afterwards.
    """
    promoter = TypePromoter(plan)
    _PromoteExprs(promoter, sema, keep_trivial_spans).run(program)

    # sweep declaration types (Decl Pointer/Array/Struct/Heap/Function)
    new_decls: List[ast.Node] = []
    emitted_fats: Set[str] = set()

    def emit_fat_decls() -> None:
        for fat in promoter.fat_structs():
            if fat.name not in emitted_fats:
                emitted_fats.add(fat.name)
                new_decls.append(ast.StructDecl(fat))

    for decl in program.decls:
        if isinstance(decl, ast.StructDecl):
            promoted = promoter.promote(decl.struct_type)
            emit_fat_decls()
            if isinstance(promoted, StructType):
                decl.struct_type = promoted
            new_decls.append(decl)
        elif isinstance(decl, ast.VarDecl):
            was_promoted_ptr = promoter.pointer_needs_promotion(decl.ctype)
            decl.ctype = promoter.promote(decl.ctype)
            if was_promoted_ptr and decl.init is not None:
                if isinstance(decl.init, ast.IntLit) and decl.init.value == 0:
                    decl.init = None  # fat struct zero-initializes
                else:
                    raise TransformError(
                        f"global promoted pointer {decl.name!r} has a "
                        "non-null initializer; move it to program startup"
                    )
            emit_fat_decls()
            new_decls.append(decl)
        elif isinstance(decl, ast.FunctionDef):
            decl.ret_type = promoter.promote(decl.ret_type)
            for param in decl.params:
                param.ctype = promoter.promote(param.ctype)
            if decl.body is not None:
                for node in decl.body.walk():
                    if isinstance(node, ast.DeclStmt):
                        for local in node.decls:
                            local.ctype = promoter.promote(local.ctype)
            emit_fat_decls()
            new_decls.append(decl)
        else:  # pragma: no cover
            new_decls.append(decl)
    emit_fat_decls()
    program.decls = new_decls
    return promoter
