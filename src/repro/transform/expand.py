"""Data structure expansion (paper Table 1) and named-variable
redirection (Table 2, rows 1-6).

Expansion makes ``N`` adjacent copies of every data structure in the
expansion set (bonded mode):

* **heap allocations** multiply their size by ``__nthreads``;
* **local variables** become variable-length arrays of ``__nthreads``
  copies (``int a`` → ``int a[N]``, ``int a[n]`` → ``int a[N][n]``,
  ``struct S s`` → ``struct S s[N]`` — Table 1's Local rows; the paper
  notes VLAs are exactly how stack expansion is realized);
* **global variables** are first converted to heap objects ("statically
  expanding global variables of a variable length is impossible because
  the global data section must have a fixed size") allocated in a
  generated ``__expand_init`` function, then expanded like heap
  objects.

Because converting a variable rewrites every reference to it anyway,
this stage *also* applies Table 2's redirection for those references: a
private access selects copy ``__tid``, a shared access copy 0.
(Redirection of pointer *dereferences* — Table 2's last row, which
needs spans — lives in :mod:`repro.transform.redirect`.)

Whether a reference is private is decided at its root ``Ident``: the
pipeline marks the full lvalue *spine* of every private access in
``redirect_origins``, so the root identifier of ``a[i][j]`` or ``s.f``
carries its access's classification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..frontend import ast
from ..frontend.ctypes import (
    ArrayType, CType, PointerType, StructType, VOID,
)
from . import rewrite as rw
from .promote import TransformError
from .rewrite import inherit_origin, origin_of

_ALLOC_SIZE_ARG = {"malloc": 0, "calloc": 1, "realloc": 1}

INIT_FN_NAME = "__expand_init"
NTHREADS = "__nthreads"
TID = "__tid"

MODE_HEAP = "heap"   # globals: converted to expanded heap objects
MODE_VLA = "vla"     # locals/params: expanded in place as VLAs

BONDED = "bonded"          # whole-structure replicas adjacent (Fig. 2a)
INTERLEAVED = "interleaved"  # per-element replicas adjacent (Fig. 2b)
ADAPTIVE = "adaptive"      # per-structure choice (the paper's future work)


class ExpandedVar:
    """Bookkeeping for one expanded variable."""

    def __init__(self, decl: ast.VarDecl, orig_type: CType, mode: str,
                 layout: str = BONDED):
        self.decl = decl
        self.orig_type = orig_type          # promoted type, pre-expansion
        self.mode = mode
        self.layout = layout
        if isinstance(orig_type, ArrayType):
            self.elem_type = orig_type.elem
            self.copy_elems = orig_type.length or 1
        else:
            self.elem_type = orig_type
            self.copy_elems = 1

    @property
    def is_array(self) -> bool:
        return isinstance(self.orig_type, ArrayType)


class ExpansionResult:
    def __init__(self):
        #: VarDecl (post-conversion) -> ExpandedVar
        self.expanded_vars: Dict[ast.VarDecl, ExpandedVar] = {}
        #: origins of allocation calls whose size was multiplied
        self.expanded_alloc_origins: Set[int] = set()
        #: distinct *data structures* expanded: aggregates + allocation
        #: sites (the paper's Table 5 counts structures; expanded
        #: scalars are ordinary scalar expansion and counted apart)
        self.num_expanded: int = 0
        #: scalars expanded (classic scalar expansion, Table 1 row 1)
        self.num_scalars: int = 0

    # kept name for external callers
    @property
    def heapified(self) -> Dict[ast.VarDecl, ExpandedVar]:
        return self.expanded_vars


def _tid() -> ast.Expr:
    return ast.Ident(TID)


def _nthreads() -> ast.Expr:
    return ast.Ident(NTHREADS)


def _copy_index(private: bool) -> ast.Expr:
    """Which copy an access selects: ``__tid`` if private, 0 if shared."""
    return _tid() if private else ast.IntLit(0)


class _RewriteRefs:
    """Top-down reference rewriter for expanded variables.

    Top-down (unlike the generic bottom-up Rewriter) because the parent
    decides how an expanded ``Ident`` is consumed: ``a[i]`` vs ``s.f``
    vs bare decay vs ``&a``.
    """

    def __init__(self, expanded: Dict[ast.VarDecl, ExpandedVar],
                 redirect_origins: Set[int]):
        self.expanded = expanded
        self.redirect_origins = redirect_origins

    def is_private(self, node: ast.Node) -> bool:
        return origin_of(node) in self.redirect_origins

    def _evar(self, expr: ast.Expr) -> Optional[ExpandedVar]:
        if isinstance(expr, ast.Ident) and isinstance(expr.decl, ast.VarDecl):
            return self.expanded.get(expr.decl)
        return None

    # -- program walk -----------------------------------------------------
    def run(self, program: ast.Program) -> None:
        for fn in program.functions():
            self._stmt(fn.body)
        for decl in program.decls:
            if isinstance(decl, ast.VarDecl) and isinstance(decl.init, ast.Expr):
                decl.init = self._expr(decl.init)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._stmt(s)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if isinstance(decl.init, ast.Expr):
                    decl.init = self._expr(decl.init)
                elif isinstance(decl.init, list):
                    decl.init = self._init_list(decl.init)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._expr(stmt.cond)
            self._stmt(stmt.then)
            if stmt.els is not None:
                self._stmt(stmt.els)
        elif isinstance(stmt, ast.While):
            stmt.cond = self._expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._stmt(stmt.body)
            stmt.cond = self._expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._expr(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._expr(stmt.step)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                stmt.expr = self._expr(stmt.expr)

    def _init_list(self, items):
        return [
            self._init_list(i) if isinstance(i, list) else self._expr(i)
            for i in items
        ]

    # -- expressions ----------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Index):
            evar = self._evar(expr.base)
            if evar is not None and evar.is_array and \
                    evar.layout == INTERLEAVED:
                return self._interleaved_index(expr, evar)
        evar = self._evar(expr)
        if evar is not None:
            return self._rewrite_ident(expr, evar)
        if isinstance(expr, ast.Unary) and expr.op == "&":
            rewritten = self._address_of(expr)
            if rewritten is not None:
                return rewritten
        if isinstance(expr, ast.SizeofExpr):
            evar = self._evar(expr.expr)
            if evar is not None:
                return inherit_origin(ast.SizeofType(evar.orig_type), expr)
        # generic recursion
        for name in expr._fields:
            value = getattr(expr, name)
            if isinstance(value, ast.Expr):
                setattr(expr, name, self._expr(value))
            elif isinstance(value, list):
                setattr(
                    expr, name,
                    [self._expr(v) if isinstance(v, ast.Expr) else v
                     for v in value],
                )
        return expr

    def _interleaved_index(self, expr: ast.Index,
                           evar: ExpandedVar) -> ast.Expr:
        """Figure 2(b): element i's N copies sit adjacently, so
        ``a[i]`` becomes ``a[i*N + copy]`` (the decl was converted to a
        flat heap chunk of n*N elements)."""
        if isinstance(evar.elem_type, ArrayType):
            raise TransformError(
                "interleaved layout does not support multi-dimensional "
                "arrays"
            )
        expr.index = self._expr(expr.index)
        private = self.is_private(expr)
        strided = rw.binary(
            "*", expr.index, ast.Ident(NTHREADS), like=expr
        )
        expr.index = rw.binary(
            "+", strided, _copy_index(private), like=expr
        )
        return expr

    def _rewrite_ident(self, expr: ast.Ident, evar: ExpandedVar) -> ast.Expr:
        if evar.layout == INTERLEAVED and evar.is_array:
            raise TransformError(
                f"interleaved layout: array {expr.name!r} used without a "
                "subscript (whole-copy operations need bonded mode)"
            )
        """The uniform Table 2 rewrite at the access's root identifier.

        VLA locals: ``x`` -> ``x[copy]`` (an lvalue of the original
        type; surrounding ``[i]``/``.f`` syntax keeps working).
        Heapified globals: ``x`` is now a pointer; scalar/struct uses
        become ``x[copy]``; array uses index copy 0 at offset
        ``copy*len`` via the same subscript (``x[copy*len]`` decays to
        the copy's base for bare uses).
        """
        private = self.is_private(expr)
        if evar.mode == MODE_VLA:
            return rw.index(expr, _copy_index(private), like=expr)
        # MODE_HEAP: decl is now a pointer to elem_type.  Tag the
        # rewritten form so the optimizer can hoist the base address
        # computation out of loops (the global pointer is only written
        # by __expand_init, so it is loop-invariant everywhere else).
        if evar.is_array:
            if not private:
                expr._base_hoist = (expr.decl, "shared")
                expr._base_elem = evar.elem_type
                return expr  # copy 0 starts at the base pointer
            offset = rw.binary(
                "*", _tid(), ast.IntLit(evar.copy_elems), like=expr
            )
            out = rw.binary("+", expr, offset, like=expr)
            out._base_hoist = (expr.decl, "private")
            out._base_elem = evar.elem_type
            return out
        out = rw.index(expr, _copy_index(private), like=expr)
        out._base_hoist = (expr.decl, "private" if private else "shared")
        out._base_elem = evar.elem_type
        return out

    def _address_of(self, expr: ast.Unary) -> Optional[ast.Expr]:
        """``&x`` on an expanded variable: address of the shared copy."""
        inner = expr.operand
        evar = self._evar(inner)
        if evar is None:
            return None
        if evar.mode == MODE_VLA:
            # &x -> &x[0]; for arrays, x[0] is the copy-0 row and & of
            # an array lvalue is its base address, so use plain x[0]
            zero = rw.index(
                ast.Ident(inner.name), ast.IntLit(0), like=expr
            )
            inherit_origin(zero.base, expr)
            if evar.is_array:
                return zero
            return rw.unary("&", zero, like=expr)
        # heapified: the pointer itself is the copy-0 address
        out = ast.Ident(inner.name)
        return inherit_origin(out, expr)


def _malloc_for(evar: ExpandedVar, like: ast.Node) -> ast.Expr:
    """``malloc(sizeof(T) * __nthreads)`` for a heapified variable."""
    size = rw.sizeof_type(evar.orig_type, like=like)
    total = rw.binary("*", size, _nthreads(), like=like)
    return rw.call("malloc", [total], like=like)


def _init_assignments(
    target: ast.Expr, ctype: CType, init, like: ast.Node
) -> List[ast.Stmt]:
    """Assignments storing an initializer into copy 0 of an expanded
    variable (only copy 0: private accesses are written-before-read by
    Definition 5, so the other copies never read initial values)."""
    out: List[ast.Stmt] = []
    if isinstance(init, list):
        if isinstance(ctype, ArrayType):
            for i, item in enumerate(init):
                elem_target = rw.index(
                    rw.clone_expr(target), ast.IntLit(i), like=like
                )
                out.extend(
                    _init_assignments(elem_target, ctype.elem, item, like)
                )
        elif isinstance(ctype, StructType):
            for item, field in zip(init, ctype.fields):
                field_target = rw.member(
                    rw.clone_expr(target), field.name, like=like
                )
                out.extend(
                    _init_assignments(field_target, field.type, item, like)
                )
        else:
            raise TransformError("brace initializer on scalar")
    else:
        out.append(rw.expr_stmt(rw.assign(target, init, like=like), like=like))
    return out


def _copy0_lvalue(decl: ast.VarDecl, evar: ExpandedVar,
                  like: ast.Node) -> ast.Expr:
    """An lvalue denoting copy 0 of an expanded variable."""
    base: ast.Expr = ast.Ident(decl.name)
    inherit_origin(base, like)
    return rw.index(base, ast.IntLit(0), like=like)


def heapify_globals(
    program: ast.Program,
    target_decls: List[ast.VarDecl],
    result: ExpansionResult,
    layout_for=None,
) -> None:
    """Convert expansion-set globals to expanded heap objects and build
    the ``__expand_init`` function allocating them (Table 1 Global
    rows)."""
    if not target_decls:
        return
    init_stmts: List[ast.Stmt] = []
    for decl in target_decls:
        layout = layout_for(decl) if layout_for else BONDED
        evar = ExpandedVar(decl, decl.ctype, MODE_HEAP, layout)
        result.expanded_vars[decl] = evar
        _count_var(evar, result)
        saved_init = decl.init
        decl.ctype = PointerType(evar.elem_type)
        decl.init = None
        target = ast.Ident(decl.name)
        inherit_origin(target, decl)
        init_stmts.append(
            rw.expr_stmt(
                rw.assign(target, _malloc_for(evar, decl), like=decl),
                like=decl,
            )
        )
        if saved_init is not None:
            if evar.is_array:
                base: ast.Expr = ast.Ident(decl.name)
                inherit_origin(base, decl)
                init_stmts.extend(
                    _init_assignments(base, evar.orig_type, saved_init, decl)
                )
            else:
                lv = _copy0_lvalue(decl, evar, decl)
                init_stmts.extend(
                    _init_assignments(lv, evar.orig_type, saved_init, decl)
                )
    init_fn = ast.FunctionDef(INIT_FN_NAME, VOID, [], ast.Block(init_stmts))
    init_fn.varargs = False
    program.decls.append(init_fn)
    main = program.function("main")
    main.body.stmts.insert(0, ast.ExprStmt(ast.Call(ast.Ident(INIT_FN_NAME), [])))


def vla_expand_locals(
    program: ast.Program,
    target_decls: List[ast.VarDecl],
    result: ExpansionResult,
    layout_for=None,
) -> None:
    """Expand expansion-set locals/params in place as variable-length
    arrays of ``__nthreads`` copies (Table 1 Local rows).  Interleaved
    layout keeps scalars/records as VLAs (a single element's copies are
    adjacent either way) but converts arrays to flat heap chunks with
    per-element interleaving."""
    targets = set(target_decls)
    if not targets:
        return
    for fn in program.functions():
        for param in [p for p in fn.params if p in targets]:
            _expand_param(fn, param, result)
        _expand_block(fn.body, targets, result, layout_for)


def _count_var(evar: ExpandedVar, result: ExpansionResult) -> None:
    elem = evar.elem_type
    # a promoted (fat) pointer variable is still a scalar pointer in the
    # source program; the structure it points at is counted at its
    # allocation site
    is_fat_handle = isinstance(elem, StructType) and \
        elem.name.startswith("__fat")
    if (evar.is_array or isinstance(elem, StructType)) and not is_fat_handle:
        result.num_expanded += 1
    else:
        result.num_scalars += 1


def _make_vla(decl: ast.VarDecl, result: ExpansionResult) -> ExpandedVar:
    evar = ExpandedVar(decl, decl.ctype, MODE_VLA)
    result.expanded_vars[decl] = evar
    _count_var(evar, result)
    decl.ctype = ArrayType(evar.orig_type, None)
    decl.vla_length = _nthreads()
    return evar


def _expand_param(fn: ast.FunctionDef, param: ast.VarDecl,
                  result: ExpansionResult) -> None:
    """Params are expanded via a shadowing VLA local seeded from the
    incoming value (copy 0 is the shared copy)."""
    original_name = param.name
    param.name = original_name + "__in"
    local = ast.VarDecl(original_name, param.ctype, None, "local")
    inherit_origin(local, param)
    evar = _make_vla(local, result)
    # references still link to the param decl; same expansion applies
    result.expanded_vars[param] = evar
    seed = rw.expr_stmt(
        rw.assign(
            rw.index(ast.Ident(original_name), ast.IntLit(0), like=param),
            ast.Ident(param.name),
            like=param,
        ),
        like=param,
    )
    fn.body.stmts[0:0] = [ast.DeclStmt([local]), seed]


def _expand_block(stmt: ast.Stmt, targets: Set[ast.VarDecl],
                  result: ExpansionResult, layout_for=None) -> None:
    if isinstance(stmt, ast.Block):
        new_stmts: List[ast.Stmt] = []
        for s in stmt.stmts:
            _expand_block(s, targets, result, layout_for)
            new_stmts.append(s)
            if isinstance(s, ast.DeclStmt):
                new_stmts.extend(
                    _expand_declstmt(s, targets, result, layout_for)
                )
        stmt.stmts = new_stmts
        return
    for child in list(stmt.children()):
        if isinstance(child, ast.Stmt):
            _expand_block(child, targets, result, layout_for)


def _make_interleaved_local(decl: ast.VarDecl,
                            result: ExpansionResult) -> ExpandedVar:
    """Interleaved arrays become flat heap chunks of n*N elements."""
    evar = ExpandedVar(decl, decl.ctype, MODE_HEAP, INTERLEAVED)
    result.expanded_vars[decl] = evar
    _count_var(evar, result)
    decl.ctype = PointerType(evar.elem_type)
    return evar


def _expand_declstmt(stmt: ast.DeclStmt, targets: Set[ast.VarDecl],
                     result: ExpansionResult,
                     layout_for=None) -> List[ast.Stmt]:
    extra: List[ast.Stmt] = []
    for decl in stmt.decls:
        if decl not in targets:
            continue
        saved_init = decl.init
        decl.init = None
        layout = layout_for(decl) if layout_for else BONDED
        if layout == INTERLEAVED and isinstance(decl.ctype, ArrayType):
            evar = _make_interleaved_local(decl, result)
            target = ast.Ident(decl.name)
            inherit_origin(target, decl)
            extra.append(
                rw.expr_stmt(
                    rw.assign(target, _malloc_for(evar, decl), like=decl),
                    like=decl,
                )
            )
            if saved_init is not None:
                raise TransformError(
                    "interleaved layout: initialized local arrays are "
                    "not supported"
                )
            continue
        evar = _make_vla(decl, result)
        if saved_init is not None:
            lv = _copy0_lvalue(decl, evar, decl)
            extra.extend(
                _init_assignments(lv, evar.orig_type, saved_init, decl)
            )
    return extra


def expand_allocations(
    program: ast.Program,
    alloc_origins: Set[int],
    result: ExpansionResult,
) -> None:
    """Multiply the size of expansion-set heap allocations by
    ``__nthreads`` (Table 1 Heap row).  Runs after span insertion, so
    spans keep the *original* size."""
    for fn in program.functions():
        for node in fn.body.walk():
            if not isinstance(node, ast.Call):
                continue
            name = node.callee_name
            if name not in _ALLOC_SIZE_ARG:
                continue
            if origin_of(node) not in alloc_origins:
                continue
            if origin_of(node) in result.expanded_alloc_origins:
                continue
            arg_i = _ALLOC_SIZE_ARG[name]
            node.args[arg_i] = rw.binary(
                "*", node.args[arg_i], _nthreads(), like=node
            )
            result.expanded_alloc_origins.add(origin_of(node))
            result.num_expanded += 1


def rewrite_expanded_references(
    program: ast.Program,
    result: ExpansionResult,
    redirect_origins: Set[int],
) -> None:
    """Apply Table 2 rows 1-6 to every reference of expanded vars."""
    _RewriteRefs(result.expanded_vars, redirect_origins).run(program)
