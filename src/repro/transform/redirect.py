"""Private pointer-dereference redirection (paper Table 2, last row).

A private access through a promoted pointer ``p`` is redirected to the
current thread's copy::

    *p        ->  *(p.pointer + __tid * p.span / sizeof(*p.pointer))
    p[k]      ->  p.pointer[k + __tid * p.span / sizeof(*p.pointer)]
    p->f      ->  (p.pointer + __tid * p.span / sizeof(*p.pointer))->f

This stage runs after promotion + heapification + re-analysis, so every
fat-pointer use already appears as a ``X.pointer`` projection with
fresh type annotations.  Redirection rewrites the *projection*, which
composes transparently with whatever address arithmetic surrounds it
(``*(p.pointer + 3)`` redirects to ``*(p.pointer + tid*span/s + 3)``)
and with chained dereferences (``head->next->key`` steps through each
node's own span).

The §3.4 constant-span optimization substitutes a compile-time constant
for ``p.span`` when every object the pointer may reference has the same
statically-known size — eliminating the span load, multiply and divide
that dominate redirection overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..frontend.ctypes import PointerType, VoidType
from .promote import PTR_FIELD, SPAN_FIELD, TypePromoter
from . import rewrite as rw
from .rewrite import origin_of

TID = "__tid"

#: builtins whose pointer arguments may be private accesses
_PTR_ARG_BUILTINS = {
    "memset": (0,),
    "memcpy": (0, 1),
    "memmove": (0, 1),
    "strlen": (0,),
}


class RedirectStats:
    def __init__(self):
        self.redirected = 0
        self.constant_span = 0
        self.dynamic_span = 0
        self.hoisted = 0


class _Redirector:
    def __init__(
        self,
        promoter: TypePromoter,
        redirect_origins: Set[int],
        static_spans: Optional[Dict[int, int]] = None,
        use_constant_spans: bool = True,
    ):
        self.promoter = promoter
        self.redirect_origins = redirect_origins
        #: origin nid of an access -> statically-known span in bytes
        self.static_spans = static_spans or {}
        self.use_constant_spans = use_constant_spans
        self.stats = RedirectStats()

    # -- matching ---------------------------------------------------------
    def _is_projection(self, expr: ast.Expr) -> bool:
        return (
            isinstance(expr, ast.Member)
            and not expr.arrow
            and expr.name == PTR_FIELD
            and expr.base.ctype is not None
            and self.promoter.is_fat(expr.base.ctype)
            and not getattr(expr, "_redirect_done", False)
        )

    def _find_projection(self, expr: ast.Expr) -> Optional[ast.Member]:
        """The fat-pointer projection feeding a pointer expression."""
        if self._is_projection(expr):
            return expr
        if isinstance(expr, ast.Cast):
            return self._find_projection(expr.expr)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            lt = expr.left.ctype
            if lt is not None and lt.decay().is_pointer:
                found = self._find_projection(expr.left)
                if found is not None:
                    return found
            rt = expr.right.ctype
            if rt is not None and rt.decay().is_pointer:
                return self._find_projection(expr.right)
            return None
        if isinstance(expr, ast.Comma):
            return self._find_projection(expr.right)
        return None

    # -- rewriting ----------------------------------------------------------
    def _redirect_projection(self, proj: ast.Member, origin: int) -> None:
        """Mutate ``X.pointer`` into ``X.pointer + __tid*span/elem`` by
        replacing the node's content in place (parents keep their ref)."""
        elem_t = proj.ctype.pointee if isinstance(proj.ctype, PointerType) \
            else None
        elem_size = 1
        if elem_t is not None and not isinstance(elem_t, VoidType) and \
                elem_t.size is not None:
            elem_size = elem_t.size
        # span operand: constant when §3.4 optimization applies
        const_span = self.static_spans.get(origin) if self.use_constant_spans \
            else None
        inner = rw.member(
            rw.clone_expr(proj.base), PTR_FIELD, like=proj
        )
        inner._redirect_done = True
        inner.ctype = proj.ctype
        if const_span is not None:
            offset_elems = const_span // elem_size
            offset: ast.Expr = rw.binary(
                "*", ast.Ident(TID), ast.IntLit(offset_elems), like=proj
            )
            self.stats.constant_span += 1
        else:
            span_lv = rw.member(
                rw.clone_expr(proj.base), SPAN_FIELD, like=proj
            )
            offset = rw.binary(
                "/",
                rw.binary("*", ast.Ident(TID), span_lv, like=proj),
                ast.IntLit(elem_size),
                like=proj,
            )
            self.stats.dynamic_span += 1
        replacement = rw.binary("+", inner, offset, like=proj)
        # hoisting metadata: a redirection whose fat pointer is a plain
        # variable can be computed once per iteration instead of per
        # access (GCC would do this via LICM/CSE; it is part of the
        # §3.4-optimized configuration)
        base = proj.base
        if isinstance(base, ast.Ident) and isinstance(base.decl, ast.VarDecl):
            replacement._hoist_decl = base.decl
            replacement._hoist_elem = elem_t
        # in-place morph: proj becomes the Binary
        proj.__class__ = ast.Binary
        proj.__dict__.clear()
        proj.__dict__.update(replacement.__dict__)
        self.stats.redirected += 1

    def _maybe_redirect_ptr_expr(self, expr: ast.Expr, origin: int) -> None:
        proj = self._find_projection(expr)
        if proj is not None:
            self._redirect_projection(proj, origin)

    # -- walk ----------------------------------------------------------------
    def run(self, program: ast.Program) -> RedirectStats:
        for fn in program.functions():
            # children before parents: a chained dereference like
            # head->next->key must redirect the inner access first so
            # the outer access's span/pointer loads clone the already-
            # redirected base (reversing a preorder walk guarantees
            # every descendant is processed before its ancestor)
            for node in reversed(list(fn.body.walk())):
                self._visit(node)
        return self.stats

    def _visit(self, node: ast.Node) -> None:
        origin = origin_of(node)
        if origin not in self.redirect_origins:
            return
        if isinstance(node, ast.Unary) and node.op == "*":
            self._maybe_redirect_ptr_expr(node.operand, origin)
        elif isinstance(node, ast.Index):
            base_t = node.base.ctype
            if base_t is not None and base_t.decay().is_pointer:
                self._maybe_redirect_ptr_expr(node.base, origin)
        elif isinstance(node, ast.Member) and node.arrow:
            self._maybe_redirect_ptr_expr(node.base, origin)
        elif isinstance(node, ast.Call):
            name = node.callee_name
            arg_ids = _PTR_ARG_BUILTINS.get(name or "")
            if arg_ids:
                for i in arg_ids:
                    if i < len(node.args):
                        self._maybe_redirect_ptr_expr(node.args[i], origin)


def hoist_redirections(loops, stats: Optional[RedirectStats] = None,
                       candidate_nids=frozenset(), parents=None) -> int:
    """Hoist loop-invariant redirection expressions to one computation
    per iteration (the LICM/CSE cleanup a native compiler performs on
    the redirected code; enabled with the §3.4 optimizations).

    A redirection ``p.pointer + __tid*p.span/s`` is hoistable within a
    candidate loop body when ``p`` is a plain variable never assigned
    (nor address-taken) inside the body.  All accesses through the same
    variable share one hoisted pointer::

        T *__priv1 = p.pointer + __tid * p.span / s;   // body top
        ... __priv1[k] ...

    Returns the number of hoist variables introduced.
    """
    from ..frontend.ctypes import PointerType
    from .optimize import (
        collect_dirty_decls, ensure_block_body, place_hoist,
        walk_with_barriers,
    )

    count = 0
    parents = parents or {}
    for loop in loops:
        body = ensure_block_body(loop)
        dirty = collect_dirty_decls(body)
        barriers = set(candidate_nids) - {loop.nid}
        # collect hoistable redirections, grouped by (decl, elem type)
        groups: Dict[Tuple[object, object], List[ast.Binary]] = {}
        for node in walk_with_barriers(body, barriers):
            decl = getattr(node, "_hoist_decl", None)
            if decl is None or decl in dirty:
                continue
            elem = getattr(node, "_hoist_elem", None)
            groups.setdefault((decl, elem), []).append(node)
        if not groups:
            continue
        hoist_decls: List[ast.VarDecl] = []
        for (decl, elem), nodes in groups.items():
            count += 1
            name = f"__priv{count}"
            init = rw.clone_expr(nodes[0])
            if hasattr(init, "_hoist_decl"):
                del init._hoist_decl
            ptr_t = PointerType(elem) if elem is not None else \
                nodes[0].ctype or PointerType(elem)
            hoist_decls.append(
                ast.VarDecl(name, ptr_t, init, "local")
            )
            for node in nodes:
                ident = ast.Ident(name)
                ident.origin = origin_of(node)
                node.__class__ = ast.Ident
                node.__dict__.clear()
                node.__dict__.update(ident.__dict__)
        place_hoist(loop, ast.DeclStmt(hoist_decls), parents,
                    in_body=loop.nid in candidate_nids)
        if stats is not None:
            stats.hoisted = getattr(stats, "hoisted", 0) + len(hoist_decls)
    return count


def redirect_private_derefs(
    program: ast.Program,
    promoter: TypePromoter,
    redirect_origins: Set[int],
    static_spans: Optional[Dict[int, int]] = None,
    use_constant_spans: bool = True,
) -> RedirectStats:
    """Rewrite all private pointer dereferences; see module docstring.

    ``static_spans`` maps access origins to byte sizes when the span is
    a compile-time constant (the §3.4 optimization); pass
    ``use_constant_spans=False`` to force the paper's general dynamic
    form everywhere (un-optimized mode).
    """
    redirector = _Redirector(
        promoter, redirect_origins, static_spans, use_constant_spans
    )
    return redirector.run(program)
