"""§3.4 overhead-reduction passes that operate on whole loops.

The redirection and heapified-global rewrites introduce address
computations that a native compiler's LICM + register allocation make
nearly free; this module performs the equivalent source-level hoisting
so the cycle model sees what hardware would see:

* :func:`hoist_expanded_bases` — the base address of an expanded
  (heapified) global — ``g + __tid*len`` for a private array, ``&g[0]``
  or ``&g[__tid]`` for scalars/records — is loop-invariant (the
  compiler-generated pointer ``g`` is written only in
  ``__expand_init``), so compute it once per loop iteration in a local
  (register) slot.

* :func:`eliminate_dead_spans` — the §3.4 dead span-store elimination,
  re-derived from liveness on the :mod:`repro.analysis.dataflow` engine
  instead of the emission-time self-assignment peephole: a span store
  ``X.span = e`` is removable when it is an identity (``X.span =
  X.span``) or when ``X``'s span cell is provably never read again on
  any path.  Span cells are *unaliasable* — taking the address of a
  promoted pointer is rejected during promotion — so plain-identifier
  fat variables are tracked exactly; span lvalues rooted in structs,
  arrays or pointers are never touched.

(The companion pass for fat-pointer *dereference* redirections lives in
:func:`repro.transform.redirect.hoist_redirections`.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.cfg import build_cfg
from ..analysis.dataflow import Analysis, solve
from ..frontend import ast
from ..frontend.ctypes import PointerType, StructType
from . import rewrite as rw
from .rewrite import origin_of



def build_parent_blocks(program: ast.Program):
    """Map each loop statement to its enclosing Block (when it has
    one), so hoisted declarations can be placed *before* the loop."""
    parents = {}
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, ast.Block):
                for stmt in node.stmts:
                    if isinstance(stmt, ast.LoopStmt):
                        parents[stmt] = node
    return parents


def place_hoist(loop: ast.LoopStmt, decl_stmt: "ast.DeclStmt",
                parents, in_body: bool) -> None:
    """Insert a hoisted declaration before the loop (classic LICM), or
    at the top of its body when it must re-evaluate per iteration — a
    candidate parallel loop's __tid is only correct inside the region."""
    parent = None if in_body else parents.get(loop)
    if parent is None:
        loop.body.stmts.insert(0, decl_stmt)
    else:
        idx = parent.stmts.index(loop)
        parent.stmts.insert(idx, decl_stmt)


def ensure_block_body(loop) -> "ast.Block":
    """Wrap a single-statement loop body in a Block so hoisted
    declarations have somewhere to live."""
    from ..frontend import ast as _ast

    if not isinstance(loop.body, _ast.Block):
        loop.body = _ast.Block([loop.body])
    return loop.body


def collect_dirty_decls(body: ast.Block) -> set:
    """Variables whose *value* may change inside ``body``: direct
    assignment targets, ++/-- operands, and address-taken variables.
    Writing through a pointer (``g[i] = v``, ``*p = v``) does not dirty
    the pointer itself — its value (the address) is unchanged."""
    dirty = set()

    def root_decl(expr):
        node = expr
        while True:
            if isinstance(node, ast.Ident):
                return node.decl
            if isinstance(node, ast.Member) and not node.arrow:
                node = node.base
                continue
            if isinstance(node, ast.Index):
                base_t = node.base.ctype
                if base_t is not None and base_t.is_array:
                    node = node.base
                    continue
                return None  # pointer element write: memory, not the var
            if isinstance(node, ast.Cast):
                node = node.expr
                continue
            return None

    for node in body.walk():
        target = None
        if isinstance(node, ast.Assign):
            target = node.target
        elif isinstance(node, ast.Unary) and node.op in (
            "++", "--", "p++", "p--", "&"
        ):
            target = node.operand
        if target is not None:
            decl = root_decl(target)
            if decl is not None:
                dirty.add(decl)
    return dirty


def walk_with_barriers(root: ast.Node, barriers: set):
    """Preorder walk that does not descend into subtrees rooted at a
    barrier node (candidate parallel loops: hoisting a __tid-dependent
    expression above one would evaluate it outside the parallel region,
    with the wrong thread id)."""
    if root.nid in barriers:
        return
    yield root
    for child in root.children():
        if isinstance(child, ast.Node) and child.nid in barriers:
            continue
        yield from walk_with_barriers(child, barriers)


def _morph(node: ast.Node, replacement: ast.Node) -> None:
    node.__class__ = replacement.__class__
    node.__dict__.clear()
    node.__dict__.update(replacement.__dict__)


def hoist_expanded_bases(loops: List[ast.LoopStmt],
                         candidate_nids: set = frozenset(),
                         parents=None) -> int:
    """Hoist tagged expanded-global base computations to loop tops.

    Processes loops outermost-first; a node hoisted by an outer loop is
    morphed into a plain identifier and no longer matches in inner
    loops.  Candidate parallel loops act as barriers: their contents
    hoist no higher than their own body.  Returns the number of hoist
    variables introduced.
    """
    count = 0
    parents = parents or {}
    for loop in loops:
        body = ensure_block_body(loop)
        dirty = collect_dirty_decls(body)
        barriers = candidate_nids - {loop.nid}
        groups: Dict[Tuple[object, str], List[ast.Expr]] = {}
        for node in walk_with_barriers(body, barriers):
            tag = getattr(node, "_base_hoist", None)
            if tag is None or tag[0] in dirty:
                continue
            groups.setdefault(tag, []).append(node)
        if not groups:
            continue
        hoist_decls: List[ast.VarDecl] = []
        for (decl, _privacy), nodes in groups.items():
            count += 1
            name = f"__base{count}"
            elem = getattr(nodes[0], "_base_elem", None)
            first = nodes[0]
            if isinstance(first, ast.Index):
                # scalar/record slot g[copy]: hoist the slot address
                init: ast.Expr = rw.unary("&", rw.clone_expr(first),
                                          like=first)
            else:
                # array base: g or g + tid*len (already a pointer)
                init = rw.clone_expr(first)
            if hasattr(init, "_base_hoist"):
                del init._base_hoist
            for sub in init.walk():
                if hasattr(sub, "_base_hoist"):
                    del sub._base_hoist
            ptr_t = PointerType(elem) if elem is not None else None
            hoist_decls.append(ast.VarDecl(name, ptr_t, init, "local"))
            for node in nodes:
                if isinstance(node, ast.Index):
                    repl: ast.Expr = rw.unary(
                        "*", ast.Ident(name), like=node
                    )
                else:
                    repl = ast.Ident(name)
                    repl.origin = origin_of(node)
                _morph(node, repl)
        place_hoist(loop, ast.DeclStmt(hoist_decls), parents,
                    in_body=loop.nid in candidate_nids)
    return count


def _global_write_closure(program: ast.Program):
    """Per function: the set of global VarDecls whose *value* the
    function (or anything it calls, transitively) may change."""
    from ..frontend import ast as _ast

    direct = {}
    calls = {}
    fns = {fn.name: fn for fn in program.functions()}
    for name, fn in fns.items():
        writes = set()
        callees = set()
        for node in fn.body.walk():
            target = None
            if isinstance(node, _ast.Assign):
                target = node.target
            elif isinstance(node, _ast.Unary) and node.op in (
                "++", "--", "p++", "p--", "&"
            ):
                target = node.operand
            if isinstance(target, _ast.Ident) and \
                    isinstance(target.decl, _ast.VarDecl) and \
                    target.decl.storage == "global":
                writes.add(target.decl)
            if isinstance(node, _ast.Call) and node.callee_name:
                callees.add(node.callee_name)
        direct[name] = writes
        calls[name] = callees
    closure = {name: set(w) for name, w in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in closure:
            for callee in calls.get(name, ()):
                extra = closure.get(callee)
                if extra and not extra <= closure[name]:
                    closure[name] |= extra
                    changed = True
    return closure


def licm_globals(program: ast.Program) -> int:  # noqa: C901
    """Hoist loop-invariant loads of global *scalar* variables into
    loop-top locals (what any optimizing compiler's LICM + register
    allocation does).  Applied to baseline and transformed programs
    alike so cycle comparisons measure the privatization mechanism, not
    differing compiler maturity.

    Safety: only globals that are never address-taken anywhere are
    candidates (no pointer can alias them), and a loop disqualifies a
    global if the body — or any function transitively callable from it
    — may write it.
    """
    from ..frontend import ast as _ast
    from ..frontend.ctypes import ArrayType, StructType

    addr_taken = set()
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, _ast.Unary) and node.op == "&" and \
                    isinstance(node.operand, _ast.Ident) and \
                    isinstance(node.operand.decl, _ast.VarDecl):
                addr_taken.add(node.operand.decl)
    closure = _global_write_closure(program)

    count = 0
    parents = build_parent_blocks(program)
    for fn in program.functions():
        loops = [n for n in fn.body.walk() if isinstance(n, _ast.LoopStmt)]
        for loop in loops:
            body = ensure_block_body(loop)
            dirty = collect_dirty_decls(body)
            for node in body.walk():
                if isinstance(node, _ast.Call) and node.callee_name:
                    dirty |= closure.get(node.callee_name, set())
            # candidate reads: global scalars, clean, never aliased
            groups = {}
            for node in body.walk():
                if not (isinstance(node, _ast.Ident)
                        and isinstance(node.decl, _ast.VarDecl)):
                    continue
                decl = node.decl
                if decl.storage != "global" or decl in dirty or \
                        decl in addr_taken:
                    continue
                if isinstance(decl.ctype, (ArrayType, StructType)):
                    continue  # array bases are already free addresses
                if decl.name.startswith("__"):
                    continue  # thread-context pseudo-globals
                groups.setdefault(decl, []).append(node)
            if not groups:
                continue
            decls = []
            for decl, nodes in groups.items():
                count += 1
                name = f"__licm{count}"
                init = _ast.Ident(decl.name)
                init.origin = origin_of(nodes[0])
                decls.append(_ast.VarDecl(name, decl.ctype, init, "local"))
                for node in nodes:
                    repl = _ast.Ident(name)
                    repl.origin = origin_of(node)
                    _morph(node, repl)
            place_hoist(loop, _ast.DeclStmt(decls), parents, in_body=False)
    return count


# -- §3.4 dead span-store elimination (liveness-derived) -------------------

def is_fat_struct(ctype) -> bool:
    """Structural test for the compiler-generated fat-pointer structs
    (``struct __fatN { T *pointer; long span; }``)."""
    from .promote import PTR_FIELD, SPAN_FIELD

    return (
        isinstance(ctype, StructType)
        and ctype.name.startswith("__fat")
        and [f.name for f in ctype.fields] == [PTR_FIELD, SPAN_FIELD]
    )


class DeadSpanStore:
    """One statement-level span store proven removable."""

    __slots__ = ("fn", "block", "assign", "reason")

    def __init__(self, fn: ast.FunctionDef, block: ast.Block,
                 assign: ast.Assign, reason: str):
        self.fn = fn
        self.block = block
        self.assign = assign
        #: "identity" (``X.span = X.span``) or "dead" (span never read)
        self.reason = reason


def _span_store(stmt: ast.Stmt) -> Optional[ast.Assign]:
    """The ``X.span = e`` assignment when ``stmt`` is a statement-level
    span store into a fat-pointer lvalue, else None."""
    from .promote import SPAN_FIELD

    if not (isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Assign)):
        return None
    assign = stmt.expr
    target = assign.target
    if assign.op == "=" and isinstance(target, ast.Member) and \
            not target.arrow and target.name == SPAN_FIELD and \
            is_fat_struct(target.base.ctype):
        return assign
    return None


def _span_cells(program: ast.Program) -> Set[int]:
    """Decl nids of plain fat-pointer variables — the trackable span
    cells.  Fat variables cannot be address-taken (promotion rejects
    ``&p``), so every read or write of their span goes through the
    identifier; struct members, array elements, and heap objects are
    not cells and stay conservatively live."""
    cells: Set[int] = set()
    for decl in program.globals():
        if is_fat_struct(decl.ctype):
            cells.add(decl.nid)
    for fn in program.functions():
        for param in fn.params:
            if is_fat_struct(param.ctype):
                cells.add(param.nid)
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if isinstance(node, ast.VarDecl) and is_fat_struct(node.ctype):
                cells.add(node.nid)
    return cells


def _fat_uses(root, cells: Set[int]) -> Set[int]:
    out: Set[int] = set()
    nodes = root if isinstance(root, list) else [root]
    for node in nodes:
        if not isinstance(node, ast.Node):
            continue
        for sub in node.walk():
            if isinstance(sub, ast.Ident) and \
                    isinstance(sub.decl, ast.VarDecl) and \
                    sub.decl.nid in cells:
                out.add(sub.decl.nid)
    return out


def _is_pure(expr: ast.Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, (ast.Assign, ast.Call)):
            return False
        if isinstance(node, ast.Unary) and node.op in (
            "++", "--", "p++", "p--"
        ):
            return False
    return True


class _SpanLiveness(Analysis):
    """Backward liveness of span cells.

    A cell's span is *used* by any appearance of the variable other
    than as the target of its own span store (whole-struct copies,
    redirected dereferences, calls taking the struct by value all read
    the span, or may).  It is *killed* by a statement-level span store
    or a whole-struct assignment.  Calls keep every global cell live —
    a callee may read a global fat pointer."""

    forward = False

    def __init__(self, cells: Set[int], exit_live: Set[int]):
        super().__init__()
        self._cells = cells
        self._exit = frozenset(exit_live)
        self._span: Dict[int, Tuple[FrozenSet, FrozenSet, bool]] = {}

    def boundary(self) -> FrozenSet:
        return self._exit

    def _span_info(self, elem) -> Tuple[FrozenSet, FrozenSet, bool]:
        cached = self._span.get(elem.nid)
        if cached is not None:
            return cached
        from .promote import SPAN_FIELD

        cells = self._cells
        kill: Set[int] = set()
        use: Set[int]
        has_call = any(
            isinstance(n, ast.Call)
            for n in (elem.walk() if isinstance(elem, ast.Node) else ())
        )
        if isinstance(elem, ast.VarDecl):
            if elem.nid in cells:
                kill.add(elem.nid)
            use = _fat_uses(elem.init, cells) if elem.init is not None \
                else set()
        elif isinstance(elem, ast.Assign) and elem.op == "=":
            target = elem.target
            if isinstance(target, ast.Member) and not target.arrow and \
                    target.name == SPAN_FIELD and \
                    isinstance(target.base, ast.Ident) and \
                    isinstance(target.base.decl, ast.VarDecl) and \
                    target.base.decl.nid in cells:
                kill.add(target.base.decl.nid)
                use = _fat_uses(elem.value, cells)
            elif isinstance(target, ast.Ident) and \
                    isinstance(target.decl, ast.VarDecl) and \
                    target.decl.nid in cells:
                kill.add(target.decl.nid)
                use = _fat_uses(elem.value, cells)
            else:
                use = _fat_uses(elem, cells)
        else:
            use = _fat_uses(elem, cells)
        info = (frozenset(kill), frozenset(use), has_call)
        self._span[elem.nid] = info
        return info

    def transfer(self, elem, facts: FrozenSet) -> FrozenSet:
        kill, use, has_call = self._span_info(elem)
        out = (set(facts) - kill) | use
        if has_call:
            out |= self._exit
        return frozenset(out)


def _is_identity_span(assign: ast.Assign) -> bool:
    from .promote import SPAN_FIELD, _lvalue_repr

    value = assign.value
    if not (isinstance(value, ast.Member) and not value.arrow
            and value.name == SPAN_FIELD):
        return False
    target = assign.target
    assert isinstance(target, ast.Member)
    lhs = _lvalue_repr(target.base)
    return lhs is not None and lhs == _lvalue_repr(value.base)


def find_dead_span_stores(program: ast.Program) -> List[DeadSpanStore]:
    """Span stores provably removable, without mutating the program.

    Two proofs: identity stores (``X.span = X.span`` — the exact set
    the emission-time §3.4 peephole drops) and liveness-dead stores
    (``X``'s span cell is not live after the statement and the stored
    value is side-effect free)."""
    cells = _span_cells(program)
    exit_live = {
        decl.nid for decl in program.globals()
        if decl.nid in cells
    }
    out: List[DeadSpanStore] = []
    for fn in program.functions():
        if fn.body is None:
            continue
        stores = []
        for node in fn.body.walk():
            if isinstance(node, ast.Block):
                for stmt in node.stmts:
                    assign = _span_store(stmt)
                    if assign is not None:
                        stores.append((node, assign))
        if not stores:
            continue
        live = solve(build_cfg(fn), _SpanLiveness(cells, exit_live))
        for block, assign in stores:
            if _is_identity_span(assign):
                out.append(DeadSpanStore(fn, block, assign, "identity"))
                continue
            base = assign.target.base
            if isinstance(base, ast.Ident) and \
                    isinstance(base.decl, ast.VarDecl) and \
                    base.decl.nid in cells and \
                    base.decl.nid not in live.after(assign.nid) and \
                    _is_pure(assign.value):
                out.append(DeadSpanStore(fn, block, assign, "dead"))
    return out


def eliminate_dead_spans(program: ast.Program) -> int:
    """Remove every provably dead span store; returns the count."""
    dead = find_dead_span_stores(program)
    for entry in dead:
        entry.block.stmts = [
            stmt for stmt in entry.block.stmts
            if not (isinstance(stmt, ast.ExprStmt)
                    and stmt.expr is entry.assign)
        ]
    return len(dead)
