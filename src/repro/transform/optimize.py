"""§3.4 overhead-reduction passes that operate on whole loops.

The redirection and heapified-global rewrites introduce address
computations that a native compiler's LICM + register allocation make
nearly free; this module performs the equivalent source-level hoisting
so the cycle model sees what hardware would see:

* :func:`hoist_expanded_bases` — the base address of an expanded
  (heapified) global — ``g + __tid*len`` for a private array, ``&g[0]``
  or ``&g[__tid]`` for scalars/records — is loop-invariant (the
  compiler-generated pointer ``g`` is written only in
  ``__expand_init``), so compute it once per loop iteration in a local
  (register) slot.

(The companion pass for fat-pointer *dereference* redirections lives in
:func:`repro.transform.redirect.hoist_redirections`.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..frontend import ast
from ..frontend.ctypes import PointerType
from . import rewrite as rw
from .rewrite import origin_of



def build_parent_blocks(program: ast.Program):
    """Map each loop statement to its enclosing Block (when it has
    one), so hoisted declarations can be placed *before* the loop."""
    parents = {}
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, ast.Block):
                for stmt in node.stmts:
                    if isinstance(stmt, ast.LoopStmt):
                        parents[stmt] = node
    return parents


def place_hoist(loop: ast.LoopStmt, decl_stmt: "ast.DeclStmt",
                parents, in_body: bool) -> None:
    """Insert a hoisted declaration before the loop (classic LICM), or
    at the top of its body when it must re-evaluate per iteration — a
    candidate parallel loop's __tid is only correct inside the region."""
    parent = None if in_body else parents.get(loop)
    if parent is None:
        loop.body.stmts.insert(0, decl_stmt)
    else:
        idx = parent.stmts.index(loop)
        parent.stmts.insert(idx, decl_stmt)


def ensure_block_body(loop) -> "ast.Block":
    """Wrap a single-statement loop body in a Block so hoisted
    declarations have somewhere to live."""
    from ..frontend import ast as _ast

    if not isinstance(loop.body, _ast.Block):
        loop.body = _ast.Block([loop.body])
    return loop.body


def collect_dirty_decls(body: ast.Block) -> set:
    """Variables whose *value* may change inside ``body``: direct
    assignment targets, ++/-- operands, and address-taken variables.
    Writing through a pointer (``g[i] = v``, ``*p = v``) does not dirty
    the pointer itself — its value (the address) is unchanged."""
    dirty = set()

    def root_decl(expr):
        node = expr
        while True:
            if isinstance(node, ast.Ident):
                return node.decl
            if isinstance(node, ast.Member) and not node.arrow:
                node = node.base
                continue
            if isinstance(node, ast.Index):
                base_t = node.base.ctype
                if base_t is not None and base_t.is_array:
                    node = node.base
                    continue
                return None  # pointer element write: memory, not the var
            if isinstance(node, ast.Cast):
                node = node.expr
                continue
            return None

    for node in body.walk():
        target = None
        if isinstance(node, ast.Assign):
            target = node.target
        elif isinstance(node, ast.Unary) and node.op in (
            "++", "--", "p++", "p--", "&"
        ):
            target = node.operand
        if target is not None:
            decl = root_decl(target)
            if decl is not None:
                dirty.add(decl)
    return dirty


def walk_with_barriers(root: ast.Node, barriers: set):
    """Preorder walk that does not descend into subtrees rooted at a
    barrier node (candidate parallel loops: hoisting a __tid-dependent
    expression above one would evaluate it outside the parallel region,
    with the wrong thread id)."""
    if root.nid in barriers:
        return
    yield root
    for child in root.children():
        if isinstance(child, ast.Node) and child.nid in barriers:
            continue
        yield from walk_with_barriers(child, barriers)


def _morph(node: ast.Node, replacement: ast.Node) -> None:
    node.__class__ = replacement.__class__
    node.__dict__.clear()
    node.__dict__.update(replacement.__dict__)


def hoist_expanded_bases(loops: List[ast.LoopStmt],
                         candidate_nids: set = frozenset(),
                         parents=None) -> int:
    """Hoist tagged expanded-global base computations to loop tops.

    Processes loops outermost-first; a node hoisted by an outer loop is
    morphed into a plain identifier and no longer matches in inner
    loops.  Candidate parallel loops act as barriers: their contents
    hoist no higher than their own body.  Returns the number of hoist
    variables introduced.
    """
    count = 0
    parents = parents or {}
    for loop in loops:
        body = ensure_block_body(loop)
        dirty = collect_dirty_decls(body)
        barriers = candidate_nids - {loop.nid}
        groups: Dict[Tuple[object, str], List[ast.Expr]] = {}
        for node in walk_with_barriers(body, barriers):
            tag = getattr(node, "_base_hoist", None)
            if tag is None or tag[0] in dirty:
                continue
            groups.setdefault(tag, []).append(node)
        if not groups:
            continue
        hoist_decls: List[ast.VarDecl] = []
        for (decl, _privacy), nodes in groups.items():
            count += 1
            name = f"__base{count}"
            elem = getattr(nodes[0], "_base_elem", None)
            first = nodes[0]
            if isinstance(first, ast.Index):
                # scalar/record slot g[copy]: hoist the slot address
                init: ast.Expr = rw.unary("&", rw.clone_expr(first),
                                          like=first)
            else:
                # array base: g or g + tid*len (already a pointer)
                init = rw.clone_expr(first)
            if hasattr(init, "_base_hoist"):
                del init._base_hoist
            for sub in init.walk():
                if hasattr(sub, "_base_hoist"):
                    del sub._base_hoist
            ptr_t = PointerType(elem) if elem is not None else None
            hoist_decls.append(ast.VarDecl(name, ptr_t, init, "local"))
            for node in nodes:
                if isinstance(node, ast.Index):
                    repl: ast.Expr = rw.unary(
                        "*", ast.Ident(name), like=node
                    )
                else:
                    repl = ast.Ident(name)
                    repl.origin = origin_of(node)
                _morph(node, repl)
        place_hoist(loop, ast.DeclStmt(hoist_decls), parents,
                    in_body=loop.nid in candidate_nids)
    return count


def _global_write_closure(program: ast.Program):
    """Per function: the set of global VarDecls whose *value* the
    function (or anything it calls, transitively) may change."""
    from ..frontend import ast as _ast

    direct = {}
    calls = {}
    fns = {fn.name: fn for fn in program.functions()}
    for name, fn in fns.items():
        writes = set()
        callees = set()
        for node in fn.body.walk():
            target = None
            if isinstance(node, _ast.Assign):
                target = node.target
            elif isinstance(node, _ast.Unary) and node.op in (
                "++", "--", "p++", "p--", "&"
            ):
                target = node.operand
            if isinstance(target, _ast.Ident) and \
                    isinstance(target.decl, _ast.VarDecl) and \
                    target.decl.storage == "global":
                writes.add(target.decl)
            if isinstance(node, _ast.Call) and node.callee_name:
                callees.add(node.callee_name)
        direct[name] = writes
        calls[name] = callees
    closure = {name: set(w) for name, w in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in closure:
            for callee in calls.get(name, ()):
                extra = closure.get(callee)
                if extra and not extra <= closure[name]:
                    closure[name] |= extra
                    changed = True
    return closure


def licm_globals(program: ast.Program) -> int:  # noqa: C901
    """Hoist loop-invariant loads of global *scalar* variables into
    loop-top locals (what any optimizing compiler's LICM + register
    allocation does).  Applied to baseline and transformed programs
    alike so cycle comparisons measure the privatization mechanism, not
    differing compiler maturity.

    Safety: only globals that are never address-taken anywhere are
    candidates (no pointer can alias them), and a loop disqualifies a
    global if the body — or any function transitively callable from it
    — may write it.
    """
    from ..frontend import ast as _ast
    from ..frontend.ctypes import ArrayType, StructType

    addr_taken = set()
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, _ast.Unary) and node.op == "&" and \
                    isinstance(node.operand, _ast.Ident) and \
                    isinstance(node.operand.decl, _ast.VarDecl):
                addr_taken.add(node.operand.decl)
    closure = _global_write_closure(program)

    count = 0
    parents = build_parent_blocks(program)
    for fn in program.functions():
        loops = [n for n in fn.body.walk() if isinstance(n, _ast.LoopStmt)]
        for loop in loops:
            body = ensure_block_body(loop)
            dirty = collect_dirty_decls(body)
            for node in body.walk():
                if isinstance(node, _ast.Call) and node.callee_name:
                    dirty |= closure.get(node.callee_name, set())
            # candidate reads: global scalars, clean, never aliased
            groups = {}
            for node in body.walk():
                if not (isinstance(node, _ast.Ident)
                        and isinstance(node.decl, _ast.VarDecl)):
                    continue
                decl = node.decl
                if decl.storage != "global" or decl in dirty or \
                        decl in addr_taken:
                    continue
                if isinstance(decl.ctype, (ArrayType, StructType)):
                    continue  # array bases are already free addresses
                if decl.name.startswith("__"):
                    continue  # thread-context pseudo-globals
                groups.setdefault(decl, []).append(node)
            if not groups:
                continue
            decls = []
            for decl, nodes in groups.items():
                count += 1
                name = f"__licm{count}"
                init = _ast.Ident(decl.name)
                init.origin = origin_of(nodes[0])
                decls.append(_ast.VarDecl(name, decl.ctype, init, "local"))
                for node in nodes:
                    repl = _ast.Ident(name)
                    repl.origin = origin_of(node)
                    _morph(node, repl)
            place_hoist(loop, _ast.DeclStmt(decls), parents, in_body=False)
    return count
