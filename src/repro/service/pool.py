"""Warm :class:`~repro.runtime.multicore.ProcessSession` reuse.

Forking and tearing down a worker pool per request dominates warm-path
latency for the process backend.  The pool keeps sessions — shared
segment + forked workers — alive across requests, keyed by (program
fingerprint, nthreads, workers): a warm hit costs one segment reset
instead of a fork storm.

Supervisor integration: the runner releases its session back here
after every run.  A session the supervisor degraded (worker crashes
exhausted the restart budget) or closed mid-run is *evicted* — closed
and dropped — never handed to another request; the next acquire forks
a fresh pool.  Idle sessions beyond ``max_sessions`` are evicted
oldest-first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..runtime.multicore import ProcessSession, _fingerprint_for
from .job import Job


class SessionPool:
    """A bounded pool of warm process-backend sessions."""

    def __init__(self, max_sessions: int = 4,
                 mc: Optional[dict] = None):
        self.max_sessions = max_sessions
        self.mc = dict(mc or {})
        self._idle: "OrderedDict[tuple, ProcessSession]" = OrderedDict()
        self._lock = threading.Lock()
        self.closed = False
        # counters for the daemon's ``stats`` op
        self.created = 0
        self.reuses = 0
        self.evicted = 0

    @staticmethod
    def _key(fingerprint: str, job: Job) -> tuple:
        # engine is part of the key: a native-tier session's workers
        # hold dlopen handles a bare session's workers lack
        return (fingerprint, job.nthreads,
                job.workers or job.nthreads,
                job.options.resolved_engine())

    # -- lifecycle ---------------------------------------------------------
    def acquire(self, tresult, job: Job,
                fingerprint: Optional[str] = None) -> ProcessSession:
        """A session for ``tresult`` sized per ``job`` — a reset warm
        one when available, freshly constructed otherwise.  The session
        comes back via :meth:`release` (the runner calls it)."""
        if fingerprint is None:
            fingerprint = _fingerprint_for(tresult.program)
        key = self._key(fingerprint, job)
        with self._lock:
            session = self._idle.pop(key, None)
        if session is not None:
            # the pooled program object may differ from tresult.program
            # (fresh compile of identical source); workers resolve loops
            # by nid from their fork-inherited AST, so only identical
            # object graphs may share a warm pool
            if session.program is not tresult.program:
                self._evict(session)
                session = None
        if session is not None:
            session.reset()
            session.reused = True
            self.reuses += 1
            return session
        session = ProcessSession(
            tresult.program, tresult.sema, job.nthreads,
            workers=job.workers, options=self.mc,
            engine=job.options.resolved_engine(),
        )
        session._pool_key = key
        session.pool = self
        session.reused = False
        self.created += 1
        return session

    def release(self, session: ProcessSession) -> None:
        """Take a session back after a run.  Degraded / closed sessions
        are evicted (supervisor verdicts are terminal); healthy ones
        park for the next acquire."""
        if session.closed or session.degraded or self.closed:
            self._evict(session)
            return
        key = getattr(session, "_pool_key", None)
        if key is None:
            self._evict(session)
            return
        overflow = None
        with self._lock:
            self._idle[key] = session
            self._idle.move_to_end(key)
            if len(self._idle) > self.max_sessions:
                _, overflow = self._idle.popitem(last=False)
        if overflow is not None:
            self._evict(overflow)

    def _evict(self, session: ProcessSession) -> None:
        session.pool = None
        self.evicted += 1
        try:
            session.close()
        except Exception:
            pass

    def close(self) -> None:
        """Evict every idle session; later releases evict too."""
        with self._lock:
            self.closed = True
            idle = list(self._idle.values())
            self._idle.clear()
        for session in idle:
            self._evict(session)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "idle": len(self._idle),
                "created": self.created,
                "reused": self.reuses,
                "evicted": self.evicted,
                "max_sessions": self.max_sessions,
            }
