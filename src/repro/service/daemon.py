"""``repro serve`` — the resident expansion service.

A Unix-domain-socket daemon speaking line-delimited JSON: one request
object per line, one response object per line.  Because the process is
resident, the stage cache's memory tier (including the unpicklable
``lower`` artifacts) and the warm session pool persist across
requests — compile once, serve many.

Protocol::

    → {"op": "ping"}
    ← {"ok": true, "result": {"version": "1.5.0", "pid": 1234}}

    → {"op": "run", "job": {"source": "...", "loop_labels": ["L"],
                             "nthreads": 4, "options": {"strict": true}}}
    ← {"ok": true, "result": {"output": "...", "verified": true,
                               "cache": {"parse": "hit", ...},
                               "session_reused": false, ...}}

    → {"op": "stats"}
    ← {"ok": true, "result": {"requests": 2, "cache": {...},
                               "pool": {...}}}

    → {"op": "shutdown"}
    ← {"ok": true, "result": {"stopping": true}}

Failures come back structured, never as a dropped connection::

    ← {"ok": false, "error": {"code": "RT-RACE", "message": "...",
                               "diagnostics": [...]}}

Concurrency: one handler thread per connection; identical concurrent
jobs coalesce on a per-key in-flight lock so a cold compile runs once
while the other request waits for the (then cached) artifacts.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from typing import Optional

from ..diagnostics import DiagnosableError, DiagnosticSink
from ..obs import Tracer
from .cache import StageCache, default_cache_root
from .job import Job
from .pool import SessionPool
from .runner import run_job
from .stages import StagedCompiler, stage_keys


def _error_payload(code: str, message: str, diagnostics=()) -> dict:
    return {"ok": False, "error": {
        "code": code, "message": message,
        "diagnostics": [
            {"code": d.code, "severity": d.severity,
             "message": d.message, "loop": d.loop, "phase": d.phase}
            for d in diagnostics
        ],
    }}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        service: "ExpansionService" = self.server.service
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response = service.handle_line(line.decode("utf-8",
                                                       "replace"))
            self.wfile.write(
                (json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("result", {}).get("stopping"):
                break


class _Server(socketserver.ThreadingMixIn,
              socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class ExpansionService:
    """The resident daemon: staged compiler + stage cache + session
    pool behind a Unix socket.

    ``cache_root=None`` uses :func:`default_cache_root`; pass
    ``cache_root=False`` to disable the disk tier (memory-only)."""

    def __init__(self, socket_path: str,
                 cache_root=None, max_sessions: int = 4,
                 mc: Optional[dict] = None):
        self.socket_path = socket_path
        if cache_root is None:
            cache_root = default_cache_root()
        elif cache_root is False:
            cache_root = None
        self.cache = StageCache(root=cache_root)
        self.pool = SessionPool(max_sessions=max_sessions, mc=mc)
        self.requests = 0
        self.errors = 0
        self._counter_lock = threading.Lock()
        self._inflight: dict = {}
        self._inflight_lock = threading.Lock()
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and serve on a background thread (the
        embeddable form; :meth:`serve_forever` is the CLI form)."""
        self._bind()
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="repro-serve",
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self._bind()
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def _bind(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = _Server(self.socket_path, _Handler)
        self._server.service = self

    def shutdown(self) -> None:
        if self._server is not None:
            self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.close()

    def close(self) -> None:
        self.pool.close()
        if self._server is not None:
            self._server.server_close()
            self._server = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- request handling --------------------------------------------------
    def handle_line(self, line: str) -> dict:
        try:
            payload = json.loads(line)
        except ValueError as exc:
            return _error_payload("SRV-PROTO",
                                  f"request is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "op" not in payload:
            return _error_payload(
                "SRV-PROTO", 'request must be an object with an "op"')
        op = payload["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return _error_payload("SRV-PROTO", f"unknown op {op!r}")
        with self._counter_lock:
            self.requests += 1
        try:
            return {"ok": True, "result": handler(payload)}
        except DiagnosableError as exc:
            with self._counter_lock:
                self.errors += 1
            diag = exc.diagnostic
            return _error_payload(diag.code, diag.message, [diag])
        except (ValueError, TypeError, KeyError) as exc:
            with self._counter_lock:
                self.errors += 1
            message = str(exc) if not isinstance(exc, KeyError) \
                else str(exc.args[0]) if exc.args else "KeyError"
            return _error_payload("SRV-BADREQ", message)
        except Exception as exc:  # never drop the connection
            with self._counter_lock:
                self.errors += 1
            return _error_payload(
                "SRV-INTERNAL", f"{type(exc).__name__}: {exc}")

    def _compile_lock(self, key: str) -> threading.Lock:
        with self._inflight_lock:
            lock = self._inflight.get(key)
            if lock is None:
                lock = self._inflight[key] = threading.Lock()
            return lock

    # -- ops ---------------------------------------------------------------
    def _op_ping(self, payload: dict) -> dict:
        from .. import __version__
        return {"version": __version__, "pid": os.getpid()}

    def _op_run(self, payload: dict) -> dict:
        if "job" not in payload:
            raise ValueError('the "run" op needs a "job" object')
        job = Job.from_dict(payload["job"])
        sink = DiagnosticSink()
        tracer = Tracer()
        # coalesce identical concurrent compiles: the second request
        # blocks here, then hits the freshly published artifacts
        with self._compile_lock(stage_keys(job)["lower"]):
            compiled = StagedCompiler(
                cache=self.cache, tracer=tracer, sink=sink,
            ).compile(job)
        outcome = run_job(compiled, tracer=tracer, sink=sink,
                          pool=self.pool, cache=self.cache)
        return outcome.to_dict()

    def _op_stats(self, payload: dict) -> dict:
        from .. import __version__
        with self._counter_lock:
            requests, errors = self.requests, self.errors
        return {
            "version": __version__,
            "pid": os.getpid(),
            "requests": requests,
            "errors": errors,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
        }

    def _op_shutdown(self, payload: dict) -> dict:
        # shutdown() joins the serve loop — hand it to a helper thread
        # so this handler can still write its acknowledgement
        threading.Thread(target=self.shutdown, daemon=True).start()
        return {"stopping": True}


def request(socket_path: str, payload: dict,
            timeout: float = 120.0) -> dict:
    """One-shot client: send ``payload``, return the decoded response."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
            if data.endswith(b"\n"):
                break
    if not chunks:
        raise ConnectionError("serve daemon closed the connection "
                              "without a response")
    return json.loads(b"".join(chunks).decode("utf-8"))
