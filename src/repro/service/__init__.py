"""The resident expansion service: a staged, cacheable pipeline API
behind ``repro serve``.

Three layers, each usable on its own:

* :class:`Job` / :class:`CompileOptions` — the canonical request
  object consolidating the kwarg surface of the one-call APIs.
* :class:`StagedCompiler` + :class:`StageCache` — explicit pipeline
  stages (parse → sema → profile → classify → expand → optimize →
  plan → lower), each memoized under a chained content hash with a
  durable on-disk tier.
* :class:`SessionPool` + :class:`ExpansionService` — warm process
  sessions reused across requests, served over a Unix socket.
"""

from .cache import MISS, StageCache, default_cache_root
from .daemon import ExpansionService, request
from .job import BACKENDS, CompileOptions, EXPANSION_SOURCES, Job, LAYOUTS, OPT_FIELDS
from .pool import SessionPool
from .runner import JobOutcome, run_job
from .stages import STAGES, CompiledJob, StagedCompiler, stage_keys

__all__ = [
    "Job", "CompileOptions", "OPT_FIELDS", "LAYOUTS",
    "EXPANSION_SOURCES", "BACKENDS",
    "StageCache", "default_cache_root", "MISS",
    "StagedCompiler", "CompiledJob", "STAGES", "stage_keys",
    "SessionPool",
    "JobOutcome", "run_job",
    "ExpansionService", "request",
]
