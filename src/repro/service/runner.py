"""Execute a :class:`~repro.service.stages.CompiledJob`.

The run phase mirrors :func:`repro.expand_and_run` — sequential
baseline, parallel execution, output verification — but every piece is
cache/pool aware: the baseline is a durable side-stage artifact (keyed
off the ``sema`` key: it depends only on the original program), and a
process-backend run draws its worker session from a
:class:`~repro.service.pool.SessionPool` instead of forking per
request.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..diagnostics import Diagnostic, DiagnosticSink
from ..interp import Machine
from ..obs import ensure_tracer
from ..runtime.parallel import run_parallel
from .cache import MISS, StageCache
from .stages import CompiledJob

#: the run-side caches only plain scalars/strings — loadable with no
#: AST in sight
_BASELINE_STAGE = "baseline"


class JobOutcome:
    """Result bundle for one served job (the ``run`` op's payload)."""

    def __init__(self, compiled: CompiledJob, output: List[str],
                 exit_code: int, verified: bool, races: int,
                 loop_speedup: float, total_speedup: float,
                 backend: str, session_reused: bool,
                 diagnostics: List[Diagnostic], parallel,
                 baseline: Optional[dict], elapsed_us: float,
                 trace=None):
        self.job = compiled.job
        self.cache = dict(compiled.report)
        self.output = output
        self.exit_code = exit_code
        self.verified = verified
        self.races = races
        self.loop_speedup = loop_speedup
        self.total_speedup = total_speedup
        self.backend = backend
        self.session_reused = session_reused
        self.diagnostics = diagnostics
        #: the underlying :class:`~repro.runtime.ParallelOutcome`
        self.parallel = parallel
        self.baseline = baseline
        self.elapsed_us = elapsed_us
        self.trace = trace

    def to_dict(self) -> dict:
        """Wire encoding for the serve protocol (scalars only)."""
        return {
            "output": "".join(self.output),
            "exit_code": self.exit_code,
            "verified": self.verified,
            "races": self.races,
            "loop_speedup": self.loop_speedup,
            "total_speedup": self.total_speedup,
            "backend": self.backend,
            "session_reused": self.session_reused,
            "cache": self.cache,
            "cache_hits": sum(
                1 for v in self.cache.values() if v == "hit"),
            "cache_stages": len(self.cache),
            "elapsed_us": self.elapsed_us,
            "diagnostics": [
                {"code": d.code, "severity": d.severity,
                 "message": d.message, "loop": d.loop, "phase": d.phase}
                for d in self.diagnostics
            ],
        }


def _sequential_baseline(compiled: CompiledJob, tracer,
                         cache: Optional[StageCache]) -> dict:
    """The original program's sequential run — output, exit code,
    modeled cycles — probed from the durable side-stage first."""
    ctx = compiled.ctx
    opts = compiled.job.options
    key = compiled.keys[_BASELINE_STAGE]
    if cache is not None:
        hit = cache.get(_BASELINE_STAGE, key)
        if hit is not MISS:
            if tracer:
                tracer.metrics.inc("cache.baseline.hit")
            return hit
    eng = opts.resolved_engine()
    if eng not in ("ast", "native"):
        # unobserved straight-line run: the bare tier is behaviorally
        # identical and fastest of the bytecode variants
        eng = "bytecode-bare"
    with tracer.phase("sequential-baseline"):
        machine = Machine(ctx.program, ctx.sema, engine=eng)
        exit_code = machine.run(opts.entry)
    baseline = {
        "output": list(machine.output),
        "exit_code": exit_code,
        "cycles": machine.cost.cycles,
        "peak": machine.memory.peak_footprint(),
    }
    if cache is not None:
        cache.put(_BASELINE_STAGE, key, baseline)
        if tracer:
            tracer.metrics.inc("cache.baseline.miss")
    return baseline


def run_job(compiled: CompiledJob, tracer=None,
            sink: Optional[DiagnosticSink] = None,
            pool=None, cache: Optional[StageCache] = None) -> JobOutcome:
    """Run a compiled job: (cached) sequential baseline, parallel
    execution — on a pooled warm session when the process backend and a
    pool are available — and output verification.

    Strict jobs raise :class:`repro.OutputDivergence` on mismatch,
    mirroring :func:`repro.expand_and_run`; permissive jobs record an
    ``RT-DIVERGED`` diagnostic and return ``verified=False``.
    """
    job = compiled.job
    tracer = ensure_tracer(tracer)
    sink = sink if sink is not None else DiagnosticSink()
    t0 = time.perf_counter()

    baseline = None
    if job.verify:
        baseline = _sequential_baseline(compiled, tracer, cache)

    session = None
    if job.backend == "process" and pool is not None:
        from ..runtime.multicore import process_backend_available
        ok, _why = process_backend_available()
        if ok:
            session = pool.acquire(compiled.result, job,
                                   fingerprint=compiled.ctx.fingerprint)
    outcome = run_parallel(compiled.result, job=job, session=session,
                           sink=sink, tracer=tracer)
    session_reused = bool(session is not None and session.reused)
    if tracer and session is not None:
        tracer.metrics.inc("serve.session_reused"
                           if session_reused else "serve.session_cold")

    verified = True
    if job.verify:
        verified = outcome.output == baseline["output"]
        if not verified:
            message = (
                f"parallel output diverged: {outcome.output} != "
                f"{baseline['output']}"
            )
            if job.options.strict:
                from .. import OutputDivergence
                exc = OutputDivergence(message)
                sink.emit(exc.diagnostic)
                raise exc
            sink.error("RT-DIVERGED", message, phase="runtime")

    par = sum(ex.makespan + ex.runtime_cycles
              for ex in outcome.loops.values())
    seq_loop = sum(tl.profile.loop_cycles
                   for tl in compiled.result.loops)
    loop_speedup = seq_loop / par if par else 0.0
    total_speedup = 0.0
    if baseline is not None and outcome.total_cycles:
        total_speedup = baseline["cycles"] / outcome.total_cycles

    elapsed_us = (time.perf_counter() - t0) * 1e6
    return JobOutcome(
        compiled, output=list(outcome.output),
        exit_code=outcome.exit_code, verified=verified,
        races=len(outcome.races), loop_speedup=loop_speedup,
        total_speedup=total_speedup, backend=outcome.backend,
        session_reused=session_reused,
        diagnostics=list(sink.diagnostics), parallel=outcome,
        baseline=baseline, elapsed_us=elapsed_us,
        trace=tracer if tracer else None,
    )
