"""Content-addressed stage cache: memory tier + durable disk tier.

Every pipeline stage artifact is keyed by a chained SHA-256 content
hash (see :mod:`repro.service.stages` for the key anatomy — each
stage's key folds in its predecessor's, the stage-specific inputs, and
``repro.__version__``).  The cache itself is key-agnostic: it stores
opaque pickled artifacts under ``<root>/<stage>/<k[:2]>/<k>.pkl``.

Concurrency: writers serialize on a per-entry lock file
(``O_CREAT|O_EXCL``, stale locks broken after a timeout) and publish
via write-to-temp + :func:`os.replace`, so readers never observe a
partial entry even when parallel ``serve`` jobs and plain CLI runs
share one cache directory.  A corrupted entry (truncated file, pickle
damage, version drift) is deleted and reported as a structured
``CACHE-CORRUPT`` diagnostic; the stage simply recompiles.

Deserialized artifacts carry the AST nids they were pickled with; the
loader reserves those ids on the process-global counter
(:func:`repro.frontend.ast.reserve_nids`) so stages resumed on a
cached artifact cannot mint colliding nodes.
"""

from __future__ import annotations

import errno
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from threading import Lock
from typing import Dict, Optional

from ..frontend import ast

#: sentinel distinguishing "no entry" from a cached None
MISS = object()

#: age after which a writer lock is presumed dead and broken (seconds)
LOCK_STALE_SECONDS = 10.0
_LOCK_POLL = 0.02


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class _EntryLock:
    """A cross-process lock file guarding one cache entry's writer."""

    def __init__(self, path: str):
        self.path = path
        self._fd: Optional[int] = None

    def __enter__(self):
        deadline = time.monotonic() + LOCK_STALE_SECONDS + 1.0
        while True:
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(self._fd, str(os.getpid()).encode())
                return self
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(self.path)
                except OSError:
                    continue  # holder released between open and stat
                if age > LOCK_STALE_SECONDS:
                    # holder died mid-write; break the lock and retry
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    # never deadlock a request on a wedged lock: the
                    # writer gives up (the artifact is a pure cache)
                    self._fd = None
                    return self
                time.sleep(_LOCK_POLL)

    def __exit__(self, *exc):
        if self._fd is not None:
            os.close(self._fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass


class StageCache:
    """Two-tier artifact store.

    * **memory tier** — an LRU of live artifacts (AST objects,
      compilers — including the closure-compiled ``lower`` stage that
      cannot be pickled).  This is what makes a resident daemon
      compile-once/serve-many.
    * **disk tier** — pickled artifacts under ``root`` shared across
      processes; survives daemon restarts and plain CLI runs.
      ``root=None`` disables it (memory-only cache).

    ``durable=False`` on :meth:`put` keeps an artifact memory-only
    (used for the ``lower`` stage, whose closures don't pickle).
    """

    def __init__(self, root: Optional[str] = None, sink=None,
                 max_memory_entries: int = 32):
        self.root = root
        self.sink = sink
        self.max_memory_entries = max_memory_entries
        self._mem: "OrderedDict[tuple, object]" = OrderedDict()
        #: memory-only entries (``durable=False``): evicted last, since
        #: durable entries can always be reloaded from disk
        self._volatile: set = set()
        self._lock = Lock()
        #: cumulative per-stage counters (daemon ``stats`` op)
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    # -- paths ------------------------------------------------------------
    def _entry_path(self, stage: str, key: str) -> str:
        return os.path.join(self.root, stage, key[:2], f"{key}.pkl")

    def entry_exists(self, stage: str, key: str) -> bool:
        return (self.root is not None
                and os.path.exists(self._entry_path(stage, key)))

    # -- core -------------------------------------------------------------
    def get(self, stage: str, key: str, memory_only: bool = False):
        """The artifact for (stage, key), or :data:`MISS`."""
        mem_key = (stage, key)
        with self._lock:
            if mem_key in self._mem:
                self._mem.move_to_end(mem_key)
                self.hits[stage] = self.hits.get(stage, 0) + 1
                return self._mem[mem_key]
        if not memory_only and self.root is not None:
            value = self._disk_get(stage, key)
            if value is not MISS:
                self._remember(mem_key, value)
                with self._lock:
                    self.hits[stage] = self.hits.get(stage, 0) + 1
                return value
        with self._lock:
            self.misses[stage] = self.misses.get(stage, 0) + 1
        return MISS

    def put(self, stage: str, key: str, value, durable: bool = True,
            nid_floor: int = 0) -> None:
        """Store an artifact.  ``nid_floor`` is the largest AST nid
        reachable from ``value`` (recorded so deserializing readers can
        reserve the id range)."""
        self._remember((stage, key), value, volatile=not durable)
        if durable and self.root is not None:
            self._disk_put(stage, key, value, nid_floor)

    def _remember(self, mem_key: tuple, value,
                  volatile: bool = False) -> None:
        with self._lock:
            self._mem[mem_key] = value
            self._mem.move_to_end(mem_key)
            if volatile:
                self._volatile.add(mem_key)
            else:
                self._volatile.discard(mem_key)
            while len(self._mem) > self.max_memory_entries:
                # LRU, but spare memory-only artifacts (e.g. the
                # ``lower`` stage's live compilers) while any
                # disk-reloadable entry remains
                victim = next(
                    (k for k in self._mem if k not in self._volatile),
                    None)
                if victim is None:
                    victim = next(iter(self._mem))
                del self._mem[victim]
                self._volatile.discard(victim)

    # -- disk tier --------------------------------------------------------
    def _disk_get(self, stage: str, key: str):
        from .. import __version__
        path = self._entry_path(stage, key)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (not isinstance(envelope, dict)
                    or envelope.get("version") != __version__):
                # keys fold the version in already; treat drift
                # (hand-copied entries) as a plain miss
                return MISS
            ast.reserve_nids(int(envelope.get("nid_floor", 0)))
            return envelope["payload"]
        except FileNotFoundError:
            return MISS
        except OSError as exc:
            if exc.errno in (errno.EACCES, errno.EPERM):
                return MISS
            self._quarantine_entry(stage, key, path, exc)
            return MISS
        except Exception as exc:
            self._quarantine_entry(stage, key, path, exc)
            return MISS

    def _quarantine_entry(self, stage, key, path, exc) -> None:
        """Delete a damaged entry and report it; the caller recompiles
        from the last good stage."""
        try:
            os.unlink(path)
        except OSError:
            pass
        if self.sink is not None:
            self.sink.warning(
                "CACHE-CORRUPT",
                f"cache entry {stage}/{key[:12]}… is corrupt "
                f"({type(exc).__name__}: {exc}); entry dropped, stage "
                "recompiled", phase="cache",
                data={"stage": stage, "key": key},
            )

    def _disk_put(self, stage: str, key: str, value,
                  nid_floor: int) -> None:
        from .. import __version__
        path = self._entry_path(stage, key)
        try:
            payload = pickle.dumps(
                {"version": __version__, "nid_floor": nid_floor,
                 "payload": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            return  # unpicklable artifact: memory-tier only
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with _EntryLock(path + ".lock"):
                if os.path.exists(path):
                    return  # a concurrent writer got there first
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), prefix=".tmp-",
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(payload)
                    os.replace(tmp, path)  # atomic publish
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            pass  # read-only / full cache dir: stay memory-only

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "root": self.root,
                "memory_entries": len(self._mem),
                "hits": dict(self.hits),
                "misses": dict(self.misses),
            }

    def clear_memory(self) -> None:
        with self._lock:
            self._mem.clear()
            self._volatile.clear()
