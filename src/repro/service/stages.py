"""The staged pipeline API: compile a :class:`~repro.service.Job`
through explicit, separately memoizable stages.

Stage chain and cache-key anatomy (every key is a chained SHA-256; the
chain head folds in ``repro.__version__`` so a version bump invalidates
everything)::

    parse    = H(version, source)
    sema     = H(parse)
    profile  = H(sema, loop_labels, entry, engine)
    classify = H(profile, cert_schema, commutative)
    expand   = H(classify, OptFlags, layout, expansion_source, strict)
    optimize = H(expand)
    plan     = H(optimize)
    lower    = H(plan, engine)            [memory tier only]
    lower-native = H(lower, abi, cflags, cc)  [native engine only;
                                           memory tier + .so disk cache]
    baseline = H(sema, entry, engine)     [side stage, run phase]

Each chain artifact is a *cumulative context snapshot* — the program,
sema, profiles and transform state pickled together — so AST object
identity between stages survives serialization, and a hit at depth *k*
implies hits for every stage above it.  The ``lower`` artifact holds
closure-compiled bytecode, which cannot pickle; it lives in the memory
tier only, where a resident daemon keeps it warm (this is the durable
successor of the bytecode tier's ``WeakKeyDictionary`` memo).

In permissive mode the transform stages run as one monolithic unit
(quarantine/bisect semantics are whole-transform properties) and only
a *clean* result — no diagnostics, no quarantined loops — is cached,
under the ``plan`` key.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..analysis import commutative as _commutative
from ..analysis.access_classes import build_access_classes
from ..analysis.privatization import classify
from ..analysis.profiler import profile_loop
from ..diagnostics import DiagnosticSink
from ..frontend import ast, parse
from ..frontend.sema import analyze
from ..obs import ensure_tracer
from ..transform.pipeline import (
    ExpansionPipeline, expand_for_threads, record_transform_metrics,
)
from .cache import MISS, StageCache
from .job import Job

#: the chain, shallowest first (``baseline`` is a side stage keyed off
#: ``sema``, probed by the run phase; ``lower-native`` joins the chain
#: only when the job's engine is "native")
STAGES = ("parse", "sema", "profile", "classify", "expand", "optimize",
          "plan", "lower", "lower-native")

#: transform stages that collapse into one monolithic unit when the
#: job is permissive
_TRANSFORM_STAGES = ("profile", "classify", "expand", "optimize", "plan")


def _h(prev: str, *parts) -> str:
    digest = hashlib.sha256()
    digest.update(prev.encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return digest.hexdigest()


def stage_keys(job: Job) -> Dict[str, str]:
    """All stage keys for ``job`` (derivable without running anything:
    the chain hashes inputs, not artifacts)."""
    from .. import __version__
    opts = job.options
    engine = opts.resolved_engine()
    keys: Dict[str, str] = {}
    keys["parse"] = _h(_h("repro", __version__), job.source)
    keys["sema"] = _h(keys["parse"])
    keys["profile"] = _h(keys["sema"], job.loop_labels, opts.entry,
                         engine)
    # the certificate schema is part of the classify artifact: a schema
    # bump (or toggling the prover) must re-prove, never reuse a stale
    # cached certificate
    keys["classify"] = _h(keys["profile"],
                          _commutative.CERT_SCHEMA_VERSION,
                          opts.commutative)
    keys["expand"] = _h(keys["classify"], opts.opt, opts.layout,
                        opts.expansion_source, opts.strict)
    keys["optimize"] = _h(keys["expand"])
    keys["plan"] = _h(keys["optimize"])
    keys["lower"] = _h(keys["plan"], engine)
    # the native lowering folds everything a .so depends on that the
    # chain above does not already: codegen ABI, opt flags, and the
    # host compiler's identity (path + version).  The key exists for
    # every engine (key derivation must be total); only native jobs
    # put the stage in their chain.
    from ..interp.native import NATIVE_ABI_VERSION
    from ..interp.native.backend import CFLAGS, cc_identity
    keys["lower-native"] = _h(keys["lower"], NATIVE_ABI_VERSION,
                              CFLAGS, cc_identity())
    keys["baseline"] = _h(keys["sema"], opts.entry, engine)
    return keys


class StageContext:
    """Mutable compile state threaded through the stages; the slice of
    it populated so far is what each chain artifact snapshots."""

    #: chain fields in population order — the snapshot schema
    CHAIN_FIELDS = ("program", "sema", "profiles", "privs", "result")

    def __init__(self, job: Job):
        self.job = job
        self.program = None
        self.sema = None
        self.profiles: Optional[Dict[str, object]] = None
        self.privs: Optional[Dict[str, object]] = None
        self.result = None
        #: transient — live pipeline carrying mid-transform state
        self.pipeline: Optional[ExpansionPipeline] = None
        #: transient — lower-stage compilers (memory tier only)
        self.compilers: Optional[dict] = None
        #: content fingerprint of the transformed program (process
        #: backend + session-pool key); filled by the lower stage
        self.fingerprint: Optional[str] = None
        #: transient — native contexts (lowering + dlopen'd .so) for
        #: the transformed and original programs; memory tier only,
        #: the .so artifacts themselves are cached on disk beside the
        #: stage cache (filled by the lower-native stage)
        self.native = None
        self.native_baseline = None

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.CHAIN_FIELDS
                if getattr(self, name) is not None}

    def restore(self, artifact: dict) -> None:
        for name in self.CHAIN_FIELDS:
            if name in artifact:
                setattr(self, name, artifact[name])
        self.pipeline = None

    def nid_floor(self) -> int:
        roots = [self.program]
        if self.result is not None:
            roots.append(self.result.program)
        return ast.max_nid(*roots)

    def loops(self) -> List[ast.LoopStmt]:
        return [ast.find_loop(self.program, label)
                for label in self.job.loop_labels]


class CompiledJob:
    """Everything :func:`repro.service.run_job` needs to execute a
    compiled job, plus the per-request cache report."""

    def __init__(self, job: Job, ctx: StageContext,
                 keys: Dict[str, str], report: Dict[str, str]):
        self.job = job
        self.ctx = ctx
        self.keys = keys
        #: stage -> "hit" | "miss" for this request
        self.report = report

    @property
    def program(self):
        return self.ctx.program

    @property
    def sema(self):
        return self.ctx.sema

    @property
    def result(self):
        return self.ctx.result

    @property
    def hits(self) -> int:
        return sum(1 for v in self.report.values() if v == "hit")

    @property
    def stage_count(self) -> int:
        return len(self.report)


class StagedCompiler:
    """Drives a :class:`Job` through the stage chain with a cache probe
    between each stage.

    ``cache=None`` still works (every stage computes) so the staged API
    is usable without a cache directory; with a shared
    :class:`StageCache` a second identical job performs zero parse /
    sema / profile / classify / transform / lower work.
    """

    def __init__(self, cache: Optional[StageCache] = None, tracer=None,
                 sink: Optional[DiagnosticSink] = None):
        self.cache = cache
        self.tracer = ensure_tracer(tracer)
        self.sink = sink if sink is not None else DiagnosticSink()
        if cache is not None and cache.sink is None:
            cache.sink = self.sink

    # -- public -----------------------------------------------------------
    def compile(self, job: Job) -> CompiledJob:
        keys = stage_keys(job)
        ctx = StageContext(job)
        report: Dict[str, str] = {}
        chain = self._chain_for(job)
        start = self._probe(job, keys, ctx, chain, report)
        for stage in chain[start:]:
            self._compute(stage, job, ctx, keys)
            report[self._label(stage)] = "miss"
        self._note(report)
        return CompiledJob(job, ctx, keys, report)

    # -- probing ----------------------------------------------------------
    def _chain_for(self, job: Job) -> Tuple[str, ...]:
        native = job.options.resolved_engine() == "native"
        if job.options.strict:
            return STAGES if native else STAGES[:-1]
        # permissive: the transform is one monolithic, bisectable unit
        chain = ("parse", "sema", "transform", "lower")
        return chain + ("lower-native",) if native else chain

    def _probe(self, job: Job, keys, ctx, chain, report) -> int:
        """Load the deepest cached artifact; returns the index of the
        first stage that must compute."""
        if self.cache is None:
            return 0
        for i in range(len(chain) - 1, -1, -1):
            stage = chain[i]
            key = keys[self._key_name(stage)]
            artifact = self.cache.get(
                self._label(stage), key,
                memory_only=stage in ("lower", "lower-native"))
            if artifact is MISS:
                continue
            self._load(stage, artifact, ctx)
            for done in chain[:i + 1]:
                report[self._label(done)] = "hit"
            if stage in ("plan", "transform", "lower") \
                    and ctx.result is not None:
                record_transform_metrics(ctx.result, self.tracer)
            return i + 1
        return 0

    def _label(self, stage: str) -> str:
        # the permissive monolithic unit reports under the chain's
        # stage vocabulary (its artifact lives under the "plan" key)
        return stage if stage != "transform" else "plan"

    def _key_name(self, stage: str) -> str:
        return stage if stage != "transform" else "plan"

    def _load(self, stage: str, artifact, ctx: StageContext) -> None:
        if stage in ("lower", "lower-native"):
            # these artifacts are the complete context (consistent
            # object graph including compilers / native contexts)
            loaded: StageContext = artifact
            ctx.restore(loaded.snapshot())
            ctx.compilers = loaded.compilers
            ctx.fingerprint = loaded.fingerprint
            ctx.native = loaded.native
            ctx.native_baseline = loaded.native_baseline
        else:
            ctx.restore(artifact)

    # -- computing --------------------------------------------------------
    def _compute(self, stage: str, job: Job, ctx: StageContext,
                 keys) -> None:
        getattr(self, f"_stage_{stage.replace('-', '_')}")(job, ctx)
        memory_only = stage in ("lower", "lower-native")
        if self.cache is not None:
            if stage == "transform" and not self._clean(ctx):
                return  # only clean permissive results are cacheable
            artifact = ctx if memory_only else ctx.snapshot()
            self.cache.put(self._label(stage),
                           keys[self._key_name(stage)], artifact,
                           durable=not memory_only,
                           nid_floor=ctx.nid_floor())

    def _clean(self, ctx: StageContext) -> bool:
        result = ctx.result
        return (result is not None and not result.quarantined
                and not result.diagnostics)

    def _pipeline_for(self, ctx: StageContext) -> ExpansionPipeline:
        job = ctx.job
        opts = job.options
        pipeline = ExpansionPipeline(
            ctx.program, ctx.sema, list(job.loop_labels),
            optimize=opts.flags, expansion_source=opts.expansion_source,
            entry=opts.entry, profiles=ctx.profiles, layout=opts.layout,
            strict=True, sink=self.sink, tracer=self.tracer,
            commutative=opts.commutative,
        )
        if ctx.result is not None:
            pipeline.result = ctx.result
        return pipeline

    def _stage_parse(self, job: Job, ctx: StageContext) -> None:
        with self.tracer.phase("parse", bytes=len(job.source)):
            ctx.program = parse(job.source)

    def _stage_sema(self, job: Job, ctx: StageContext) -> None:
        with self.tracer.phase("sema"):
            ctx.sema = analyze(ctx.program)

    def _stage_profile(self, job: Job, ctx: StageContext) -> None:
        profiles = {}
        for loop in ctx.loops():
            with self.tracer.phase("profile", loop=loop.label):
                profiles[loop.label] = profile_loop(
                    ctx.program, ctx.sema, loop, job.options.entry,
                )
        ctx.profiles = profiles

    def _stage_classify(self, job: Job, ctx: StageContext) -> None:
        privs = {}
        loops = {loop.label: loop for loop in ctx.loops()}
        for label in job.loop_labels:
            profile = ctx.profiles[label]
            with self.tracer.phase("classify", loop=label):
                priv = classify(
                    profile.ddg, build_access_classes(profile.ddg)
                )
                if job.options.commutative:
                    _commutative.upgrade_commutative(
                        ctx.program, ctx.sema, loops[label], profile,
                        priv,
                    )
                privs[label] = priv
        ctx.privs = privs

    def _stage_expand(self, job: Job, ctx: StageContext) -> None:
        pipeline = self._pipeline_for(ctx)
        pipeline.result = None  # stage_expand resets it
        pipeline.stage_expand(ctx.loops(), ctx.profiles, ctx.privs)
        ctx.result = pipeline.result
        ctx.pipeline = pipeline

    def _stage_optimize(self, job: Job, ctx: StageContext) -> None:
        pipeline = ctx.pipeline or self._pipeline_for(ctx)
        pipeline.stage_optimize(ctx.loops())
        ctx.result = pipeline.result
        ctx.pipeline = pipeline

    def _stage_plan(self, job: Job, ctx: StageContext) -> None:
        pipeline = ctx.pipeline or self._pipeline_for(ctx)
        pipeline.stage_plan(ctx.loops(), ctx.profiles, ctx.privs)
        result = pipeline.result
        result.diagnostics = list(self.sink.diagnostics)
        result.quarantined = list(pipeline.quarantined)
        ctx.result = result
        ctx.pipeline = None
        record_transform_metrics(result, self.tracer)

    def _stage_transform(self, job: Job, ctx: StageContext) -> None:
        """Permissive mode: profile → plan as one unit, preserving the
        quarantine / bisection / identity-fallback semantics exactly."""
        opts = job.options
        result = expand_for_threads(
            ctx.program, ctx.sema, list(job.loop_labels),
            optimize=opts.flags, expansion_source=opts.expansion_source,
            entry=opts.entry, layout=opts.layout, strict=False,
            sink=self.sink, tracer=self.tracer,
            commutative=opts.commutative,
        )
        ctx.result = result
        ctx.profiles = {tl.loop.label: tl.profile for tl in result.loops}

    def _stage_lower(self, job: Job, ctx: StageContext) -> None:
        """Eagerly build the closure-compiled code every run phase
        needs: the instrumented + bare variants of the transformed
        program (parallel run / process workers) and the bare variant
        of the original (sequential baseline)."""
        from ..frontend import print_program
        from ..interp.bytecode.compiler import (
            BARE, INSTRUMENTED, precompile, source_fingerprint,
        )
        result = ctx.result
        ctx.fingerprint = source_fingerprint(print_program(result.program))
        engine = job.options.resolved_engine()
        if engine == "ast":
            ctx.compilers = {}
            return
        with self.tracer.phase("lower", engine=engine):
            ctx.compilers = {
                "parallel": precompile(result.program, result.sema,
                                       INSTRUMENTED, self.tracer),
                "workers": precompile(result.program, result.sema, BARE,
                                      self.tracer,
                                      fingerprint=ctx.fingerprint),
                "baseline": precompile(ctx.program, ctx.sema, BARE,
                                       self.tracer),
            }

    def _stage_lower_native(self, job: Job, ctx: StageContext) -> None:
        """Lower the transformed + original programs to C, compile and
        dlopen the .so entry points.  The artifact (dlopen handles)
        lives in the memory tier; the compiled .so is content-cached on
        disk beside the stage cache, so a daemon restart re-lowers but
        never re-invokes the C compiler."""
        import os
        from ..interp.native import (
            native_backend_available, native_context_for,
        )
        ok, reason = native_backend_available()
        if not ok:
            # graceful degradation: the run phase's machines carry the
            # same probe verdict and fall back to bytecode-bare
            self.sink.warning(
                "NL-UNAVAILABLE",
                f"native backend unavailable ({reason}); the run "
                f"phase degrades to bytecode-bare",
                phase="lower-native")
            return
        so_dir = None
        if self.cache is not None and self.cache.root:
            so_dir = os.path.join(self.cache.root, "native-so")
        result = ctx.result
        with self.tracer.phase("lower-native"):
            ctx.native = native_context_for(
                result.program, result.sema, cache_dir=so_dir)
            ctx.native_baseline = native_context_for(
                ctx.program, ctx.sema, cache_dir=so_dir)
        if self.tracer:
            metrics = self.tracer.metrics
            for c in (ctx.native, ctx.native_baseline):
                metrics.inc("native.so_cache_hit" if c.lib.cache_hit
                            else "native.so_cache_miss")
                metrics.inc("native.compile_seconds",
                            c.lib.compile_seconds)

    # -- observability ----------------------------------------------------
    def _note(self, report: Dict[str, str]) -> None:
        if not self.tracer:
            return
        metrics = self.tracer.metrics
        for stage, status in report.items():
            metrics.inc(f"cache.{stage}.{status}")
            metrics.inc(f"cache.{status}")
