"""The canonical request object of the toolchain.

:class:`CompileOptions` captures everything that determines the
*compiled artifact* — the inputs of the stage-cache keys — and
:class:`Job` adds the run-side parameters (thread count, backend,
scheduling) plus the source itself.  One frozen value object replaces
the kwarg sprawl that grew across ``expand_and_run``, ``run_parallel``
and the CLI: the same ``Job`` drives the in-process API, the pipeline
stages, and the ``repro serve`` wire protocol (``to_dict`` /
``from_dict`` are the line-JSON encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

from ..transform.pipeline import OptFlags

#: OptFlags field order used by :attr:`CompileOptions.opt`
OPT_FIELDS = (
    "selective_promotion", "trivial_span_elim", "constant_spans",
    "hoisting", "licm",
)

LAYOUTS = ("bonded", "interleaved", "adaptive")
EXPANSION_SOURCES = ("static", "profile")
BACKENDS = ("simulated", "process")


def _opt_tuple(optimize) -> Tuple[bool, ...]:
    """Normalize bool / OptFlags / tuple to the canonical 5-tuple."""
    if isinstance(optimize, (tuple, list)):
        if len(optimize) != len(OPT_FIELDS):
            raise ValueError(
                f"opt tuple needs {len(OPT_FIELDS)} entries "
                f"({', '.join(OPT_FIELDS)}), got {len(optimize)}"
            )
        return tuple(bool(v) for v in optimize)
    flags = OptFlags.from_bool(optimize)
    return tuple(bool(getattr(flags, name)) for name in OPT_FIELDS)


@dataclass(frozen=True)
class CompileOptions:
    """Everything that shapes the compiled artifact (and therefore the
    stage-cache key): §3.4 optimization toggles, copy layout, expansion
    set source, entry point, strictness and interpreter tier."""

    #: §3.4 toggles in :data:`OPT_FIELDS` order; build via :meth:`make`
    #: to accept a bool or an :class:`~repro.transform.OptFlags`
    opt: Tuple[bool, ...] = (True, True, True, True, True)
    layout: str = "bonded"
    expansion_source: str = "static"
    entry: str = "main"
    strict: bool = True
    #: interpreter tier, or None for ``$REPRO_ENGINE`` / the default
    engine: Optional[str] = None
    #: run the static commutativity prover and upgrade proven
    #: reductions to the commutative access class (§3.2 extension)
    commutative: bool = True

    def __post_init__(self):
        object.__setattr__(self, "opt", _opt_tuple(self.opt))
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}")
        if self.expansion_source not in EXPANSION_SOURCES:
            raise ValueError(
                f"expansion_source must be one of {EXPANSION_SOURCES}"
            )

    @classmethod
    def make(cls, optimize=True, **kwargs) -> "CompileOptions":
        """Like the constructor, with ``optimize`` accepting the legacy
        bool / :class:`OptFlags` spellings."""
        return cls(opt=_opt_tuple(optimize), **kwargs)

    @property
    def flags(self) -> OptFlags:
        return OptFlags(*self.opt)

    def resolved_engine(self) -> str:
        from ..interp import resolve_engine
        return resolve_engine(self.engine)

    def to_dict(self) -> dict:
        return {
            "opt": list(self.opt),
            "layout": self.layout,
            "expansion_source": self.expansion_source,
            "entry": self.entry,
            "strict": self.strict,
            "engine": self.engine,
            "commutative": self.commutative,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown CompileOptions fields: {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class Job:
    """One compile-and-run request: source + candidate loops +
    :class:`CompileOptions` + run-side parameters."""

    source: str
    loop_labels: Tuple[str, ...]
    options: CompileOptions = field(default_factory=CompileOptions)
    nthreads: int = 4
    chunk: int = 1
    check_races: bool = True
    watchdog: Optional[int] = None
    backend: str = "simulated"
    workers: Optional[int] = None
    #: verify parallel output against the sequential baseline
    verify: bool = True

    def __post_init__(self):
        if isinstance(self.loop_labels, str):
            raise TypeError("loop_labels must be a sequence of labels, "
                            "not a single string")
        object.__setattr__(self, "loop_labels",
                           tuple(self.loop_labels))
        if isinstance(self.options, dict):
            object.__setattr__(self, "options",
                               CompileOptions.from_dict(self.options))
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.nthreads < 1:
            raise ValueError("nthreads must be >= 1")

    @classmethod
    def from_kwargs(cls, source: str, loop_labels, nthreads: int = 4,
                    optimize=True, *, entry: str = "main",
                    strict: bool = True, chunk: int = 1,
                    watchdog: Optional[int] = None,
                    layout: str = "bonded",
                    expansion_source: str = "static",
                    check_races: bool = True,
                    engine: Optional[str] = None,
                    commutative: bool = True,
                    backend: str = "simulated",
                    workers: Optional[int] = None,
                    verify: bool = True) -> "Job":
        """Build a Job from the pre-1.5 kwarg surface (the deprecation
        shims in :func:`repro.expand_and_run` / ``run_parallel`` route
        through this)."""
        options = CompileOptions.make(
            optimize, layout=layout, expansion_source=expansion_source,
            entry=entry, strict=strict, engine=engine,
            commutative=commutative,
        )
        return cls(source=source, loop_labels=tuple(loop_labels),
                   options=options, nthreads=nthreads, chunk=chunk,
                   check_races=check_races, watchdog=watchdog,
                   backend=backend, workers=workers, verify=verify)

    def with_options(self, **kwargs) -> "Job":
        """A copy with ``options`` fields replaced."""
        return replace(self, options=replace(self.options, **kwargs))

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "loop_labels": list(self.loop_labels),
            "options": self.options.to_dict(),
            "nthreads": self.nthreads,
            "chunk": self.chunk,
            "check_races": self.check_races,
            "watchdog": self.watchdog,
            "backend": self.backend,
            "workers": self.workers,
            "verify": self.verify,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown Job fields: {sorted(unknown)}")
        if "source" not in payload or "loop_labels" not in payload:
            raise ValueError("a job needs 'source' and 'loop_labels'")
        return cls(**payload)
