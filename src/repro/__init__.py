"""repro: reproduction of "General Data Structure Expansion for
Multi-threading" (Yu, Ko, Li — PLDI 2013).

The package is a complete toolchain around the paper's compiler
technique:

* :mod:`repro.frontend` — MiniC (C subset) lexer/parser/types/sema
* :mod:`repro.interp`   — byte-accurate interpreter with a cycle model
* :mod:`repro.analysis` — dependence profiling, access classes,
  privatizability (Definitions 1-5), Andersen points-to
* :mod:`repro.transform` — the paper's contribution: fat-pointer
  promotion, span computation, data structure expansion, redirection,
  and the §3.4 optimizations
* :mod:`repro.runtime`  — simulated N-thread execution (DOALL static /
  DOACROSS dynamic scheduling) with race checking, plus a true
  multi-core process backend over OS shared memory
  (``backend="process"``)
* :mod:`repro.baselines` — SpiceC-style runtime privatization and the
  sync-only baseline
* :mod:`repro.bench`    — the eight benchmark kernels plus harness and
  report generators for every table/figure in the paper
* :mod:`repro.obs`      — observability: phase tracing, per-thread
  runtime timelines, metrics, Chrome trace-event export

Quick start::

    from repro import expand_and_run

    outcome = expand_and_run(source, loop_labels=["L"], nthreads=4)
    print(outcome.output, outcome.loop_speedup)

With observability::

    from repro import expand_and_run
    from repro.obs import write_chrome_trace

    outcome = expand_and_run(source, ["L"], nthreads=4, trace=True)
    print(outcome.trace.metrics.as_dict())
    write_chrome_trace(outcome.trace, "out.json")   # chrome://tracing
"""

from typing import List, Optional

from .diagnostics import (
    Diagnostic, DiagnosableError, DiagnosticSink, diagnostic_of,
)
from .frontend import parse_and_analyze, print_program
from .interp import ENGINES, Machine, resolve_engine, run_source
from .obs import (
    MetricsRegistry, NULL_TRACER, NullTracer, Tracer, chrome_trace,
    trace_summary, write_chrome_trace,
)
from .transform import OptFlags, TransformResult, expand_for_threads
from .runtime import (
    CopyIndexSkew, FaultInjector, HeartbeatStaller, ParallelOutcome,
    ProcessChaosInjector, SpanCorruptor, SyncTokenDropper,
    ThreadAborter, TokenPostDelayer, TokenPostDropper, WorkerCrash,
    WorkerKiller, parse_chaos_spec, process_backend_available,
    run_parallel,
)


class OutputDivergence(DiagnosableError, AssertionError):
    """The parallel run computed different program output than the
    sequential original (subclasses :class:`AssertionError` for
    backward compatibility with pre-1.1 callers)."""

    default_code = "RT-DIVERGED"
    default_phase = "runtime"


class ExpandAndRunOutcome:
    """Convenience bundle returned by :func:`expand_and_run`."""

    def __init__(self, transform: TransformResult,
                 sequential: Machine, parallel: ParallelOutcome,
                 diagnostics: Optional[List[Diagnostic]] = None,
                 trace: Optional[Tracer] = None,
                 verified: bool = True):
        self.transform = transform
        self.sequential = sequential
        self.parallel = parallel
        self.output = parallel.output
        self.races = parallel.races
        #: structured findings from transform + runtime (quarantines,
        #: recoveries, divergence), in emission order
        self.diagnostics = list(diagnostics or [])
        #: the :class:`repro.obs.Tracer` observing the run, or None
        self.trace = trace
        #: parallel output matched the sequential original
        self.verified = verified

    @property
    def loop_speedup(self) -> float:
        """Candidate-loop speedup of the parallel run over sequential."""
        par = sum(
            ex.makespan + ex.runtime_cycles
            for ex in self.parallel.loops.values()
        )
        seq = sum(tl.profile.loop_cycles for tl in self.transform.loops)
        return seq / par if par else 0.0

    @property
    def total_speedup(self) -> float:
        return (self.sequential.cost.cycles / self.parallel.total_cycles
                if self.parallel.total_cycles else 0.0)


class _SequentialFacade:
    """Stand-in for the sequential baseline :class:`Machine` when the
    baseline came out of the stage cache instead of a live run."""

    class _Cost:
        def __init__(self, cycles):
            self.cycles = cycles

    def __init__(self, baseline: Optional[dict]):
        baseline = baseline or {}
        self.output = list(baseline.get("output", []))
        self.exit_code = baseline.get("exit_code", 0)
        self.cost = self._Cost(baseline.get("cycles", 0))


#: sentinel marking a config kwarg the caller did not pass
_UNSET = object()

_LEGACY_EXPAND_WARNING = (
    "passing compile/run configuration kwargs ({names}) to "
    "expand_and_run() is deprecated; build a repro.service.Job and "
    "pass job=..."
)


def expand_and_run(source: Optional[str] = None, loop_labels=None,
                   nthreads: int = 4,
                   optimize=True, *,
                   entry=_UNSET,
                   strict=_UNSET,
                   sink: Optional[DiagnosticSink] = None,
                   chunk=_UNSET,
                   watchdog=_UNSET,
                   layout=_UNSET,
                   expansion_source=_UNSET,
                   check_races=_UNSET,
                   tracer: Optional[Tracer] = None,
                   trace: bool = False,
                   engine=_UNSET,
                   job=None,
                   cache=None,
                   pool=None) -> ExpandAndRunOutcome:
    """One-call API: parse, analyze, profile, expand, run in parallel.

    The labeled loops must carry ``#pragma expand parallel(doall)`` or
    ``parallel(doacross)`` annotations.  The parallel run's output is
    verified against the sequential original.

    ``optimize`` accepts a bool (all §3.4 optimizations on/off) or an
    :class:`~repro.transform.OptFlags` for per-optimization ablation.

    ``strict=True`` (default) raises :class:`OutputDivergence` when the
    parallel output differs from sequential, and fails fast on pipeline
    or runtime faults.  ``strict=False`` degrades gracefully instead:
    failing loops are quarantined, races/faults recover by sequential
    re-execution, and a divergence is recorded as an ``RT-DIVERGED``
    diagnostic with ``outcome.verified == False``.

    ``entry``, ``chunk``, ``watchdog``, ``layout``,
    ``expansion_source`` and ``sink`` forward to
    :func:`~repro.transform.expand_for_threads` and
    :func:`~repro.runtime.run_parallel`.

    ``trace=True`` (or an explicit ``tracer=``) records phase spans,
    the per-thread runtime timeline and the transform/runtime metrics;
    the tracer is attached as ``outcome.trace``.

    ``engine`` picks the interpreter tier (see
    :data:`repro.interp.ENGINES`; defaults to ``$REPRO_ENGINE``).  The
    sequential verification baseline needs no observers, so under the
    bytecode engine it runs the bare variant; the parallel run itself
    uses the instrumented variant.

    ``job`` (a :class:`repro.service.Job`) is the canonical way to pass
    the whole configuration as one value object; the individual config
    kwargs remain as a deprecated shim.  ``cache`` (a
    :class:`repro.service.StageCache`) routes the compile through the
    staged pipeline — every stage is probed from / published to the
    cache — and ``pool`` (a :class:`repro.service.SessionPool`) lets a
    process-backend job draw a warm worker session.
    """
    if tracer is None:
        tracer = Tracer() if trace else NULL_TRACER
    sink = sink if sink is not None else DiagnosticSink()

    given = {name: value for name, value in (
        ("entry", entry), ("strict", strict), ("chunk", chunk),
        ("watchdog", watchdog), ("layout", layout),
        ("expansion_source", expansion_source),
        ("check_races", check_races), ("engine", engine),
    ) if value is not _UNSET}
    if job is not None:
        if source is not None or loop_labels is not None or given:
            extras = sorted(given)
            if source is not None:
                extras.insert(0, "source")
            raise TypeError(
                "expand_and_run() got both job= and the legacy "
                f"arguments {extras}; the Job already carries them"
            )
    else:
        if source is None or loop_labels is None:
            raise TypeError(
                "expand_and_run() needs source and loop_labels "
                "(or job=)"
            )
        if given:
            import warnings
            warnings.warn(
                _LEGACY_EXPAND_WARNING.format(
                    names=", ".join(sorted(given))),
                DeprecationWarning, stacklevel=2,
            )
        job = service.Job.from_kwargs(
            source, loop_labels, nthreads, optimize, **given)

    if cache is not None or pool is not None:
        # staged pipeline path: memoizable stages + cached baseline +
        # (optionally) a pooled warm session
        compiled = service.StagedCompiler(
            cache=cache, tracer=tracer, sink=sink,
        ).compile(job)
        job_outcome = service.run_job(compiled, tracer=tracer,
                                      sink=sink, pool=pool, cache=cache)
        result = ExpandAndRunOutcome(
            compiled.result, _SequentialFacade(job_outcome.baseline),
            job_outcome.parallel,
            diagnostics=job_outcome.diagnostics,
            trace=tracer if tracer else None,
            verified=job_outcome.verified,
        )
        #: per-stage "hit"/"miss" report of the staged compile
        result.cache_report = job_outcome.cache
        return result

    opts = job.options
    program, sema = parse_and_analyze(job.source, tracer=tracer)
    eng = resolve_engine(opts.engine)
    with tracer.phase("sequential-baseline"):
        seq = Machine(program, sema,
                      engine="bytecode-bare" if eng != "ast" else "ast")
        seq.exit_code = seq.run(opts.entry)
    transform = expand_for_threads(
        program, sema, list(job.loop_labels), optimize=opts.flags,
        expansion_source=opts.expansion_source, entry=opts.entry,
        layout=opts.layout, strict=opts.strict, sink=sink,
        tracer=tracer,
    )
    outcome = run_parallel(transform, sink=sink, tracer=tracer,
                           job=job.with_options(engine=eng))
    verified = outcome.output == seq.output
    if not verified:
        message = (
            f"parallel output diverged: {outcome.output} != {seq.output}"
        )
        if opts.strict:
            exc = OutputDivergence(message)
            sink.emit(exc.diagnostic)
            raise exc
        sink.error("RT-DIVERGED", message, phase="runtime")
    result = ExpandAndRunOutcome(
        transform, seq, outcome,
        diagnostics=list(sink.diagnostics),
        trace=tracer if tracer else None,
        verified=verified,
    )
    result.cache_report = None
    return result


__version__ = "1.7.0"

# the service layer resolves __version__ lazily for cache keys, so it
# imports after the version is bound
from . import service
from .service import (
    CompileOptions, ExpansionService, Job, SessionPool, StageCache,
    StagedCompiler, run_job,
)

#: the stable public surface; everything else is implementation detail
__all__ = [
    # one-call workflow
    "expand_and_run", "ExpandAndRunOutcome", "OutputDivergence",
    # frontend / interpreter
    "parse_and_analyze", "print_program", "Machine", "run_source",
    "ENGINES", "resolve_engine",
    # transform
    "expand_for_threads", "TransformResult", "OptFlags",
    # runtime
    "run_parallel", "ParallelOutcome", "process_backend_available",
    "WorkerCrash",
    # diagnostics
    "Diagnostic", "DiagnosticSink", "DiagnosableError", "diagnostic_of",
    # observability
    "Tracer", "NullTracer", "NULL_TRACER", "MetricsRegistry",
    "chrome_trace", "write_chrome_trace", "trace_summary",
    # fault injection
    "FaultInjector", "SpanCorruptor", "CopyIndexSkew",
    "SyncTokenDropper", "ThreadAborter",
    # process-level chaos (supervised backend)
    "ProcessChaosInjector", "WorkerKiller", "HeartbeatStaller",
    "TokenPostDropper", "TokenPostDelayer", "parse_chaos_spec",
    # the resident expansion service (staged pipeline + serve daemon)
    "Job", "CompileOptions", "StageCache", "StagedCompiler",
    "SessionPool", "ExpansionService", "run_job",
]
