"""repro: reproduction of "General Data Structure Expansion for
Multi-threading" (Yu, Ko, Li — PLDI 2013).

The package is a complete toolchain around the paper's compiler
technique:

* :mod:`repro.frontend` — MiniC (C subset) lexer/parser/types/sema
* :mod:`repro.interp`   — byte-accurate interpreter with a cycle model
* :mod:`repro.analysis` — dependence profiling, access classes,
  privatizability (Definitions 1-5), Andersen points-to
* :mod:`repro.transform` — the paper's contribution: fat-pointer
  promotion, span computation, data structure expansion, redirection,
  and the §3.4 optimizations
* :mod:`repro.runtime`  — simulated N-thread execution (DOALL static /
  DOACROSS dynamic scheduling) with race checking, plus a true
  multi-core process backend over OS shared memory
  (``backend="process"``)
* :mod:`repro.baselines` — SpiceC-style runtime privatization and the
  sync-only baseline
* :mod:`repro.bench`    — the eight benchmark kernels plus harness and
  report generators for every table/figure in the paper
* :mod:`repro.obs`      — observability: phase tracing, per-thread
  runtime timelines, metrics, Chrome trace-event export

Quick start::

    from repro import expand_and_run

    outcome = expand_and_run(source, loop_labels=["L"], nthreads=4)
    print(outcome.output, outcome.loop_speedup)

With observability::

    from repro import expand_and_run
    from repro.obs import write_chrome_trace

    outcome = expand_and_run(source, ["L"], nthreads=4, trace=True)
    print(outcome.trace.metrics.as_dict())
    write_chrome_trace(outcome.trace, "out.json")   # chrome://tracing
"""

from typing import List, Optional

from .diagnostics import (
    Diagnostic, DiagnosableError, DiagnosticSink, diagnostic_of,
)
from .frontend import parse_and_analyze, print_program
from .interp import ENGINES, Machine, resolve_engine, run_source
from .obs import (
    MetricsRegistry, NULL_TRACER, NullTracer, Tracer, chrome_trace,
    trace_summary, write_chrome_trace,
)
from .transform import OptFlags, TransformResult, expand_for_threads
from .runtime import (
    CopyIndexSkew, FaultInjector, HeartbeatStaller, ParallelOutcome,
    ProcessChaosInjector, SpanCorruptor, SyncTokenDropper,
    ThreadAborter, TokenPostDelayer, TokenPostDropper, WorkerCrash,
    WorkerKiller, parse_chaos_spec, process_backend_available,
    run_parallel,
)


class OutputDivergence(DiagnosableError, AssertionError):
    """The parallel run computed different program output than the
    sequential original (subclasses :class:`AssertionError` for
    backward compatibility with pre-1.1 callers)."""

    default_code = "RT-DIVERGED"
    default_phase = "runtime"


class ExpandAndRunOutcome:
    """Convenience bundle returned by :func:`expand_and_run`."""

    def __init__(self, transform: TransformResult,
                 sequential: Machine, parallel: ParallelOutcome,
                 diagnostics: Optional[List[Diagnostic]] = None,
                 trace: Optional[Tracer] = None,
                 verified: bool = True):
        self.transform = transform
        self.sequential = sequential
        self.parallel = parallel
        self.output = parallel.output
        self.races = parallel.races
        #: structured findings from transform + runtime (quarantines,
        #: recoveries, divergence), in emission order
        self.diagnostics = list(diagnostics or [])
        #: the :class:`repro.obs.Tracer` observing the run, or None
        self.trace = trace
        #: parallel output matched the sequential original
        self.verified = verified

    @property
    def loop_speedup(self) -> float:
        """Candidate-loop speedup of the parallel run over sequential."""
        par = sum(
            ex.makespan + ex.runtime_cycles
            for ex in self.parallel.loops.values()
        )
        seq = sum(tl.profile.loop_cycles for tl in self.transform.loops)
        return seq / par if par else 0.0

    @property
    def total_speedup(self) -> float:
        return (self.sequential.cost.cycles / self.parallel.total_cycles
                if self.parallel.total_cycles else 0.0)


def expand_and_run(source: str, loop_labels, nthreads: int = 4,
                   optimize=True, *,
                   entry: str = "main",
                   strict: bool = True,
                   sink: Optional[DiagnosticSink] = None,
                   chunk: int = 1,
                   watchdog: Optional[int] = None,
                   layout: str = "bonded",
                   expansion_source: str = "static",
                   check_races: bool = True,
                   tracer: Optional[Tracer] = None,
                   trace: bool = False,
                   engine: Optional[str] = None) -> ExpandAndRunOutcome:
    """One-call API: parse, analyze, profile, expand, run in parallel.

    The labeled loops must carry ``#pragma expand parallel(doall)`` or
    ``parallel(doacross)`` annotations.  The parallel run's output is
    verified against the sequential original.

    ``optimize`` accepts a bool (all §3.4 optimizations on/off) or an
    :class:`~repro.transform.OptFlags` for per-optimization ablation.

    ``strict=True`` (default) raises :class:`OutputDivergence` when the
    parallel output differs from sequential, and fails fast on pipeline
    or runtime faults.  ``strict=False`` degrades gracefully instead:
    failing loops are quarantined, races/faults recover by sequential
    re-execution, and a divergence is recorded as an ``RT-DIVERGED``
    diagnostic with ``outcome.verified == False``.

    ``entry``, ``chunk``, ``watchdog``, ``layout``,
    ``expansion_source`` and ``sink`` forward to
    :func:`~repro.transform.expand_for_threads` and
    :func:`~repro.runtime.run_parallel`.

    ``trace=True`` (or an explicit ``tracer=``) records phase spans,
    the per-thread runtime timeline and the transform/runtime metrics;
    the tracer is attached as ``outcome.trace``.

    ``engine`` picks the interpreter tier (see
    :data:`repro.interp.ENGINES`; defaults to ``$REPRO_ENGINE``).  The
    sequential verification baseline needs no observers, so under the
    bytecode engine it runs the bare variant; the parallel run itself
    uses the instrumented variant.
    """
    if tracer is None:
        tracer = Tracer() if trace else NULL_TRACER
    sink = sink if sink is not None else DiagnosticSink()
    program, sema = parse_and_analyze(source, tracer=tracer)
    eng = resolve_engine(engine)
    with tracer.phase("sequential-baseline"):
        seq = Machine(program, sema,
                      engine="bytecode-bare" if eng != "ast" else "ast")
        seq.exit_code = seq.run(entry)
    transform = expand_for_threads(
        program, sema, list(loop_labels), optimize=optimize,
        expansion_source=expansion_source, entry=entry, layout=layout,
        strict=strict, sink=sink, tracer=tracer,
    )
    outcome = run_parallel(
        transform, nthreads, check_races=check_races, entry=entry,
        chunk=chunk, strict=strict, sink=sink, watchdog=watchdog,
        tracer=tracer, engine=eng,
    )
    verified = outcome.output == seq.output
    if not verified:
        message = (
            f"parallel output diverged: {outcome.output} != {seq.output}"
        )
        if strict:
            exc = OutputDivergence(message)
            sink.emit(exc.diagnostic)
            raise exc
        sink.error("RT-DIVERGED", message, phase="runtime")
    return ExpandAndRunOutcome(
        transform, seq, outcome,
        diagnostics=list(sink.diagnostics),
        trace=tracer if tracer else None,
        verified=verified,
    )


__version__ = "1.4.0"

#: the stable public surface; everything else is implementation detail
__all__ = [
    # one-call workflow
    "expand_and_run", "ExpandAndRunOutcome", "OutputDivergence",
    # frontend / interpreter
    "parse_and_analyze", "print_program", "Machine", "run_source",
    "ENGINES", "resolve_engine",
    # transform
    "expand_for_threads", "TransformResult", "OptFlags",
    # runtime
    "run_parallel", "ParallelOutcome", "process_backend_available",
    "WorkerCrash",
    # diagnostics
    "Diagnostic", "DiagnosticSink", "DiagnosableError", "diagnostic_of",
    # observability
    "Tracer", "NullTracer", "NULL_TRACER", "MetricsRegistry",
    "chrome_trace", "write_chrome_trace", "trace_summary",
    # fault injection
    "FaultInjector", "SpanCorruptor", "CopyIndexSkew",
    "SyncTokenDropper", "ThreadAborter",
    # process-level chaos (supervised backend)
    "ProcessChaosInjector", "WorkerKiller", "HeartbeatStaller",
    "TokenPostDropper", "TokenPostDelayer", "parse_chaos_spec",
]
