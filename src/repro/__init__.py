"""repro: reproduction of "General Data Structure Expansion for
Multi-threading" (Yu, Ko, Li — PLDI 2013).

The package is a complete toolchain around the paper's compiler
technique:

* :mod:`repro.frontend` — MiniC (C subset) lexer/parser/types/sema
* :mod:`repro.interp`   — byte-accurate interpreter with a cycle model
* :mod:`repro.analysis` — dependence profiling, access classes,
  privatizability (Definitions 1-5), Andersen points-to
* :mod:`repro.transform` — the paper's contribution: fat-pointer
  promotion, span computation, data structure expansion, redirection,
  and the §3.4 optimizations
* :mod:`repro.runtime`  — simulated N-thread execution (DOALL static /
  DOACROSS dynamic scheduling) with race checking
* :mod:`repro.baselines` — SpiceC-style runtime privatization and the
  sync-only baseline
* :mod:`repro.bench`    — the eight benchmark kernels plus harness and
  report generators for every table/figure in the paper

Quick start::

    from repro import expand_and_run

    outcome = expand_and_run(source, loop_labels=["L"], nthreads=4)
    print(outcome.output, outcome.loop_speedup)
"""

from .frontend import parse_and_analyze, print_program
from .interp import Machine, run_source
from .transform import TransformResult, expand_for_threads
from .runtime import ParallelOutcome, run_parallel


class ExpandAndRunOutcome:
    """Convenience bundle returned by :func:`expand_and_run`."""

    def __init__(self, transform: TransformResult,
                 sequential: Machine, parallel: ParallelOutcome):
        self.transform = transform
        self.sequential = sequential
        self.parallel = parallel
        self.output = parallel.output
        self.races = parallel.races

    @property
    def loop_speedup(self) -> float:
        """Candidate-loop speedup of the parallel run over sequential."""
        par = sum(
            ex.makespan + ex.runtime_cycles
            for ex in self.parallel.loops.values()
        )
        seq = sum(tl.profile.loop_cycles for tl in self.transform.loops)
        return seq / par if par else 0.0

    @property
    def total_speedup(self) -> float:
        return (self.sequential.cost.cycles / self.parallel.total_cycles
                if self.parallel.total_cycles else 0.0)


def expand_and_run(source: str, loop_labels, nthreads: int = 4,
                   optimize: bool = True) -> ExpandAndRunOutcome:
    """One-call API: parse, analyze, profile, expand, run in parallel.

    The labeled loops must carry ``#pragma expand parallel(doall)`` or
    ``parallel(doacross)`` annotations.  The parallel run's output is
    verified against the sequential original; cross-thread races abort.
    """
    program, sema = parse_and_analyze(source)
    seq = Machine(program, sema)
    seq.exit_code = seq.run()
    transform = expand_for_threads(
        program, sema, list(loop_labels), optimize=optimize
    )
    outcome = run_parallel(transform, nthreads)
    if outcome.output != seq.output:
        raise AssertionError(
            f"parallel output diverged: {outcome.output} != {seq.output}"
        )
    return ExpandAndRunOutcome(transform, seq, outcome)


__version__ = "1.0.0"

__all__ = [
    "expand_and_run", "ExpandAndRunOutcome",
    "parse_and_analyze", "print_program", "Machine", "run_source",
    "expand_for_threads", "TransformResult",
    "run_parallel", "ParallelOutcome",
]
