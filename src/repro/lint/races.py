"""Static privatization race auditor.

The transform's whole correctness argument is that redirected private
accesses of distinct virtual threads land in distinct copies.  The
auditor proves that claim structurally, on the output IR:

* ``LINT-RACE-TID-FORM`` — every ``__tid`` occurrence in the program
  must sit in a well-formed copy-selection position.  Decompose the
  maximal arithmetic expression around the occurrence into additive
  terms: the term containing ``__tid`` must either be the bare
  ``__tid`` copy index (alone as a subscript, or next to
  ``__nthreads``-strided terms in the interleaved ``a[i*N + tid]``
  form) or a multiplicative chain ``__tid * span-factor [/ divisor]``
  with ``__tid`` appearing exactly once as a bare factor.  Any other
  shape — notably the ``__tid + 1`` skew
  :class:`repro.runtime.faults.CopyIndexSkew` injects — aims two
  threads at overlapping copies.

* ``LINT-RACE-PRIVATE-COPY`` — every private store site inside a
  candidate loop whose points-to objects were expanded must actually
  select the ``__tid`` copy: its target either mentions ``__tid``
  directly or roots at a hoisted local (``__privN``/``__baseN``)
  whose initializer resolves to ``__tid`` through the symbolic
  environment of loop-top declarations.  Copy-0 (shared) stores need
  no proof here: a DOALL loop has no carried dependence at shared
  sites by classification, and DOACROSS serializes them.

* ``LINT-RACE-CLASS-SPLIT`` — the §3.2 invariant re-checked on the
  output: a loop-independent dependence must never connect a
  privatized endpoint to a non-privatized one (privatizing one side
  would read the wrong copy within a single iteration).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..transform.expand import NTHREADS, TID
from ..transform.rewrite import origin_of
from . import LintContext, rule

#: compiler-introduced locals whose initializers embed copy selection
_HOIST_PREFIXES = ("__priv", "__base", "__licm")


def _strip(expr: ast.Expr) -> ast.Expr:
    while isinstance(expr, ast.Cast):
        expr = expr.expr
    return expr


def _is_tid(expr: ast.Expr) -> bool:
    expr = _strip(expr)
    return isinstance(expr, ast.Ident) and expr.name == TID


_ARITH_OPS = ("+", "-", "*", "/")


def _arith_tid_count(expr: ast.Expr) -> int:
    """``__tid`` reads in the *arithmetic skeleton* of ``expr``.

    Opaque subtrees (subscripts, members, calls) are not counted: a
    factor like ``mx[__tid].span`` legitimately embeds a copy index of
    its own, and that occurrence is audited separately at its own
    arithmetic root."""
    expr = _strip(expr)
    if isinstance(expr, ast.Ident):
        return 1 if expr.name == TID else 0
    if isinstance(expr, ast.Binary) and expr.op in _ARITH_OPS:
        return _arith_tid_count(expr.left) + _arith_tid_count(expr.right)
    return 0


def _additive_terms(expr: ast.Expr) -> List[ast.Expr]:
    expr = _strip(expr)
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        return _additive_terms(expr.left) + _additive_terms(expr.right)
    return [expr]


def _factors(expr: ast.Expr) -> Tuple[List[ast.Expr], List[ast.Expr]]:
    """Multiplicative decomposition: (numerator factors, divisors)."""
    expr = _strip(expr)
    if isinstance(expr, ast.Binary) and expr.op == "*":
        ln, ld = _factors(expr.left)
        rn, rd = _factors(expr.right)
        return ln + rn, ld + rd
    if isinstance(expr, ast.Binary) and expr.op == "/":
        ln, ld = _factors(expr.left)
        return ln, ld + [expr.right]
    return [expr], []


def _has_nthreads_factor(term: ast.Expr) -> bool:
    num, _div = _factors(term)
    return any(
        isinstance(_strip(f), ast.Ident)
        and _strip(f).name == NTHREADS
        for f in num
    )


def _arith_root(ancestors: List[ast.Node]) -> Optional[ast.Expr]:
    """Outermost node of the unbroken arithmetic region around a
    ``__tid`` read: climb through casts and + - * / binaries; stop at
    any other node (subscripts, members, calls, comparisons all bound
    the copy-selection expression)."""
    root: Optional[ast.Expr] = None
    for node in reversed(ancestors):
        if isinstance(node, ast.Cast) or (
            isinstance(node, ast.Binary) and node.op in _ARITH_OPS
        ):
            root = node
        else:
            break
    return root


def _term_of(terms: List[ast.Expr], tid_node: ast.Ident) -> ast.Expr:
    for term in terms:
        if any(sub is tid_node for sub in term.walk()):
            return term
    return tid_node  # unreachable: tid_node is within one term


def _check_occurrence(ctx: LintContext, fn: ast.FunctionDef,
                      tid_node: ast.Ident,
                      ancestors: List[ast.Node]) -> None:
    root = _arith_root(ancestors)
    if root is None:
        # bare __tid with no surrounding arithmetic: the whole-subscript
        # copy index x[__tid] (or a direct copy-index binding)
        return
    terms = _additive_terms(root)
    term = _term_of(terms, tid_node)
    ok = False
    if _is_tid(term):
        if len(terms) == 1:
            ok = True  # pure copy index
        else:
            # interleaved a[i*N + tid]: every other term is N-strided
            ok = all(
                _has_nthreads_factor(t) for t in terms
                if t is not term
            )
    else:
        num, divs = _factors(term)
        bare = [f for f in num if _is_tid(f)]
        ok = (
            len(bare) == 1
            and _arith_tid_count(term) == 1
            and not any(_arith_tid_count(d) for d in divs)
        )
    if not ok:
        ctx.finding(
            "LINT-RACE-TID-FORM", "error",
            f"{TID} in {fn.name}() is not in copy-selection form "
            f"(expected bare {TID}, {TID} * span, or an "
            f"{NTHREADS}-strided interleaved index): two threads can "
            "select overlapping copies",
            node=tid_node,
        )


@rule("LINT-RACE-TID-FORM",
      "__tid only appears in well-formed copy selection")
def check_tid_form(ctx: LintContext) -> None:
    for fn in ctx.program.functions():
        if fn.body is None:
            continue

        def walk(node: ast.Node, ancestors: List[ast.Node]) -> None:
            if isinstance(node, ast.Ident) and node.name == TID:
                _check_occurrence(ctx, fn, node, ancestors)
                return
            ancestors.append(node)
            for child in node.children():
                if isinstance(child, ast.Node):
                    walk(child, ancestors)
            ancestors.pop()

        walk(fn.body, [])


def _hoist_env(program: ast.Program) -> Dict[str, ast.Expr]:
    """Initializers of compiler-introduced hoist locals, by name (the
    pipeline numbers them globally, so names are unique program-wide)."""
    env: Dict[str, ast.Expr] = {}
    for fn in program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if isinstance(node, ast.VarDecl) and \
                    node.name.startswith(_HOIST_PREFIXES) and \
                    isinstance(node.init, ast.Expr):
                env[node.name] = node.init
    return env


def _resolves_tid(expr: ast.Expr, env: Dict[str, ast.Expr],
                  depth: int = 4) -> bool:
    """Does ``expr`` read ``__tid``, directly or through the
    initializer of a hoisted local?"""
    if depth <= 0:
        return False
    for node in expr.walk():
        if not isinstance(node, ast.Ident):
            continue
        if node.name == TID:
            return True
        init = env.get(node.name)
        if init is not None and _resolves_tid(init, env, depth - 1):
            return True
    return False


@rule("LINT-RACE-PRIVATE-COPY",
      "private stores resolve to the __tid copy")
def check_private_copy(ctx: LintContext) -> None:
    result = ctx.result
    if ctx.pointsto is None or not result.loops:
        return
    env = _hoist_env(ctx.program)
    expansion_objs = result.expansion_objs
    for tl in result.loops:
        private_sites = tl.priv.private_sites
        for node in tl.loop.body.walk():
            target: Optional[ast.Expr] = None
            if isinstance(node, ast.Assign):
                target = node.target
            elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"
            ):
                target = node.operand
            if target is None:
                continue
            origin = origin_of(node)
            if origin not in private_sites:
                continue
            objs = ctx.pointsto.objects_of_access(origin)
            if not objs & expansion_objs:
                continue  # not backed by expanded storage
            if _resolves_tid(target, env):
                continue
            ctx.finding(
                "LINT-RACE-PRIVATE-COPY", "error",
                f"private store in loop {tl.loop.label!r} writes "
                f"expanded storage without selecting the {TID} copy: "
                "all threads would write the same bytes",
                node=node, loop=tl.loop.label,
            )


@rule("LINT-RACE-CLASS-SPLIT",
      "loop-independent dependences are never split by privatization")
def check_class_split(ctx: LintContext) -> None:
    for tl in ctx.result.loops:
        private = tl.priv.private_sites
        reported: Set[Tuple[int, int]] = set()
        for edge in tl.profile.ddg.edges:
            if edge.carried:
                continue
            src_priv = edge.src in private
            dst_priv = edge.dst in private
            if src_priv == dst_priv:
                continue
            key = (edge.src, edge.dst)
            if key in reported:
                continue
            reported.add(key)
            ctx.finding(
                "LINT-RACE-CLASS-SPLIT", "error",
                f"loop {tl.loop.label!r}: loop-independent "
                f"{edge.kind} dependence {edge.src}->{edge.dst} "
                "connects a privatized access to a shared one "
                "(§3.2 forbids privatizing one side)",
                loop=tl.loop.label,
            )
