"""Structural lint rules over the transformed IR.

Each rule re-checks one contract of the expansion transform:

=====================  =====================================================
``LINT-SPAN-MISSING``  every statement-level fat-pointer store carries the
                       Table 3 span store (unless the span is provably
                       unchanged or provably dead)
``LINT-SPAN-DEAD``     span stores the liveness analysis proves removable
                       (§3.4 dead span-store elimination, re-derived)
``LINT-SPAN-CLOBBER``  span stores whose value is statically zero while the
                       paired pointer is not null — the exact shape
                       :class:`repro.runtime.faults.SpanCorruptor` induces
``LINT-ALLOC-SCALE``   every expansion-set allocation multiplies its size
                       by ``__nthreads`` (Table 1)
``LINT-FATPTR-FIELD``  fat structs keep the Figure 4 layout and fat
                       variables are never address-taken or accessed
                       outside the pointer/span fields
``LINT-UNINIT-READ``   scalar locals read while only the synthetic
                       uninitialized definition reaches (reaching-defs)
=====================  =====================================================
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..analysis.cfg import build_cfg
from ..analysis.dataflow import ReachingDefinitions, solve
from ..frontend import ast
from ..frontend.ctypes import ArrayType, LONG, PointerType, StructType
from ..transform.expand import _ALLOC_SIZE_ARG, INIT_FN_NAME, NTHREADS
from ..transform.optimize import (
    _SpanLiveness, _span_cells, find_dead_span_stores, is_fat_struct,
)
from ..transform.promote import PTR_FIELD, SPAN_FIELD, _lvalue_repr
from ..transform.rewrite import origin_of
from . import LintContext, rule


def _blocks(program: ast.Program) -> Iterator[Tuple[ast.FunctionDef,
                                                    ast.Block]]:
    for fn in program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if isinstance(node, ast.Block):
                yield fn, node


def _is_fat(ctx: LintContext, ctype) -> bool:
    if ctx.promoter is not None and ctype is not None:
        return ctx.promoter.is_fat(ctype)
    return is_fat_struct(ctype)


def _ptr_store(stmt: ast.Stmt) -> Optional[ast.Assign]:
    """``X.pointer = e`` when ``stmt`` is a statement-level plain store
    into a fat-pointer's pointer field (compound ops leave the span
    unchanged and need no companion store)."""
    if not (isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Assign)):
        return None
    assign = stmt.expr
    target = assign.target
    if assign.op == "=" and isinstance(target, ast.Member) and \
            not target.arrow and target.name == PTR_FIELD and \
            is_fat_struct(target.base.ctype):
        return assign
    return None


def _span_store_for(stmt: ast.Stmt, base_repr: str) -> bool:
    """Is ``stmt`` the ``X.span = ...`` companion for lvalue ``X``?"""
    if not (isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Assign)):
        return False
    assign = stmt.expr
    target = assign.target
    return (
        assign.op == "="
        and isinstance(target, ast.Member)
        and not target.arrow
        and target.name == SPAN_FIELD
        and _lvalue_repr(target.base) == base_repr
    )


def _reads_own_pointer(value: ast.Expr, base_repr: str) -> bool:
    """Does the stored value read ``X.pointer`` of the same lvalue?
    Then the store is a self-update (``p.pointer = p.pointer + i``)
    whose span is unchanged by construction."""
    for node in value.walk():
        if isinstance(node, ast.Member) and not node.arrow and \
                node.name == PTR_FIELD and \
                _lvalue_repr(node.base) == base_repr:
            return True
    return False


@rule("LINT-SPAN-MISSING",
      "pointer assignments carry their Table 3 span store")
def check_span_missing(ctx: LintContext) -> None:
    program = ctx.program
    cells = _span_cells(program)
    exit_live = {d.nid for d in program.globals() if d.nid in cells}
    liveness_cache: Dict[int, object] = {}

    def span_dead_after(fn: ast.FunctionDef, assign: ast.Assign) -> bool:
        base = assign.target.base
        if not (isinstance(base, ast.Ident)
                and isinstance(base.decl, ast.VarDecl)
                and base.decl.nid in cells):
            return False
        live = liveness_cache.get(fn.nid)
        if live is None:
            live = solve(build_cfg(fn), _SpanLiveness(cells, exit_live))
            liveness_cache[fn.nid] = live
        return base.decl.nid not in live.after(assign.nid)

    for fn, block in _blocks(program):
        for i, stmt in enumerate(block.stmts):
            assign = _ptr_store(stmt)
            if assign is None:
                continue
            base_repr = _lvalue_repr(assign.target.base)
            if base_repr is None:
                continue  # unfingerprintable lvalue: stay silent
            nxt = block.stmts[i + 1] if i + 1 < len(block.stmts) else None
            if nxt is not None and _span_store_for(nxt, base_repr):
                continue
            if _reads_own_pointer(assign.value, base_repr):
                continue  # span unchanged by construction
            if span_dead_after(fn, assign):
                continue  # §3.4 legitimately dropped the dead store
            ctx.finding(
                "LINT-SPAN-MISSING", "error",
                f"pointer store to {base_repr}.{PTR_FIELD} in "
                f"{fn.name}() has no following "
                f"{base_repr}.{SPAN_FIELD} store and the span is "
                "neither unchanged nor dead",
                node=assign,
            )


@rule("LINT-SPAN-DEAD", "liveness-dead span stores are flagged")
def check_span_dead(ctx: LintContext) -> None:
    dead = find_dead_span_stores(ctx.program)
    ctx.stats["span_stores_proved_dead"] = len(dead)
    for entry in dead:
        base_repr = _lvalue_repr(entry.assign.target.base)
        why = "is a self-assignment" if entry.reason == "identity" \
            else "is never read on any path"
        ctx.finding(
            "LINT-SPAN-DEAD", "warning",
            f"span store to {base_repr}.{SPAN_FIELD} in "
            f"{entry.fn.name}() {why}; the §3.4 elimination would "
            "remove it",
            node=entry.assign,
        )


def _statically_zero(expr: ast.Expr) -> bool:
    """Is ``expr`` zero for every input?  (Handles the ``value * 0``
    shape span corruption produces, which plain constant folding cannot
    because the other operand is dynamic.)"""
    if isinstance(expr, ast.IntLit):
        return expr.value == 0
    if isinstance(expr, ast.Cast):
        return _statically_zero(expr.expr)
    if isinstance(expr, ast.Binary):
        if expr.op == "*":
            return _statically_zero(expr.left) or \
                _statically_zero(expr.right)
        if expr.op in ("+", "-"):
            return _statically_zero(expr.left) and \
                _statically_zero(expr.right)
        if expr.op == "/":
            return _statically_zero(expr.left)
    return False


@rule("LINT-SPAN-CLOBBER", "span stores are not statically zero")
def check_span_clobber(ctx: LintContext) -> None:
    for fn, block in _blocks(ctx.program):
        for stmt in block.stmts:
            if not (isinstance(stmt, ast.ExprStmt)
                    and isinstance(stmt.expr, ast.Assign)):
                continue
            assign = stmt.expr
            target = assign.target
            if not (assign.op == "=" and isinstance(target, ast.Member)
                    and not target.arrow and target.name == SPAN_FIELD
                    and is_fat_struct(target.base.ctype)):
                continue
            # a literal 0 is the legitimate null-pointer span (Table 3);
            # anything *else* that is statically zero collapses the
            # per-thread stride: every thread redirects into copy 0
            if isinstance(assign.value, ast.IntLit):
                continue
            if _statically_zero(assign.value):
                ctx.finding(
                    "LINT-SPAN-CLOBBER", "error",
                    "span store to "
                    f"{_lvalue_repr(target.base)}.{SPAN_FIELD} in "
                    f"{fn.name}() is statically zero: all threads "
                    "would share copy 0",
                    node=assign,
                )


def _contains_nthreads(expr: ast.Expr) -> bool:
    return any(
        isinstance(n, ast.Ident) and n.name == NTHREADS
        for n in expr.walk()
    )


@rule("LINT-ALLOC-SCALE",
      "expansion-set allocations scale by __nthreads")
def check_alloc_scale(ctx: LintContext) -> None:
    result = ctx.result
    expanded = set(result.expansion.expanded_alloc_origins)
    found: Set[int] = set()
    for fn in ctx.program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if not isinstance(node, ast.Call):
                continue
            name = node.callee_name
            if name not in _ALLOC_SIZE_ARG:
                continue
            is_init_alloc = fn.name == INIT_FN_NAME
            if origin_of(node) in expanded:
                found.add(origin_of(node))
            elif not is_init_alloc:
                continue
            arg = node.args[_ALLOC_SIZE_ARG[name]]
            if not _contains_nthreads(arg):
                ctx.finding(
                    "LINT-ALLOC-SCALE", "error",
                    f"expanded {name}() in {fn.name}() does not "
                    f"multiply its size by {NTHREADS}",
                    node=node,
                )
    missing = expanded - found
    if missing:
        ctx.finding(
            "LINT-ALLOC-SCALE", "error",
            f"{len(missing)} expanded allocation site(s) vanished "
            "from the transformed program",
        )


@rule("LINT-FATPTR-FIELD", "fat-pointer field discipline")
def check_fatptr_fields(ctx: LintContext) -> None:
    fats: List[StructType] = []
    if ctx.promoter is not None:
        fats = list(ctx.promoter.fat_structs())
    for fat in fats:
        names = [f.name for f in fat.fields]
        if names != [PTR_FIELD, SPAN_FIELD]:
            ctx.finding(
                "LINT-FATPTR-FIELD", "error",
                f"fat struct {fat.name} has fields {names}, expected "
                f"[{PTR_FIELD!r}, {SPAN_FIELD!r}]",
            )
            continue
        if not isinstance(fat.field(PTR_FIELD).type, PointerType):
            ctx.finding(
                "LINT-FATPTR-FIELD", "error",
                f"fat struct {fat.name}.{PTR_FIELD} is not a pointer",
            )
        if fat.field(SPAN_FIELD).type != LONG:
            ctx.finding(
                "LINT-FATPTR-FIELD", "error",
                f"fat struct {fat.name}.{SPAN_FIELD} is not long",
            )
    for fn in ctx.program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            # &fatvar would alias a span cell the dataflow passes
            # treat as exact; &slot[i] of an *expanded copy array* is
            # the hoisted base-address form and stays legal
            if isinstance(node, ast.Unary) and node.op == "&" and \
                    isinstance(node.operand, ast.Ident) and \
                    is_fat_struct(node.operand.ctype):
                ctx.finding(
                    "LINT-FATPTR-FIELD", "error",
                    f"address of a fat pointer taken in {fn.name}(); "
                    "span cells must stay unaliasable",
                    node=node,
                )
            if isinstance(node, ast.Member) and not node.arrow and \
                    is_fat_struct(node.base.ctype) and \
                    node.name not in (PTR_FIELD, SPAN_FIELD):
                ctx.finding(
                    "LINT-FATPTR-FIELD", "error",
                    "fat pointer accessed through unknown field "
                    f"{node.name!r} in {fn.name}()",
                    node=node,
                )


@rule("LINT-UNINIT-READ",
      "scalar locals are written before they are read")
def check_uninit_read(ctx: LintContext) -> None:
    program = ctx.program
    addr_taken: Set[int] = set()
    for fn in program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if isinstance(node, ast.Unary) and node.op == "&" and \
                    isinstance(node.operand, ast.Ident) and \
                    isinstance(node.operand.decl, ast.VarDecl):
                addr_taken.add(node.operand.decl.nid)

    for fn in program.functions():
        if fn.body is None:
            continue
        param_nids = {p.nid for p in fn.params}
        # scalar locals only: aggregates are initialized through
        # pointers/memset, globals are zero-initialized storage
        tracked: Set[int] = set()
        names: Dict[int, str] = {}
        for node in fn.body.walk():
            if isinstance(node, ast.VarDecl) and \
                    node.nid not in param_nids and \
                    node.storage != "global" and \
                    node.nid not in addr_taken and \
                    not isinstance(node.ctype, (ArrayType, StructType)):
                tracked.add(node.nid)
                names[node.nid] = node.name
        if not tracked:
            continue
        cfg = build_cfg(fn)
        analysis = ReachingDefinitions()
        reaching = solve(cfg, analysis)
        reported: Set[int] = set()
        for _block, elem in cfg.elements():
            info = analysis.info(elem)
            if not info.uses:
                continue
            facts = reaching.before(elem.nid)
            for decl_nid in info.uses & tracked:
                if decl_nid in reported:
                    continue
                defs = [site for d, site in facts if d == decl_nid]
                if defs and all(site is None for site in defs):
                    reported.add(decl_nid)
                    ctx.finding(
                        "LINT-UNINIT-READ", "warning",
                        f"{names[decl_nid]!r} in {fn.name}() is read "
                        "but only the uninitialized definition "
                        "reaches",
                        node=elem,
                    )
