"""Static lint engine over the transformed IR.

The expansion pipeline's output is executable, and the runtime layers
(race checker, fault injectors) police it *dynamically* — but a
miscompilation should not need a lucky interleaving to surface.  This
package re-checks the paper's structural contracts purely statically,
on the transformed AST, using the CFG/dataflow framework
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`) and the
points-to facts the pipeline already computed:

* :mod:`repro.lint.rules` — span discipline (Table 3), expansion
  scaling (Table 1), fat-pointer layout (Figure 4), uninitialized
  reads;
* :mod:`repro.lint.races` — the privatization race auditor: copy-index
  well-formedness of every ``__tid`` occurrence, tid-copy resolution of
  every private store, and the §3.2 access-class invariant re-checked
  on the output IR;
* :mod:`repro.lint.mutate` — deterministic IR mutations mirroring the
  runtime fault injectors (:class:`repro.runtime.faults.SpanCorruptor`,
  :class:`~repro.runtime.faults.CopyIndexSkew`), used by the test suite
  to prove the auditor catches statically what the runtime catches
  dynamically.

Findings are ordinary :class:`repro.diagnostics.Diagnostic`\\ s with
stable ``LINT-*`` codes, loop attribution, and source locations, so the
CLI, CI and tests consume them exactly like pipeline diagnostics.

Usage::

    result = expand_for_threads(program, sema, ["L"])
    report = run_lint(result)
    for d in report.findings:
        print(d.render())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..diagnostics import Diagnostic, DiagnosticSink
from ..frontend import ast
from ..obs import ensure_tracer


class LintRule:
    """One registered check: a stable code plus a callable
    ``fn(ctx)`` that emits findings through the context."""

    __slots__ = ("code", "title", "fn")

    def __init__(self, code: str, title: str, fn: Callable):
        self.code = code
        self.title = title
        self.fn = fn


#: registration order is execution (and documentation) order
_RULES: "Dict[str, LintRule]" = {}


def rule(code: str, title: str):
    """Decorator registering a lint rule under ``code``."""

    def register(fn: Callable) -> Callable:
        if code in _RULES:
            raise ValueError(f"duplicate lint rule {code!r}")
        _RULES[code] = LintRule(code, title, fn)
        return fn

    return register


def all_rules() -> List[LintRule]:
    """Every registered rule, in registration order."""
    # imports populate the registry
    from . import certify, races, rules  # noqa: F401

    return list(_RULES.values())


class LintContext:
    """Everything a rule may consult, plus the emission helpers.

    Wraps one :class:`repro.transform.pipeline.TransformResult`; rules
    read the transformed program/sema/points-to facts from here and
    report through :meth:`finding` so attribution (loop label, source
    location) is uniform.
    """

    def __init__(self, result, sink: Optional[DiagnosticSink] = None,
                 tracer=None):
        self.result = result
        self.program = result.program
        self.sema = result.sema
        self.promoter = result.promoter
        self.pointsto = result.pointsto
        self.sink = sink if sink is not None else DiagnosticSink()
        self.tracer = ensure_tracer(tracer)
        self.findings: List[Diagnostic] = []
        #: side-channel counters rules publish into lint metrics
        self.stats: Dict[str, int] = {}
        #: per-loop parallelism-certificate verdicts published by
        #: LINT-CERT (:mod:`repro.lint.certify`)
        self.certificates: List[Dict[str, object]] = []
        self._loop_of_nid: Optional[Dict[int, str]] = None

    # -- attribution --------------------------------------------------------
    def loop_of(self, node: ast.Node) -> Optional[str]:
        """Label of the candidate loop containing ``node``, if any."""
        if self._loop_of_nid is None:
            index: Dict[int, str] = {}
            for tl in self.result.loops:
                label = tl.loop.label
                for sub in tl.loop.walk():
                    index[sub.nid] = label
            self._loop_of_nid = index
        return self._loop_of_nid.get(node.nid)

    # -- emission -----------------------------------------------------------
    def finding(self, code: str, severity: str, message: str,
                node: Optional[ast.Node] = None,
                loop: Optional[str] = None, **data) -> Diagnostic:
        if node is not None:
            loop = loop or self.loop_of(node)
        loc = getattr(node, "loc", None) if node is not None else None
        if loc == (0, 0):
            loc = None  # compiler-introduced node: no source position
        diag = Diagnostic(code, severity, message, loop=loop, loc=loc,
                          phase="lint", data=data or None)
        self.findings.append(diag)
        return self.sink.emit(diag)


class LintReport:
    """Outcome of one :func:`run_lint` invocation."""

    def __init__(self, findings: List[Diagnostic], rules_run: int,
                 stats: Dict[str, int],
                 certificates: Optional[List[Dict[str, object]]] = None):
        self.findings = findings
        self.rules_run = rules_run
        self.stats = stats
        #: parallelism-certificate verdicts ({loop, schema, reductions,
        #: verdict}) from the LINT-CERT pass
        self.certificates = list(certificates or [])

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_code(self, prefix: str) -> List[Diagnostic]:
        return [d for d in self.findings
                if d.code == prefix or d.code.startswith(prefix)]

    def render(self) -> str:
        lines = [d.render() for d in self.findings]
        lines.append(
            f"[lint: {self.rules_run} rules, "
            f"{len(self.findings)} finding(s)]"
        )
        return "\n".join(lines)


def run_lint(result, sink: Optional[DiagnosticSink] = None, tracer=None,
             codes: Optional[List[str]] = None) -> LintReport:
    """Run every registered rule (or the subset named by ``codes``)
    over a :class:`~repro.transform.pipeline.TransformResult`.

    Findings accumulate in ``sink`` (one is created when omitted) and
    in the returned report.  With a real tracer, records the
    ``lint.rules_run`` / ``lint.findings`` /
    ``lint.span_stores_proved_dead`` metrics and a per-rule phase span.
    """
    ctx = LintContext(result, sink=sink, tracer=tracer)
    selected = all_rules()
    if codes is not None:
        wanted = set(codes)
        selected = [r for r in selected if r.code in wanted]
        unknown = wanted - {r.code for r in selected}
        if unknown:
            raise KeyError(f"unknown lint rule(s): {sorted(unknown)}")
    if result.program is None:
        ctx.finding("LINT-NO-PROGRAM", "error",
                    "transform produced no program to lint")
        return LintReport(ctx.findings, 0, ctx.stats)
    for lint_rule in selected:
        with ctx.tracer.phase(f"lint:{lint_rule.code}", cat="lint"):
            lint_rule.fn(ctx)
    if ctx.tracer:
        metrics = ctx.tracer.metrics
        metrics.set("lint.rules_run", len(selected))
        metrics.set("lint.findings", len(ctx.findings))
        metrics.set("lint.span_stores_proved_dead",
                    ctx.stats.get("span_stores_proved_dead", 0))
        metrics.set("lint.certificates_verified", sum(
            1 for c in ctx.certificates if c["verdict"] == "verified"
        ))
    return LintReport(ctx.findings, len(selected), ctx.stats,
                      ctx.certificates)


__all__ = [
    "LintContext", "LintReport", "LintRule", "all_rules", "rule",
    "run_lint",
]
