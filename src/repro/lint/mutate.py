"""Deterministic IR mutations mirroring the runtime fault injectors.

The robustness layer proves the *dynamic* detectors catch injected
faults (:mod:`repro.runtime.faults`); these helpers apply the same two
corruptions directly to a transformed AST so the test suite can assert
the *static* auditor catches them too — every fault-injected
miscompilation must be flagged by at least one lint rule, without
running the program:

* :func:`corrupt_spans` — the :class:`~repro.runtime.faults.SpanCorruptor`
  analogue: every span-store value becomes ``value * factor``; with the
  default ``factor=0`` all per-thread strides collapse to zero
  (``LINT-SPAN-CLOBBER`` territory).
* :func:`skew_copy_index` — the
  :class:`~repro.runtime.faults.CopyIndexSkew` analogue: ``__tid``
  reads become ``__tid + stride``, aiming accesses into a neighbour
  thread's copy (``LINT-RACE-TID-FORM`` territory).
* :func:`break_commutativity` — the certificate-poisoning mutator:
  certified commutative updates (``lv += e``, guarded min/max) become
  the non-commutative read-modify-write ``lv = e - lv``, which no op
  group admits — every mutated site must trip ``LINT-CERT``'s
  structural re-verification (the 100%% catch-rate test).

All three mutate in place and return the number of sites changed, so
tests can assert the corruption actually landed.
"""

from __future__ import annotations

from ..frontend import ast
from ..interp.bytecode import invalidate_code
from ..transform import rewrite as rw
from ..transform.expand import TID
from ..transform.optimize import _span_store
from ..transform.promote import SPAN_FIELD  # noqa: F401  (re-export aid)


def corrupt_spans(program: ast.Program, factor: int = 0) -> int:
    """Multiply every statement-level span-store value by ``factor``."""
    count = 0
    for fn in program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if not isinstance(node, ast.Block):
                continue
            for stmt in node.stmts:
                assign = _span_store(stmt)
                if assign is None:
                    continue
                assign.value = rw.binary(
                    "*", assign.value, ast.IntLit(factor), like=assign
                )
                count += 1
    if count:
        # in-place mutation: any bytecode compiled from this program
        # still encodes the pre-mutation expressions
        invalidate_code(program)
    return count


def skew_copy_index(program: ast.Program, stride: int = 1) -> int:
    """Replace every ``__tid`` read with ``__tid + stride``."""
    count = 0
    for fn in program.functions():
        if fn.body is None:
            continue
        targets = [
            node for node in fn.body.walk()
            if isinstance(node, ast.Ident) and node.name == TID
        ]
        for node in targets:
            inner = ast.Ident(TID)
            inner.decl = node.decl
            inner.ctype = node.ctype
            skewed = rw.binary(
                "+", inner, ast.IntLit(stride), like=node
            )
            node.__class__ = ast.Binary
            node.__dict__.clear()
            node.__dict__.update(skewed.__dict__)
            count += 1
    if count:
        # in-place mutation (the node even changes class): compiled
        # closures keyed by these nids are stale
        invalidate_code(program)
    return count


#: compound spellings of the commutative op groups the prover accepts
_COMMUTATIVE_COMPOUND = ("+=", "-=", "*=", "&=", "|=", "^=")


def _poison(assign: ast.Assign) -> None:
    """``lv (op)= e``  →  ``lv = e - lv`` — still a read-modify-write
    of the same location, but order-sensitive: merging per-worker
    copies of it is wrong, and no reduction op group matches it."""
    assign.value = rw.binary(
        "-",
        assign.value if assign.op == "=" else rw.clone_expr(assign.value),
        rw.clone_expr(assign.target), like=assign,
    )
    assign.op = "="


def break_commutativity(program: ast.Program, origins=None) -> int:
    """Rewrite commutative update constructs into non-commutative
    RMWs.  ``origins`` (certificate update origins) restricts the blast
    radius; ``None`` mutates every compound-assign update."""
    count = 0
    for fn in program.functions():
        if fn.body is None:
            continue
        for node in fn.body.walk():
            if origins is not None and rw.origin_of(node) not in origins:
                continue
            if isinstance(node, ast.Assign) and \
                    node.op in _COMMUTATIVE_COMPOUND:
                _poison(node)
                count += 1
            elif isinstance(node, ast.If) and node.els is None:
                # guarded min/max: poison the guarded store
                body = node.then
                stmts = body.stmts if isinstance(body, ast.Block) \
                    else [body]
                if len(stmts) == 1 and isinstance(stmts[0], ast.ExprStmt) \
                        and isinstance(stmts[0].expr, ast.Assign) \
                        and stmts[0].expr.op == "=":
                    _poison(stmts[0].expr)
                    count += 1
    if count:
        # in-place mutation: compiled bytecode is stale
        invalidate_code(program)
    return count


__all__ = ["break_commutativity", "corrupt_spans", "skew_copy_index"]
