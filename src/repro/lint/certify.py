"""Independent parallelism-certificate checker (``LINT-CERT``).

The commutativity prover (:mod:`repro.analysis.commutative`) upgrades
conflicting access classes to the commutative class and records why in
a per-loop certificate.  Trusting the prover's own bookkeeping would
make the certificate decorative; this checker re-establishes every
claim *from scratch*, with its own algorithms, against the **output**
IR the workers will actually execute:

1. the schema version matches this checker;
2. the access-class partition re-derived by BFS over the
   loop-independent DDG edges (not the prover's union-find) matches the
   certified partition exactly;
3. every class's category is re-derived from Definition 5 facts —
   a certified ``commutative`` class must genuinely be conflicting
   (a private or independent class has nothing to merge);
4. every certified update still exists in the output IR (located by
   origin), still has a commutative update shape of the certified op
   group, and — for DOALL — writes the ``__tid`` copy (directly or
   through hoisted locals, same resolution the race auditor uses);
5. no access of a commutative-class site escapes its update construct;
6. the identity-initialization and merge-back code the pipeline must
   emit is structurally present around the transformed loop.

Any mismatch is a hard ``LINT-CERT`` error: either the prover claimed
something false, a later rewrite invalidated the proof, or the
certificate is stale for this IR.  Verdicts are published on
``ctx.certificates`` for the machine-readable lint report.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.commutative import (
    CERT_SCHEMA_VERSION, GROUP_MERGE_OPS, expr_equal, identity_value,
)
from ..analysis.ddg import FLOW
from ..frontend import ast
from ..transform.rewrite import origin_of
from . import LintContext, rule
from .races import _hoist_env, _resolves_tid

_COMPOUND_TO_GROUP = {
    "+=": "add", "-=": "add", "*=": "mul",
    "&=": "and", "|=": "or", "^=": "xor",
}
_BINARY_TO_GROUP = {
    "+": "add", "-": "add", "*": "mul",
    "&": "and", "|": "or", "^": "xor",
}
_SYMMETRIC = {"+", "*", "&", "|", "^"}


# -- independent re-derivation of the §3.2 facts ----------------------------

def _repartition(ddg) -> List[FrozenSet[int]]:
    """Access classes recomputed by connected-component BFS over the
    loop-independent edges (deliberately not the prover's union-find)."""
    adj: Dict[int, Set[int]] = {}
    for edge in ddg.independent_edges():
        adj.setdefault(edge.src, set()).add(edge.dst)
        adj.setdefault(edge.dst, set()).add(edge.src)
    seen: Set[int] = set()
    classes: List[FrozenSet[int]] = []
    for site in sorted(ddg.sites):
        if site in seen:
            continue
        comp: Set[int] = set()
        stack = [site]
        while stack:
            cur = stack.pop()
            if cur in comp:
                continue
            comp.add(cur)
            stack.extend(adj.get(cur, ()))
        seen |= comp
        classes.append(frozenset(comp))
    return classes


def _derive_category(ddg, members: FrozenSet[int]) -> str:
    """Definition 5 re-applied: ``private`` / ``free`` /
    ``conflicting`` (the latter covers certified shared *and*
    commutative — commutativity itself is checked structurally)."""
    carried_flow: Set[int] = set()
    carried_ao: Set[int] = set()
    for edge in ddg.edges:
        if not edge.carried:
            continue
        bucket = carried_flow if edge.kind == FLOW else carried_ao
        bucket.add(edge.src)
        bucket.add(edge.dst)
    exposed = members & (ddg.upward_exposed | ddg.downward_exposed)
    if exposed or members & carried_flow:
        return "conflicting"
    return "private" if members & carried_ao else "free"


# -- structural re-recognition on the output IR -----------------------------

def _update_shape(node: ast.Node) -> Optional[Tuple[str, ast.Expr]]:
    """(op group, written lvalue) if ``node`` is a commutative update
    construct; None otherwise.  Shapes mirror the prover's, but are
    matched against the *redirected* IR (lvalues already select a
    copy), so targets compare structurally, not by site."""
    if isinstance(node, ast.Assign):
        group = _COMPOUND_TO_GROUP.get(node.op)
        if group is not None:
            return group, node.target
        if node.op != "=":
            return None
        value = node.value
        while isinstance(value, ast.Cast):
            value = value.expr
        if not isinstance(value, ast.Binary):
            return None
        group = _BINARY_TO_GROUP.get(value.op)
        if group is None:
            return None
        if expr_equal(value.left, node.target):
            return group, node.target
        if value.op in _SYMMETRIC and expr_equal(value.right, node.target):
            return group, node.target
        return None
    if isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
        return "add", node.operand
    if isinstance(node, ast.If) and node.els is None:
        cond = node.cond
        body = node.then
        if isinstance(body, ast.Block):
            if len(body.stmts) != 1:
                return None
            body = body.stmts[0]
        if not (isinstance(body, ast.ExprStmt)
                and isinstance(body.expr, ast.Assign)
                and body.expr.op == "="):
            return None
        assign = body.expr
        if not (isinstance(cond, ast.Binary)
                and cond.op in ("<", "<=", ">", ">=")):
            return None
        # accumulator on the right: if (e > lv) lv = e  keeps the max
        if expr_equal(cond.right, assign.target) and \
                expr_equal(cond.left, assign.value):
            group = "max" if cond.op in (">", ">=") else "min"
            return group, assign.target
        # accumulator on the left: if (lv < e) lv = e  keeps the max
        if expr_equal(cond.left, assign.target) and \
                expr_equal(cond.right, assign.value):
            group = "max" if cond.op in ("<", "<=") else "min"
            return group, assign.target
        return None
    return None


def _base_decl(expr: ast.Expr,
               env: Optional[Dict[str, ast.Expr]] = None,
               depth: int = 4) -> Optional[ast.VarDecl]:
    """Root VarDecl of an access chain, looking through casts, pointer
    arithmetic (``(p + __tid * span)[i]``) and — via the hoist-local
    environment — compiler-introduced ``__licm``/``__base``/``__priv``
    locals, so merge code like ``__licm5[0] += __licm5[c]`` roots at
    the accumulator it actually addresses."""
    if depth <= 0:
        return None
    while True:
        expr = expr.expr if isinstance(expr, ast.Cast) else expr
        if isinstance(expr, ast.Ident):
            init = env.get(expr.name) if env else None
            if init is not None:
                return _base_decl(init, env, depth - 1)
            return expr.decl
        if isinstance(expr, (ast.Index, ast.Member)):
            expr = expr.base
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            expr = expr.operand
        elif isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            left = _base_decl(expr.left, env, depth - 1)
            if left is not None:
                return left
            expr = expr.right
        else:
            return None


def _enclosing_function(program: ast.Program,
                        target: ast.Node) -> Optional[ast.FunctionDef]:
    for fn in program.functions():
        if fn.body is None:
            continue
        if any(node is target for node in fn.body.walk()):
            return fn
    return None


def _subtree_ids(nodes: List[ast.Node]) -> Set[int]:
    out: Set[int] = set()
    for node in nodes:
        out.update(id(sub) for sub in node.walk())
    return out


def _merge_shape_ok(group: str, node: ast.Node, accum: ast.VarDecl,
                    env: Dict[str, ast.Expr]) -> bool:
    """Is ``node`` the copy-merge statement for ``accum``?  add/mul/
    bit groups fold with the group's compound op; min/max merge with a
    compare-and-assign."""
    if group in ("min", "max"):
        if not (isinstance(node, ast.If) and node.els is None):
            return False
        cond = node.cond
        return (isinstance(cond, ast.Binary)
                and cond.op == GROUP_MERGE_OPS[group]
                and _base_decl(cond.left, env) is accum
                and _base_decl(cond.right, env) is accum)
    return (isinstance(node, ast.Assign)
            and node.op == GROUP_MERGE_OPS[group]
            and _base_decl(node.target, env) is accum
            and _base_decl(node.value, env) is accum)


def _init_shape_ok(node: ast.Node, accum: ast.VarDecl, identity: int,
                   env: Dict[str, ast.Expr]) -> bool:
    return (isinstance(node, ast.Assign) and node.op == "="
            and _base_decl(node.target, env) is accum
            and isinstance(node.value, ast.IntLit)
            and node.value.value == identity)


# -- the rule ---------------------------------------------------------------

def _record(ctx: LintContext, label: str,
            cert: Optional[Dict[str, object]], verdict: str) -> None:
    ctx.certificates.append({
        "loop": label,
        "schema": None if cert is None else cert.get("schema"),
        "reductions": [] if cert is None else [
            {"name": r.get("name"), "op": r.get("op")}
            for r in cert.get("reductions", ())
        ],
        "verdict": verdict,
    })


def _verify_loop(ctx: LintContext, tl, cert: Dict[str, object],
                 env: Dict[str, ast.Expr]) -> bool:
    label = tl.loop.label
    ddg = tl.profile.ddg
    ok = True

    def fail(message: str, node: Optional[ast.Node] = None, **data):
        nonlocal ok
        ok = False
        ctx.finding("LINT-CERT", "error",
                    f"certificate for loop {label!r}: {message}",
                    node=node, loop=label, **data)

    if cert.get("schema") != CERT_SCHEMA_VERSION:
        fail(f"schema {cert.get('schema')!r} does not match checker "
             f"schema {CERT_SCHEMA_VERSION}")
        return False

    # 1. the partition, re-derived by BFS
    derived = set(_repartition(ddg))
    certified = {frozenset(c["members"]) for c in cert.get("classes", ())}
    if derived != certified:
        fail("access-class partition does not match the "
             "loop-independent dependence closure of the DDG")

    # 2. per-class category + the site map
    commutative_reps: Set[int] = set()
    commutative_sites: Set[int] = set()
    sites_map = cert.get("sites", {})
    for cls in cert.get("classes", ()):
        members = frozenset(cls["members"])
        category = cls["category"]
        if members in derived:
            truth = _derive_category(ddg, members)
            expected = {"private": ("private",), "free": ("free",),
                        "shared": ("conflicting",),
                        "commutative": ("conflicting",)}.get(category, ())
            if truth not in expected:
                fail(f"class {sorted(members)} certified "
                     f"{category!r} but Definition 5 re-derives "
                     f"{truth!r}")
        if category == "commutative":
            commutative_reps.add(cls["representative"])
            commutative_sites |= members
        for site in members:
            if sites_map.get(str(site)) != category:
                fail(f"site {site} mapped to "
                     f"{sites_map.get(str(site))!r} but its class is "
                     f"{category!r}")

    # 3. every commutative class is explained by exactly one reduction
    explained: Dict[int, int] = {}
    for red in cert.get("reductions", ()):
        for rep in red.get("classes", ()):
            explained[rep] = explained.get(rep, 0) + 1
    for rep in sorted(commutative_reps):
        if explained.get(rep, 0) != 1:
            fail(f"commutative class {rep} is covered by "
                 f"{explained.get(rep, 0)} reduction proofs "
                 "(need exactly one)")

    # 4. re-verify each certified update on the output IR
    enforce_tid = tl.kind == "doall"
    update_nodes: List[ast.Node] = []
    loop_nodes = list(tl.loop.walk())
    fn = _enclosing_function(ctx.program, tl.loop)
    region: List[ast.Node] = list(loop_nodes)
    if fn is not None:
        # certified updates may live in callees reached from the loop
        region = [n for f in ctx.program.functions() if f.body is not None
                  for n in f.body.walk()]
    for red in cert.get("reductions", ()):
        group = red.get("op")
        accum: Optional[ast.VarDecl] = None
        for upd in red.get("updates", ()):
            origin = upd.get("origin")
            found = [n for n in region
                     if origin_of(n) == origin
                     and isinstance(n, (ast.Assign, ast.Unary, ast.If))]
            # the anchor survives rewrites as the outermost node still
            # carrying the origin; nested matches are its own children
            anchors = [n for n in found
                       if not any(other is not n
                                  and any(sub is n for sub in other.walk())
                                  for other in found)]
            if not anchors:
                fail(f"certified {group} update (origin {origin}) is "
                     "missing from the output IR")
                continue
            for node in anchors:
                shape = _update_shape(node)
                if shape is None or shape[0] != group:
                    fail(f"update at origin {origin} is no longer a "
                         f"commutative {group!r} update in the output "
                         "IR", node=node)
                    continue
                target = shape[1]
                if enforce_tid and not _resolves_tid(target, env):
                    fail(f"{group} update at origin {origin} does not "
                         "select the __tid copy: workers would share "
                         "one accumulator", node=node)
                    continue
                update_nodes.append(node)
                accum = accum or _base_decl(target, env)

        # 5. identity init + merge-back must exist around the loop
        if accum is None or fn is None:
            continue
        expected_identity = red.get("identity")
        elem = accum.ctype
        # expanded storage is a pointer (heap) or extra-dim array (VLA)
        while hasattr(elem, "pointee") or hasattr(elem, "elem"):
            elem = getattr(elem, "pointee", None) or elem.elem
        try:
            recomputed = identity_value(group, elem)
        except (ValueError, AttributeError):
            recomputed = None
        if recomputed is not None and recomputed != expected_identity:
            fail(f"reduction {red.get('name')!r} certifies identity "
                 f"{expected_identity} but op {group!r} over "
                 f"{accum.ctype} has identity {recomputed}")
        outside = [n for n in fn.body.walk()
                   if not any(n is ln for ln in loop_nodes)]
        if not any(_init_shape_ok(n, accum, expected_identity, env)
                   for n in outside):
            fail(f"no identity initialization of {red.get('name')!r} "
                 f"copies (= {expected_identity}) before the loop")
        if not any(_merge_shape_ok(group, n, accum, env)
                   for n in outside):
            fail(f"no merge-back of {red.get('name')!r} copies "
                 f"({GROUP_MERGE_OPS.get(group)!r}) after the loop")

    # 6. no commutative-class access outside a verified update
    allowed = _subtree_ids(update_nodes)
    for node in loop_nodes:
        if origin_of(node) in commutative_sites and id(node) not in allowed:
            fail(f"access at origin {origin_of(node)} belongs to a "
                 "commutative class but sits outside every certified "
                 "update construct", node=node)

    return ok


@rule("LINT-CERT",
      "parallelism certificates re-verify on the output IR")
def check_certificates(ctx: LintContext) -> None:
    env = _hoist_env(ctx.program)
    for tl in ctx.result.loops:
        label = tl.loop.label
        cert = getattr(tl, "certificate", None)
        commutative = getattr(tl.priv, "commutative_sites", None)
        if cert is None:
            if commutative:
                ctx.finding(
                    "LINT-CERT", "error",
                    f"loop {label!r} has commutative-class sites but "
                    "no parallelism certificate was emitted",
                    loop=label,
                )
                _record(ctx, label, None, "missing")
            continue
        ok = _verify_loop(ctx, tl, cert, env)
        _record(ctx, label, cert, "verified" if ok else "failed")
