"""NativeMachine: the third execution tier.

A drop-in :class:`~repro.interp.machine.Machine` subclass that
dispatches function calls, statement units, and DOALL chunk drivers
into compiled ``.so`` entry points operating directly on the machine's
flat byte buffer — with zero per-iteration Python inside lowered loop
nests.  Everything the C code cannot reproduce exactly (per-function
``NL-*`` lowering failures, active instrumentation hooks, unresolvable
free variables) falls back to the ``bytecode-bare`` closures this class
inherits, which is always semantics-preserving.

The C side communicates through one Env struct (see
``codegen._PRELUDE``): cost counters in cy8 units (cycles x 8), a step
budget shared with the Python watchdog, and a callback used for heap
growth, builtins, non-lowerable call sites and string-literal
interning.  Callbacks synchronize the Python-side
:class:`~repro.interp.memory.Memory` with the C bump allocator (one
spanning ``native-frames`` stack record per growth region) so Python
builtins see every native-allocated byte.
"""

from __future__ import annotations

import ctypes
from typing import Dict, List, Optional, Tuple

from ...frontend import ast
from .. import memory as mem
from ..builtins import BUILTIN_IMPLS
from ..machine import (
    COSTS, BreakSignal, ContinueSignal, ExitSignal, InterpError,
    ReturnSignal,
)
from ..memory import MemoryError_
from ..bytecode.machine import BytecodeMachine
from .codegen import (
    OP_BUILTIN, OP_CALLFB, OP_GROW, OP_STRLIT,
    RC_BREAK, RC_CONTINUE, RC_FAULT, RC_OK, RC_RETURN,
    RET_BLOB, RET_F64, RET_I64, RET_NONE, RET_U64,
)

MASK64 = 0xFFFFFFFFFFFFFFFF

_CBFUNC = ctypes.CFUNCTYPE(ctypes.c_int64, ctypes.c_void_p,
                           ctypes.c_int64, ctypes.c_int64,
                           ctypes.c_int64)


class _Env(ctypes.Structure):
    """Must match the Env struct in ``codegen._PRELUDE`` exactly."""

    _fields_ = [
        ("M", ctypes.c_void_p),
        ("cap", ctypes.c_int64),
        ("cap_alloc", ctypes.c_int64),
        ("brk", ctypes.c_int64),
        ("ck", ctypes.c_int64),
        ("tid", ctypes.c_int64),
        ("nthreads", ctypes.c_int64),
        ("steps", ctypes.c_int64),
        ("max_steps", ctypes.c_int64),
        ("depth", ctypes.c_int64),
        ("cy8", ctypes.c_int64),
        ("ins", ctypes.c_int64),
        ("lds", ctypes.c_int64),
        ("sts", ctypes.c_int64),
        ("fault", ctypes.c_int64),
        ("rnone", ctypes.c_int64),
        ("args", ctypes.c_int64 * 16),
        ("dargs", ctypes.c_double * 16),
        ("gaddr", ctypes.POINTER(ctypes.c_int64)),
        ("daddr", ctypes.POINTER(ctypes.c_int64)),
        ("saddr", ctypes.POINTER(ctypes.c_int64)),
        ("jbp", ctypes.c_void_p),
        ("cb", _CBFUNC),
    ]


def _sign64(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >= (1 << 63) else v


class NativeMachine(BytecodeMachine):
    """Machine whose hot paths run as compiled C on the segment."""

    def __init__(self, program, sema, check_bounds: bool = True,
                 max_steps: int = 500_000_000,
                 max_loop_steps: Optional[int] = None,
                 engine: Optional[str] = None, tracer=None,
                 memory=None):
        # the fallback tier is always the bare closures: identical cost
        # model, no per-statement instrumentation — same as native
        super().__init__(program, sema, check_bounds, max_steps,
                         max_loop_steps, engine="bytecode-bare",
                         tracer=tracer, memory=memory)
        self.engine = "native"
        #: NL-* diagnostic when the backend is unavailable (None = ok)
        self.native_diag: Optional[str] = None
        self._low = None
        self._handles = None
        try:
            from .backend import native_context_for
            ctx = native_context_for(program, sema)
            self._low = ctx.lowering
            self._lib = ctx.lib
            self._handles = ctx.lib.handles
        except Exception as exc:
            self.native_diag = str(exc)
        self._env = _Env()
        self._cb_obj = _CBFUNC(self._callback)
        self._env.cb = self._cb_obj
        self._pin = None
        self._pending: Optional[BaseException] = None
        self._gaddr_arr = None
        self._gaddr_key: Optional[Tuple[int, int]] = None
        self._daddr_arr = (ctypes.c_int64 * 1)()
        self._saddr_arr = None
        self._closure_cache: Dict[int, frozenset] = {}
        self._env_addr = ctypes.addressof(self._env)
        #: entry-point calls made (runners + units + chunk drivers);
        #: the differential/smoke gates assert this is non-zero when a
        #: run claims to be native
        self.native_dispatches = 0

    # -- gates -------------------------------------------------------------
    def _native_ok(self) -> bool:
        return (self._low is not None
                and self._globals_ready
                and self.redirector is None
                and not self.observers
                and self._stmt_hook is None
                and self._tid_hook is None
                and not self._store_taps)

    def _loop_closure(self, meta) -> frozenset:
        """All loop nids reachable through ``meta`` (incl. callees)."""
        cached = self._closure_cache.get(id(meta))
        if cached is not None:
            return cached
        loops = set(meta.loop_nids)
        seen = set()
        stack = list(meta.callees)
        fns = self._low.fns
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            fm = fns.get(nid)
            if fm is not None:
                loops |= fm.loop_nids
                stack.extend(fm.callees)
        out = frozenset(loops)
        self._closure_cache[id(meta)] = out
        return out

    def _controllers_clear(self, meta) -> bool:
        if not self.loop_controllers:
            return True
        return not (self.loop_controllers.keys() & self._loop_closure(meta))

    def _resolve_free(self, free) -> Optional[List[int]]:
        if not free:
            return []
        frame = self.frames[-1] if self.frames else self.globals_frame
        out = []
        for decl in free:
            addr = frame.vars.get(decl)
            if addr is None:
                return None
            out.append(addr)
        return out

    # -- memory pinning ----------------------------------------------------
    def _do_pin(self):
        data = self.memory.data
        buf = (ctypes.c_char * len(data)).from_buffer(data)
        self._pin = buf
        E = self._env
        E.M = ctypes.addressof(buf)
        E.cap = len(data)
        E.cap_alloc = self.memory.limit if self.memory.limit is not None \
            else len(data)

    def _unpin(self):
        self._pin = None

    # -- env lifecycle -----------------------------------------------------
    def _refresh_gaddr(self):
        gvars = self.globals_frame.vars
        key = (id(gvars), len(gvars))
        if key == self._gaddr_key and self._gaddr_arr is not None:
            return
        order = self._low.globals_order
        arr = (ctypes.c_int64 * max(len(order), 1))()
        for i, decl in enumerate(order):
            arr[i] = gvars.get(decl, 0)
        self._gaddr_arr = arr
        self._gaddr_key = key
        self._env.gaddr = arr

    def _refresh_saddr(self):
        lits = self._low.strlits
        arr = self._saddr_arr
        if arr is None or len(arr) < max(len(lits), 1):
            arr = (ctypes.c_int64 * max(len(lits), 1))()
            self._saddr_arr = arr
            self._env.saddr = arr
        cache = self._strlit_cache
        for i, node in enumerate(lits):
            arr[i] = cache.get(node.nid, -1)

    def _enter(self, daddr: Optional[List[int]] = None):
        E = self._env
        self._do_pin()
        E.brk = self.memory.brk
        E.ck = 1 if self.memory.check_bounds else 0
        E.tid = self.tid
        E.nthreads = self.nthreads
        E.steps = self._steps
        ms = self.max_steps
        E.max_steps = int(ms) if ms == ms and ms < (1 << 62) else (1 << 62)
        E.depth = len(self.frames)
        E.cy8 = E.ins = E.lds = E.sts = 0
        E.fault = -1
        E.rnone = 0
        self._refresh_gaddr()
        self._refresh_saddr()
        if daddr:
            arr = self._daddr_arr
            if len(arr) < len(daddr):
                arr = (ctypes.c_int64 * len(daddr))()
                self._daddr_arr = arr
            for i, a in enumerate(daddr):
                arr[i] = a
            E.daddr = self._daddr_arr
        self._pending = None

    def _commit_costs(self):
        E = self._env
        if E.cy8 or E.ins or E.lds or E.sts:
            self.cost.cycles += E.cy8 / 8
            self.cost.instructions += E.ins
            self.cost.loads += E.lds
            self.cost.stores += E.sts
            E.cy8 = E.ins = E.lds = E.sts = 0

    def _sync_records(self):
        """Cover native bump allocations with a Python-side stack
        record so builtins (memcpy/strlen/...) pass ``check_access``
        over native-allocated frames, and ``memory.brk`` tracks the C
        allocator."""
        E = self._env
        memory = self.memory
        if E.brk > memory.brk:
            aligned = (memory.brk + 7) & ~7
            if E.brk > aligned:
                memory.alloc(E.brk - aligned, mem.STACK,
                             label="native-frames")
            else:  # pragma: no cover - brk already aligned to E.brk
                memory.brk = E.brk

    def _exit(self):
        E = self._env
        self._commit_costs()
        self._steps = E.steps
        self._sync_records()
        self._unpin()

    # -- the callback ------------------------------------------------------
    def _callback(self, envp, op, a, b) -> int:
        E = self._env
        repin = False
        try:
            self._commit_costs()
            self._steps = E.steps
            self._sync_records()
            if op == OP_GROW:
                memory = self.memory
                if memory.limit is not None:
                    raise MemoryError_(
                        f"memory region exhausted: need {a} bytes, "
                        f"region capacity {memory.limit}"
                    )
                self._unpin()
                repin = True
                data = memory.data
                if a > len(data):
                    data.extend(b"\0" * max(a - len(data), 65536))
            elif op == OP_STRLIT:
                node = self._low.node_by_nid[a]
                cache = self._strlit_cache
                addr = cache.get(node.nid)
                if addr is None:
                    self._unpin()
                    repin = True
                    payload = node.value.encode("latin-1") + b"\0"
                    addr = self.memory.alloc(len(payload), mem.RODATA,
                                             label="strlit")
                    self.memory.write_bytes(addr, payload)
                    cache[node.nid] = addr
                self._saddr_arr[b] = addr
            elif op in (OP_BUILTIN, OP_CALLFB):
                meta = self._low.calls[a]
                self._unpin()
                repin = True
                args = self._decode_call_args(meta)
                node = self._low.node_by_nid.get(meta.nid)
                if op == OP_BUILTIN:
                    impl = BUILTIN_IMPLS[meta.name]
                    result = impl(self, args, node)
                else:
                    fn = self._low.sema.functions[meta.name]
                    result = self.call_function(fn, args)
                self._encode_call_result(meta, result)
            else:  # pragma: no cover - unknown opcode
                raise InterpError(f"native callback opcode {op}")
            return 0
        except BaseException as exc:
            self._pending = exc
            return 1
        finally:
            if repin or self._pin is None:
                self._do_pin()
            E.steps = self._steps
            E.brk = self.memory.brk

    def _decode_call_args(self, meta) -> List:
        E = self._env
        out = []
        for i, spec in enumerate(meta.args):
            kind = spec[0]
            if kind == "f":
                out.append(E.dargs[i])
            elif kind == "s":
                out.append(self.memory.read_bytes(E.args[i], spec[1]))
            else:
                v = E.args[i]
                out.append(v & MASK64 if spec[1] and v < 0 else v)
        return out

    def _encode_call_result(self, meta, result):
        E = self._env
        if meta.ret == "f":
            E.dargs[0] = float(result) if result is not None else 0.0
        elif meta.ret == "i":
            E.args[0] = _sign64(int(result)) if result is not None else 0

    # -- entry invocation --------------------------------------------------
    def _invoke(self, cname: str, daddr: Optional[List[int]] = None) -> int:
        self.native_dispatches += 1
        self._enter(daddr)
        try:
            rc = self._handles[cname](self._env_addr)
        finally:
            self._exit()
        if self._pending is not None:
            exc = self._pending
            self._pending = None
            raise exc
        if rc == RC_FAULT:
            self._raise_fault()
        return rc

    def _raise_fault(self):
        E = self._env
        site = E.fault
        if site == 0:
            # region-guard trip: re-run the exact Python check for the
            # walker's error text (NULL / wild / out-of-bounds / UAF)
            addr, size = E.args[0], E.args[1]
            self.memory.check_access(addr, size)
            raise InterpError(
                f"wild access at {addr} (size {size})")  # pragma: no cover
        meta = self._low.faults[site - 1]
        node = self._low.node_by_nid.get(meta.nid) \
            if meta.nid is not None else None
        if meta.kind == "memory":  # pragma: no cover - none emitted yet
            raise MemoryError_(meta.msg)
        raise InterpError(meta.msg, node)

    def _decode_return(self):
        E = self._env
        kind = E.args[1]
        if kind == RET_NONE:
            return None
        if kind == RET_I64:
            return E.args[0]
        if kind == RET_U64:
            return E.args[0] & MASK64
        if kind == RET_F64:
            return E.dargs[0]
        if kind == RET_BLOB:
            return self.memory.read_bytes(E.args[0], E.args[2])
        raise InterpError(f"bad native return kind {kind}")

    # -- Machine contract overrides ---------------------------------------
    def call_function(self, fn: ast.FunctionDef, args: List):
        if self._native_ok():
            meta = self._low.fns.get(fn.nid)
            if (meta is not None and meta.runner is not None
                    and len(args) >= len(fn.params)
                    and self._controllers_clear(meta)
                    and all(isinstance(v, (int, float))
                            for v in args[:len(meta.params)])):
                E = self._env
                for i, pcls in enumerate(meta.params):
                    v = args[i]
                    if pcls == "f":
                        E.dargs[i] = float(v)
                    else:
                        E.args[i] = _sign64(int(v))
                self._invoke(meta.runner)
                return self._decode_return()
        return super().call_function(fn, args)

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if self._native_ok():
            meta = self._low.units.get(stmt.nid)
            if meta is not None and self._controllers_clear(meta):
                daddr = self._resolve_free(meta.free)
                if daddr is not None:
                    rc = self._invoke(meta.cname, daddr)
                    if rc == RC_OK:
                        return
                    if rc == RC_BREAK:
                        raise BreakSignal()
                    if rc == RC_CONTINUE:
                        raise ContinueSignal()
                    if rc == RC_RETURN:
                        raise ReturnSignal(self._decode_return())
                    raise InterpError(f"bad native rc {rc}")
        super().exec_stmt(stmt)

    # -- DOALL chunk driver ------------------------------------------------
    def native_chunk(self, loop_nid: int):
        """ChunkMeta for ``loop_nid`` if it is natively dispatchable in
        the machine's current state, else None (caller falls back to
        the per-iteration Python protocol)."""
        if not self._native_ok():
            return None
        meta = self._low.chunks.get(loop_nid)
        if meta is None or not self._controllers_clear(meta):
            return None
        if self._resolve_free(meta.free) is None:
            return None
        return meta

    def run_native_chunk(self, loop_nid: int, k0: int, k1: int,
                         hb_iter_off: int = 0) -> int:
        """Run iterations [k0, k1) of the DOALL loop ``loop_nid``
        entirely in C; returns the completed iteration count.  The
        control variable must already be seeded (the caller owns the
        bind/seed/fence protocol).  ``hb_iter_off`` is a segment offset
        whose int64 slot receives the live iteration counter."""
        meta = self._low.chunks[loop_nid]
        daddr = self._resolve_free(meta.free)
        if daddr is None:
            raise InterpError("native chunk free vars unresolved")
        E = self._env
        E.args[0] = k0
        E.args[1] = k1
        E.args[6] = 0
        self.native_dispatches += 1
        self._enter(daddr)
        # hb address needs the pinned base; set after _enter pins
        E.args[4] = (E.M + hb_iter_off) if hb_iter_off else 0
        try:
            rc = self._handles[meta.cname](self._env_addr)
        finally:
            self._exit()
        if self._pending is not None:
            exc = self._pending
            self._pending = None
            raise exc
        if rc == RC_FAULT:
            self._raise_fault()
        if rc == RC_BREAK:
            raise BreakSignal()
        if rc == RC_RETURN:
            raise ReturnSignal(self._decode_return())
        return E.args[6]
