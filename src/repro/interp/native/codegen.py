"""C code generator for the native execution tier.

Lowers each analyzed function (and each statement the runtime may
dispatch through ``exec_stmt`` — loop nests, blocks, DOACROSS stage
statements — plus a per-DOALL-loop chunk driver) to a C translation
unit operating directly on the machine's flat byte buffer.  The emitted
code replicates the *bare* bytecode tier's observable semantics
exactly: the same cost accounting (cycles are carried as ``cy8`` =
cycles x 8 in int64, every COSTS entry being a multiple of 0.125), the
same wrap/convert rules (two's complement wrapping via truncating
casts, Python's truncating integer division formula via ``__int128``),
the same loop step-budget backstops, and the same memory discipline
(bump allocation with the exact alignment/growth rules of
:class:`repro.interp.memory.Memory`).

Values are carried in two C classes: ``'i'`` — int64 two's-complement
carrier for all integer/pointer types (unsigned-64 / pointer semantics
are recovered per *static* type where they matter: compares, division,
float conversion), and ``'f'`` — double (float32 intermediates are
rounded through ``(float)`` casts exactly like ``FloatType.wrap``).
Struct blobs (``'s'``) are carried as source addresses and moved with
``memmove``.

Anything the emitter cannot reproduce *exactly* raises :class:`NLError`
with an ``NL-*`` reason code; the whole function then falls back to the
``bytecode-bare`` closures, which is always semantics-preserving.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set, Tuple

from ...frontend import ast
from ...frontend.ctypes import (
    ArrayType, CType, FloatType, IntType, PointerType, StructType,
)
from ..builtins import BUILTIN_IMPLS
from ..machine import COSTS

#: bump when emitted code or ABI changes shape (part of the .so cache key)
NATIVE_ABI_VERSION = 3

# callback opcodes (Env->cb protocol)
OP_GROW = 1
OP_BUILTIN = 2
OP_CALLFB = 3
OP_STRLIT = 4

# entry return codes
RC_OK = 0
RC_FAULT = 1
RC_RETURN = 2
RC_BREAK = 3
RC_CONTINUE = 4

# return-value class codes (E->args channel on RC_RETURN)
RET_NONE = 0
RET_I64 = 1
RET_F64 = 2
RET_BLOB = 3
RET_U64 = 4

#: builtins emitted as plain C (same libm the Python implementations
#: call into, so results are bit-identical); everything else goes
#: through the callback into the Python implementation
_NATIVE_MATH = {
    "sqrt": ("sqrt", "fmath"), "exp": ("exp", "fmath"),
    "log": ("log", "fmath"), "sin": ("sin", "fmath"),
    "cos": ("cos", "fmath"), "floor": ("floor", "falu"),
    "ceil": ("ceil", "falu"), "fabs": ("fabs", "alu"),
    "pow": ("pow", "fmath"),
}

MASK64 = 0xFFFFFFFFFFFFFFFF


def _cy8(key: str) -> int:
    v = COSTS[key] * 8
    iv = int(v)
    if iv != v:
        raise AssertionError(f"COSTS[{key}] is not a multiple of 1/8")
    return iv


class NLError(Exception):
    """A construct the native tier cannot lower exactly."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


class Val:
    """One evaluated expression: a C reference + value class + CType."""

    __slots__ = ("ref", "cls", "ct")

    def __init__(self, ref: str, cls: str, ct):
        self.ref = ref
        self.cls = cls
        self.ct = ct


def cls_of(ct) -> str:
    if isinstance(ct, FloatType):
        return "f"
    if isinstance(ct, StructType):
        return "s"
    if isinstance(ct, (IntType, PointerType, ArrayType)):
        return "i"
    return "v"  # void / unknown


def is_u64(ct) -> bool:
    """Types whose int64 carrier must be reinterpreted as unsigned."""
    if isinstance(ct, PointerType):
        return True
    return isinstance(ct, IntType) and not ct.signed and ct.size == 8


def _ilit(v: int) -> str:
    v &= MASK64
    if v >= 1 << 63:
        return f"((int64_t)UINT64_C({v}))"
    if v == (1 << 63):  # unreachable after the branch above; kept for clarity
        return "(-INT64_C(9223372036854775807) - 1)"
    return f"INT64_C({v})"


def _flit(v: float) -> str:
    if v != v:
        return "(0.0/0.0)"
    if v == float("inf"):
        return "(1.0/0.0)"
    if v == float("-inf"):
        return "(-1.0/0.0)"
    return f"{v.hex()}"


class FnMeta:
    __slots__ = ("nid", "name", "cname", "runner", "params", "ret_cls",
                 "ret_u64", "loop_nids", "callees")

    def __init__(self, nid, name, cname, runner, params, ret_cls, ret_u64):
        self.nid = nid
        self.name = name
        self.cname = cname
        #: exported zero-arg run wrapper (only for parameterless fns)
        self.runner = runner
        self.params = params          # tuple of param classes ('i'/'f')
        self.ret_cls = ret_cls
        self.ret_u64 = ret_u64
        self.loop_nids: Set[int] = set()
        self.callees: Set[int] = set()  # native-called fn nids


class UnitMeta:
    __slots__ = ("nid", "cname", "free", "loop_nids", "callees")

    def __init__(self, nid, cname, free):
        self.nid = nid
        self.cname = cname
        self.free = free              # tuple of free VarDecls (daddr order)
        self.loop_nids: Set[int] = set()
        self.callees: Set[int] = set()


class ChunkMeta:
    __slots__ = ("nid", "cname", "free", "control", "loop_nids", "callees")

    def __init__(self, nid, cname, free, control):
        self.nid = nid
        self.cname = cname
        self.free = free
        self.control = control        # the For's control VarDecl (or None)
        self.loop_nids: Set[int] = set()
        self.callees: Set[int] = set()


class FaultMeta:
    __slots__ = ("kind", "msg", "nid")

    def __init__(self, kind: str, msg: str, nid: Optional[int]):
        self.kind = kind              # "interp" | "memory"
        self.msg = msg
        self.nid = nid


class CallMeta:
    __slots__ = ("kind", "name", "nid", "args", "ret")

    def __init__(self, kind: str, name: str, nid: int,
                 args: Tuple, ret: str):
        self.kind = kind              # "builtin" | "user"
        self.name = name
        self.nid = nid
        #: per-arg decode spec: ('i', u64?) / ('f',) / ('s', size)
        self.args = args
        self.ret = ret                # 'i' / 'f' / 'v'


class Lowering:
    """The full result of lowering one program."""

    def __init__(self):
        self.source = ""
        self.fingerprint = ""
        self.fns: Dict[int, FnMeta] = {}
        self.fn_by_name: Dict[str, int] = {}
        self.units: Dict[int, UnitMeta] = {}
        self.chunks: Dict[int, ChunkMeta] = {}
        self.globals_order: Tuple = ()
        self.faults: List[FaultMeta] = []
        self.calls: List[CallMeta] = []
        #: interned string literals, in first-reference order; the
        #: runtime mirrors this into the ``E->saddr`` cache array
        self.strlits: List[ast.StrLit] = []
        self.strlit_idx: Dict[int, int] = {}
        self.nl: Dict[str, str] = {}
        self.exports: List[str] = []
        #: filled by the Lowerer for runtime dispatch
        self.sema = None
        self.node_by_nid: Dict[int, ast.Node] = {}


_PRELUDE = r"""
#include <stdint.h>
#include <string.h>
#include <setjmp.h>
#include <math.h>

typedef struct Env {
  char *M;
  int64_t cap;        /* guard ceiling when !ck: len(data) */
  int64_t cap_alloc;  /* alloc ceiling: limit (buffer) or len(data) */
  int64_t brk;
  int64_t ck;
  int64_t tid, nthreads;
  int64_t steps, max_steps;
  int64_t depth;
  int64_t cy8, ins, lds, sts;
  int64_t fault, rnone;
  int64_t args[16];
  double dargs[16];
  int64_t *gaddr;
  int64_t *daddr;
  int64_t *saddr;
  void *jbp;
  int64_t (*cb)(void *, int64_t, int64_t, int64_t);
} Env;

#define LJ longjmp(*(jmp_buf *)E->jbp, 1)
#define FAULT(s) do { FLUSH; E->fault = (s); LJ; } while (0)
#define CB(op, a, b) do { FLUSH; if (E->cb((void *)E, (op), (a), (b))) LJ; \
    M = E->M; } while (0)
#define GK(a, n) do { if (rp_gchk(E, (a), (n))) { E->args[0] = (a); \
    E->args[1] = (n); FAULT(0); } } while (0)
#define FLUSH do { E->cy8 += cy8; E->ins += ins; E->lds += lds; \
    E->sts += sts; cy8 = ins = lds = sts = 0; } while (0)

static int rp_gchk(Env *E, int64_t a, int64_t n) {
  uint64_t lo = E->ck ? 4096u : 0u;
  uint64_t hi = (uint64_t)(E->ck ? E->brk : E->cap);
  return ((uint64_t)a < lo) | ((uint64_t)a >= hi) |
         ((uint64_t)(a + n) > hi);
}

static int64_t rp_alloca(Env *E, int64_t sz) {
  int64_t a, end;
  if (sz < 1) sz = 1;
  a = (E->brk + 7) & ~(int64_t)7;
  end = a + sz;
  if (end > E->cap_alloc) {
    if (E->cb((void *)E, 1 /* OP_GROW */, end, 0)) LJ;
  }
  E->brk = end;
  return a;
}

static inline int64_t rp_ld_i8(const char *p) { int8_t v; memcpy(&v, p, 1); return v; }
static inline int64_t rp_ld_u8(const char *p) { uint8_t v; memcpy(&v, p, 1); return v; }
static inline int64_t rp_ld_i16(const char *p) { int16_t v; memcpy(&v, p, 2); return v; }
static inline int64_t rp_ld_u16(const char *p) { uint16_t v; memcpy(&v, p, 2); return v; }
static inline int64_t rp_ld_i32(const char *p) { int32_t v; memcpy(&v, p, 4); return v; }
static inline int64_t rp_ld_u32(const char *p) { uint32_t v; memcpy(&v, p, 4); return v; }
static inline int64_t rp_ld_i64(const char *p) { int64_t v; memcpy(&v, p, 8); return v; }
static inline double rp_ld_f32(const char *p) { float v; memcpy(&v, p, 4); return (double)v; }
static inline double rp_ld_f64(const char *p) { double v; memcpy(&v, p, 8); return v; }
static inline void rp_st_8(char *p, int64_t v) { uint8_t b = (uint8_t)v; memcpy(p, &b, 1); }
static inline void rp_st_16(char *p, int64_t v) { uint16_t b = (uint16_t)v; memcpy(p, &b, 2); }
static inline void rp_st_32(char *p, int64_t v) { uint32_t b = (uint32_t)v; memcpy(p, &b, 4); }
static inline void rp_st_64(char *p, int64_t v) { memcpy(p, &v, 8); }
static inline void rp_st_f32(char *p, double v) { float f = (float)v; memcpy(p, &f, 4); }
static inline void rp_st_f64(char *p, double v) { memcpy(p, &v, 8); }

/* Python int(v) & ((1<<64)-1): truncate toward zero, wrap mod 2^64. */
static int64_t rp_d2i(double v) {
  double t, r;
  if (v != v) return 0;  /* NaN: the walker crashes; documented divergence */
  if (v >= -9223372036854775808.0 && v < 9223372036854775808.0)
    return (int64_t)v;
  t = trunc(v);
  r = fmod(t, 18446744073709551616.0);
  if (r < 0) r += 18446744073709551616.0;
  if (r >= 18446744073709551615.0) return -1;
  return (int64_t)(uint64_t)r;
}

/* Python floor division of two int64s (pointer difference). */
static int64_t rp_fldiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) q--;
  return q;
}
"""


def _walk_stmts(s):
    yield s
    for name in getattr(s, "_fields", ()):
        child = getattr(s, name, None)
        if isinstance(child, ast.Stmt):
            yield from _walk_stmts(child)
        elif isinstance(child, (list, tuple)):
            for item in child:
                if isinstance(item, ast.Stmt):
                    yield from _walk_stmts(item)


class _Emit:
    """Emission context for one function / unit / chunk driver."""

    def __init__(self, low: "Lowerer"):
        self.low = low
        self.lines: List[str] = []
        self.ntmp = 0
        #: VarDecl -> C expression holding its address (bound locals)
        self.bound: Dict[ast.VarDecl, str] = {}
        #: free (outer-frame) decls, resolved via E->daddr at dispatch
        self.free_order: List[ast.VarDecl] = []
        self.free_idx: Dict[ast.VarDecl, int] = {}
        self.loop_nids: Set[int] = set()
        self.callees: Set[int] = set()
        #: loop nid stack for break/continue targets; entries are
        #: (break_label, continue_label) or None (unit boundary)
        self.loops: List = []
        self.in_function = False  # True inside f_<nid> (returns are C returns)
        self.ret_cls = "v"
        self.ret_u64 = False
        self.ret_ct = None

    # -- plumbing ---------------------------------------------------------
    def t(self, ctype: str = "int64_t") -> str:
        self.ntmp += 1
        name = f"t{self.ntmp}"
        self.lines.append(f"  {ctype} {name};")
        return name

    def o(self, line: str):
        self.lines.append("  " + line)

    def label(self, name: str):
        self.lines.append(f"{name}:;")

    # -- registries -------------------------------------------------------
    def fault_site(self, kind: str, msg: str, nid: Optional[int]) -> int:
        faults = self.low.result.faults
        faults.append(FaultMeta(kind, msg, nid))
        return len(faults)  # site 0 is the guard; faults are 1-based

    def call_site(self, kind, name, nid, args, ret) -> int:
        calls = self.low.result.calls
        calls.append(CallMeta(kind, name, nid, args, ret))
        return len(calls) - 1

    # -- variable addressing ---------------------------------------------
    def var_addr_ref(self, decl: ast.VarDecl) -> str:
        ref = self.bound.get(decl)
        if ref is not None:
            return ref
        gidx = self.low.global_idx.get(decl)
        if gidx is not None:
            return f"E->gaddr[{gidx}]"
        if self.in_function:
            # a C function body can only see its own locals and globals
            raise NLError("NL-FREE-VAR", decl.name)
        idx = self.free_idx.get(decl)
        if idx is None:
            idx = len(self.free_order)
            self.free_order.append(decl)
            self.free_idx[decl] = idx
        return f"E->daddr[{idx}]"

    # -- conversions ------------------------------------------------------
    def wrap_int(self, x: str, ct: IntType) -> str:
        bits = 8 * ct.size
        if bits == 64:
            return f"(int64_t)(uint64_t)({x})"
        u = {8: "uint8_t", 16: "uint16_t", 32: "uint32_t"}[bits]
        s = {8: "int8_t", 16: "int16_t", 32: "int32_t"}[bits]
        if ct.signed:
            return f"(int64_t)({s})({u})(uint64_t)({x})"
        return f"(int64_t)({u})(uint64_t)({x})"

    def to_double(self, v: Val) -> str:
        if v.cls == "f":
            return v.ref
        if is_u64(v.ct):
            return f"(double)(uint64_t)({v.ref})"
        return f"(double)({v.ref})"

    def conv(self, v: Val, target) -> Val:
        """``make_convert(target)`` applied to ``v`` (carrier domain)."""
        if isinstance(target, IntType):
            if v.cls == "f":
                return Val(self.wrap_int(f"rp_d2i({v.ref})", target),
                           "i", target)
            if v.cls != "i":
                raise NLError("NL-CONV", f"{v.cls}->int")
            return Val(self.wrap_int(v.ref, target), "i", target)
        if isinstance(target, FloatType):
            d = self.to_double(v) if v.cls in ("i", "f") else None
            if d is None:
                raise NLError("NL-CONV", f"{v.cls}->float")
            if target.size == 4:
                d = f"(double)(float)({d})"
            return Val(d, "f", target)
        if isinstance(target, PointerType):
            if v.cls == "f":
                return Val(f"rp_d2i({v.ref})", "i", target)
            if v.cls != "i":
                raise NLError("NL-CONV", f"{v.cls}->ptr")
            return Val(v.ref, "i", target)
        return v

    def truth(self, v: Val) -> str:
        if v.cls == "f":
            return f"({v.ref} != 0.0)"
        if v.cls == "i":
            return f"({v.ref} != 0)"
        raise NLError("NL-TRUTH", v.cls)

    # -- memory -----------------------------------------------------------
    def load_scalar(self, addr: str, ct, cheap: bool, guarded: bool) -> Val:
        """Scalar read matching ``make_load`` / ``make_scalar_value``:
        guard where the walker bounds-checks, LOAD cost unless cheap."""
        if guarded:
            self.o(f"GK({addr}, {ct.size});")
        fmt = ct.fmt
        fn = {
            "b": "rp_ld_i8", "B": "rp_ld_u8", "h": "rp_ld_i16",
            "H": "rp_ld_u16", "i": "rp_ld_i32", "I": "rp_ld_u32",
            "q": "rp_ld_i64", "Q": "rp_ld_i64",
        }.get(fmt)
        if fn is not None:
            t = self.t()
            self.o(f"{t} = {fn}(M + {addr});")
            out = Val(t, "i", ct)
        elif fmt == "f":
            t = self.t("double")
            self.o(f"{t} = rp_ld_f32(M + {addr});")
            out = Val(t, "f", ct)
        elif fmt == "d":
            t = self.t("double")
            self.o(f"{t} = rp_ld_f64(M + {addr});")
            out = Val(t, "f", ct)
        else:
            raise NLError("NL-FMT", fmt)
        if not cheap:
            self.o(f"cy8 += {_cy8('load')}; lds += 1;")
        return out

    def load_value(self, addr: str, ct, cheap: bool,
                   guarded: bool = True) -> Val:
        """``make_load``: scalar, struct blob, or array decay."""
        if isinstance(ct, ArrayType):
            return Val(addr, "i", ct)
        if isinstance(ct, StructType):
            if guarded:
                self.o(f"GK({addr}, {ct.size});")
            if not cheap:
                self.o(f"cy8 += {_cy8('load') + ct.size}; lds += 1;")
            return Val(addr, "s", ct)
        return self.load_scalar(addr, ct, cheap, guarded)

    def store_value(self, addr: str, v: Val, ct, cheap: bool,
                    guarded: bool = True):
        """``make_store``: convert + guard + pack + STORE cost."""
        if isinstance(ct, ArrayType):
            raise NLError("NL-ARRAY-STORE")
        if isinstance(ct, StructType):
            if v.cls != "s":
                raise NLError("NL-STRUCT-STORE", v.cls)
            if guarded:
                self.o(f"GK({addr}, {ct.size});")
            self.o(f"memmove(M + {addr}, M + {v.ref}, {ct.size});")
            if not cheap:
                self.o(f"cy8 += {_cy8('store') + ct.size}; sts += 1;")
            return
        cv = self.conv(v, ct)
        if guarded:
            self.o(f"GK({addr}, {ct.size});")
        fmt = ct.fmt
        if fmt in ("b", "B"):
            self.o(f"rp_st_8(M + {addr}, {cv.ref});")
        elif fmt in ("h", "H"):
            self.o(f"rp_st_16(M + {addr}, {cv.ref});")
        elif fmt in ("i", "I"):
            self.o(f"rp_st_32(M + {addr}, {cv.ref});")
        elif fmt in ("q", "Q"):
            self.o(f"rp_st_64(M + {addr}, {cv.ref});")
        elif fmt == "f":
            self.o(f"rp_st_f32(M + {addr}, {cv.ref});")
        elif fmt == "d":
            self.o(f"rp_st_f64(M + {addr}, {cv.ref});")
        else:
            raise NLError("NL-FMT", fmt)
        if not cheap:
            self.o(f"cy8 += {_cy8('store')}; sts += 1;")

    def alloca(self, size_ref: str, out: str):
        # a grow callback may swap the backing buffer: reload M
        self.o(f"{out} = rp_alloca(E, {size_ref}); M = E->M;")

    # -- reg-slot analysis (mirrors Machine._is_reg_slot) -----------------
    def is_reg_slot(self, e) -> bool:
        if isinstance(e, ast.Ident):
            d = e.decl
            return isinstance(d, ast.VarDecl) and \
                d.storage in ("local", "param") and \
                not isinstance(d.ctype, ArrayType)
        if isinstance(e, ast.Index):
            idx = e.index
            fixed = isinstance(idx, ast.IntLit) or (
                isinstance(idx, ast.Ident)
                and (idx.decl is self.low.tid_decl
                     or idx.decl is self.low.nthreads_decl))
            if not fixed:
                return False
            base = e.base
            return isinstance(base, ast.Ident) and \
                isinstance(base.decl, ast.VarDecl) and \
                base.decl.storage in ("local", "param")
        if isinstance(e, ast.Member) and not e.arrow:
            return self.is_reg_slot(e.base)
        return False

    # ======================================================================
    # expressions
    # ======================================================================
    def expr(self, e) -> Val:
        fn = _X.get(type(e))
        if fn is None:
            raise NLError("NL-NODE", type(e).__name__)
        return fn(self, e)

    def addr_of(self, e) -> str:
        """lvalue address (mirrors ``compile_addr``: no cost, no bump)."""
        if isinstance(e, ast.Ident):
            d = e.decl
            if d is self.low.tid_decl or d is self.low.nthreads_decl:
                raise NLError("NL-TIDADDR")
            if not isinstance(d, ast.VarDecl):
                raise NLError("NL-LVALUE", type(d).__name__)
            return self.var_addr_ref(d)
        if isinstance(e, ast.Unary) and e.op == "*":
            v = self.expr(e.operand)
            if v.cls != "i":
                raise NLError("NL-DEREF", v.cls)
            return v.ref
        if isinstance(e, ast.Index):
            b = self.expr(e.base)
            i = self.expr(e.index)
            if b.cls != "i" or i.cls != "i":
                raise NLError("NL-INDEX")
            esize = e.ctype.size
            if esize is None:
                raise NLError("NL-INCOMPLETE")
            t = self.t()
            self.o(f"{t} = {b.ref} + {i.ref} * {esize};")
            return t
        if isinstance(e, ast.Member):
            if e.arrow:
                st = e.base.ctype.decay().pointee
                fld = st.field(e.name)
                b = self.expr(e.base)
                t = self.t()
                self.o(f"{t} = {b.ref} + {fld.offset};")
                return t
            fld = e.base.ctype.field(e.name)
            base = self.addr_of(e.base)
            t = self.t()
            self.o(f"{t} = {base} + {fld.offset};")
            return t
        if isinstance(e, ast.Cast):
            return self.addr_of(e.expr)
        if isinstance(e, ast.Comma):
            self.expr(e.left)
            return self.addr_of(e.right)
        raise NLError("NL-LVALUE", type(e).__name__)

    # -- shared binop apply (mirrors make_binop_apply) --------------------
    def binop_apply(self, op: str, l: Val, r: Val, result_ct,
                    nid: Optional[int], lt, rt) -> Val:
        if isinstance(lt, PointerType) and isinstance(rt, PointerType) \
                and op == "-":
            esize = lt.pointee.size or 1
            self.o(f"cy8 += {_cy8('ptrdiff')};")
            t = self.t()
            self.o(f"{t} = rp_fldiv({l.ref} - {r.ref}, {esize});")
            return Val(t, "i", result_ct)
        if isinstance(lt, PointerType) and op in ("+", "-"):
            esize = lt.pointee.size
            self.o(f"cy8 += {_cy8('lea')};")
            if esize is None:
                site = self.fault_site("interp", "arithmetic on void*", nid)
                self.o(f"FAULT({site});")
                return Val("0", "i", result_ct)
            t = self.t()
            self.o(f"{t} = {l.ref} {op} {r.ref} * {esize};")
            return Val(t, "i", result_ct)
        if isinstance(rt, PointerType) and op == "+":
            esize = rt.pointee.size
            self.o(f"cy8 += {_cy8('lea')};")
            if esize is None:
                site = self.fault_site("interp", "arithmetic on void*", nid)
                self.o(f"FAULT({site});")
                return Val("0", "i", result_ct)
            t = self.t()
            self.o(f"{t} = {r.ref} + {l.ref} * {esize};")
            return Val(t, "i", result_ct)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self.o(f"cy8 += {_cy8('alu')};")
            t = self.t()
            if l.cls == "f" or r.cls == "f":
                self.o(f"{t} = ({self.to_double(l)} {op} "
                       f"{self.to_double(r)});")
            else:
                lu, ru = is_u64(lt), is_u64(rt)
                if lu and ru:
                    self.o(f"{t} = ((uint64_t){l.ref} {op} "
                           f"(uint64_t){r.ref});")
                elif not lu and not ru:
                    self.o(f"{t} = ({l.ref} {op} {r.ref});")
                else:
                    lc = f"(__int128)(uint64_t){l.ref}" if lu \
                        else f"(__int128){l.ref}"
                    rc = f"(__int128)(uint64_t){r.ref}" if ru \
                        else f"(__int128){r.ref}"
                    self.o(f"{t} = ({lc} {op} {rc});")
            return Val(t, "i", result_ct)
        if isinstance(result_ct, FloatType):
            ld, rd = self.to_double(l), self.to_double(r)
            if op == "/":
                site = self.fault_site("interp", "float division by zero",
                                       nid)
                self.o(f"cy8 += {_cy8('fdiv')};")
                self.o(f"if ({rd} == 0.0) FAULT({site});")
            elif op in ("+", "-", "*"):
                self.o(f"cy8 += {_cy8('falu')};")
            else:
                raise NLError("NL-FLOAT-OP", op)
            t = self.t("double")
            x = f"({ld} {op} {rd})"
            if result_ct.size == 4:
                x = f"(double)(float){x}"
            self.o(f"{t} = {x};")
            return Val(t, "f", result_ct)
        # integer domain; operands may still be float (compound assigns)
        if not isinstance(result_ct, IntType):
            raise NLError("NL-BINOP-RESULT", str(result_ct))
        if l.cls == "f" or r.cls == "f":
            # the walker computes in Python float then wraps via int();
            # reproduce: to double, C op, truncate, wrap
            if op in ("+", "-", "*"):
                self.o(f"cy8 += {_cy8('alu') if op in ('+', '-') else _cy8('imul')};")
                t = self.t("double")
                self.o(f"{t} = ({self.to_double(l)} {op} "
                       f"{self.to_double(r)});")
                return self.conv(Val(t, "f", result_ct), result_ct)
            raise NLError("NL-MIXED-OP", op)
        li, ri = l.ref, r.ref
        if op in ("+", "-"):
            self.o(f"cy8 += {_cy8('alu')};")
            x = f"((uint64_t){li} {op} (uint64_t){ri})"
        elif op == "*":
            self.o(f"cy8 += {_cy8('imul')};")
            x = f"((uint64_t){li} * (uint64_t){ri})"
        elif op in ("/", "%"):
            site = self.fault_site("interp", "integer division by zero", nid)
            self.o(f"cy8 += {_cy8('idiv')};")
            self.o(f"if ({ri} == 0) FAULT({site});")
            lc = f"(__int128)(uint64_t){li}" if is_u64(lt) \
                else f"(__int128){li}"
            rc = f"(__int128)(uint64_t){ri}" if is_u64(rt) \
                else f"(__int128){ri}"
            t = self.t()
            if op == "/":
                self.o(f"{t} = {self.wrap_int(f'({lc}) / ({rc})', result_ct)};")
            else:
                self.o(f"{{ __int128 q_ = ({lc}) / ({rc}); "
                       f"{t} = {self.wrap_int(f'({lc}) - q_ * ({rc})', result_ct)}; }}")
            return Val(t, "i", result_ct)
        elif op == "<<":
            self.o(f"cy8 += {_cy8('alu')};")
            x = f"((uint64_t){li} << ({ri} & 63))"
        elif op == ">>":
            self.o(f"cy8 += {_cy8('alu')};")
            if isinstance(lt, IntType) and not lt.signed:
                bits = 8 * lt.size
                m = (1 << bits) - 1
                x = f"(int64_t)(((uint64_t){li} & UINT64_C({m})) >> ({ri} & 63))"
            else:
                x = f"({li} >> ({ri} & 63))"
        elif op in ("&", "|", "^"):
            self.o(f"cy8 += {_cy8('alu')};")
            x = f"((uint64_t){li} {op} (uint64_t){ri})"
        else:
            raise NLError("NL-OP", op)
        t = self.t()
        self.o(f"{t} = {self.wrap_int(x, result_ct)};")
        return Val(t, "i", result_ct)

    # -- expression node emitters -----------------------------------------
    def _x_intlit(self, e):
        self.o("ins += 1;")
        return Val(_ilit(e.value), "i", e.ctype)

    def _x_floatlit(self, e):
        self.o("ins += 1;")
        return Val(_flit(e.value), "f", e.ctype)

    def _x_strlit(self, e):
        self.o("ins += 1;")
        res = self.low.result
        idx = res.strlit_idx.get(e.nid)
        if idx is None:
            idx = len(res.strlits)
            res.strlits.append(e)
            res.strlit_idx[e.nid] = idx
        # first evaluation interns via the callback (walker timing: the
        # RODATA block allocates at first eval, not at dispatch); the
        # wrapper fills saddr[idx] so later evals stay in C
        t = self.t()
        self.o(f"if (E->saddr[{idx}] < 0) CB({OP_STRLIT}, {e.nid}, {idx});")
        self.o(f"{t} = E->saddr[{idx}];")
        return Val(t, "i", e.ctype)

    def _x_ident(self, e):
        d = e.decl
        if d is self.low.tid_decl:
            self.o("ins += 1;")
            t = self.t()
            self.o(f"{t} = E->tid;")
            return Val(t, "i", e.ctype)
        if d is self.low.nthreads_decl:
            self.o("ins += 1;")
            t = self.t()
            self.o(f"{t} = E->nthreads;")
            return Val(t, "i", e.ctype)
        if not isinstance(d, ast.VarDecl):
            raise NLError("NL-FNDESIG", getattr(d, "name", "?"))
        addr = self.var_addr_ref(d)
        ct = d.ctype
        self.o("ins += 1;")
        if isinstance(ct, ArrayType):
            t = self.t()
            self.o(f"{t} = {addr};")
            return Val(t, "i", ct)
        cheap = d.storage in ("local", "param")
        if isinstance(ct, StructType):
            return self.load_value(addr, ct, cheap, guarded=True)
        if cheap:
            # fused local read: no bounds check with no redirector
            return self.load_scalar(addr, ct, True, guarded=False)
        return self.load_scalar(addr, ct, False, guarded=True)

    def _incdec_delta(self, ct) -> Tuple[str, bool]:
        """(delta C literal, is_float) for ++/--; NL on void*."""
        if isinstance(ct, PointerType):
            if ct.pointee.size is None:
                raise NLError("NL-VOIDPTR")
            return str(ct.pointee.size), False
        if isinstance(ct, FloatType):
            return "1.0", True
        return "1", False

    def _x_unary(self, e):
        op = e.op
        if op == "&":
            # address computation first (mirrors closure order), bump after
            a = self.addr_of(e.operand)
            self.o("ins += 1;")
            return Val(a, "i", e.ctype)
        if op == "*":
            v = self.expr(e.operand)
            self.o("ins += 1;")
            if v.cls != "i":
                raise NLError("NL-DEREF", v.cls)
            return self.load_value(v.ref, e.ctype, False, guarded=True)
        if op in ("++", "--", "p++", "p--"):
            post = op.startswith("p")
            sign = "+" if "++" in op else "-"
            operand = e.operand
            ct = operand.ctype
            fused = (isinstance(operand, ast.Ident)
                     and isinstance(operand.decl, ast.VarDecl)
                     and operand.decl.storage in ("local", "param")
                     and isinstance(ct, (IntType, FloatType, PointerType)))
            delta, fdelta = self._incdec_delta(ct)
            self.o("ins += 1;")
            if fused:
                addr = self.var_addr_ref(operand.decl)
                old = self.load_scalar(addr, ct, True, guarded=False)
                self.o(f"cy8 += {_cy8('alu')};")
                raw = Val(f"({old.ref} {sign} {delta})",
                          "f" if fdelta else "i", ct)
                new = self.conv(raw, ct)
                nt = self.t("double" if new.cls == "f" else "int64_t")
                self.o(f"{nt} = {new.ref};")
                new = Val(nt, new.cls, ct)
                self.store_value(addr, new, ct, cheap=True, guarded=False)
                return old if post else new
            cheap = self.is_reg_slot(operand)
            a = self.addr_of(operand)
            old = self.load_value(a, ct, cheap, guarded=True)
            self.o(f"cy8 += {_cy8('alu')};")
            raw = Val(f"({old.ref} {sign} {delta})",
                      "f" if fdelta else "i", ct)
            self.store_value(a, raw, ct, cheap, guarded=True)
            return old if post else self.conv(raw, ct)
        v = self.expr(e.operand)
        self.o("ins += 1;")
        self.o(f"cy8 += {_cy8('alu')};")
        if op == "-":
            if isinstance(e.ctype, IntType):
                t = self.t()
                self.o(f"{t} = {self.wrap_int(f'-(uint64_t)({v.ref})', e.ctype)};")
                return Val(t, "i", e.ctype)
            t = self.t("double")
            self.o(f"{t} = -({self.to_double(v)});")
            return Val(t, "f", e.ctype)
        if op == "!":
            t = self.t()
            self.o(f"{t} = {self.truth(v)} ? 0 : 1;")
            return Val(t, "i", e.ctype)
        if op == "~":
            if v.cls != "i":
                raise NLError("NL-BITNOT", v.cls)
            t = self.t()
            self.o(f"{t} = {self.wrap_int(f'~(uint64_t)({v.ref})', e.ctype)};")
            return Val(t, "i", e.ctype)
        raise NLError("NL-UNARY", op)

    def _x_binary(self, e):
        op = e.op
        if op in ("&&", "||"):
            self.o("ins += 1;")
            self.o(f"cy8 += {_cy8('alu')};")
            t = self.t()
            l = self.expr(e.left)
            if op == "&&":
                self.o(f"{t} = 0;")
                self.o(f"if ({self.truth(l)}) {{")
                r = self.expr(e.right)
                self.o(f"{t} = {self.truth(r)} ? 1 : 0;")
                self.o("}")
            else:
                self.o(f"{t} = 1;")
                self.o(f"if (!{self.truth(l)}) {{")
                r = self.expr(e.right)
                self.o(f"{t} = {self.truth(r)} ? 1 : 0;")
                self.o("}")
            return Val(t, "i", e.ctype)
        self.o("ins += 1;")
        l = self.expr(e.left)
        r = self.expr(e.right)
        lt = e.left.ctype.decay() if e.left.ctype is not None else None
        rt = e.right.ctype.decay() if e.right.ctype is not None else None
        return self.binop_apply(op, l, r, e.ctype, e.nid, lt, rt)

    def _x_assign(self, e):
        target = e.target
        if e.op == "=":
            tct = target.ctype
            fused = (isinstance(target, ast.Ident)
                     and isinstance(target.decl, ast.VarDecl)
                     and target.decl.storage in ("local", "param")
                     and isinstance(tct, (IntType, FloatType, PointerType)))
            self.o("ins += 1;")
            if fused:
                addr = self.var_addr_ref(target.decl)
                value = self.expr(e.value)
                self.store_value(addr, value, tct, cheap=True, guarded=False)
                return value  # unconverted, like the walker
            addr = self.addr_of(target)
            value = self.expr(e.value)
            self.store_value(addr, value, tct,
                             cheap=self.is_reg_slot(target), guarded=True)
            return value
        # compound assignment: load-modify-store
        op = e.op[:-1]
        tct = target.ctype
        if isinstance(tct, (StructType, ArrayType)):
            raise NLError("NL-COMPOUND", cls_of(tct))
        self.o("ins += 1;")
        cheap = self.is_reg_slot(target)
        a = self.addr_of(target)
        at = self.t()
        self.o(f"{at} = {a};")
        old = self.load_value(at, tct, cheap, guarded=True)
        rhs = self.expr(e.value)
        if isinstance(tct, PointerType):
            # mirrors the dedicated pointer-compound path: LEA charge,
            # old +/- int(rhs) * esize, raw store, converted result
            esize = tct.pointee.size
            if esize is None:
                site = self.fault_site("interp", "arithmetic on void*",
                                       e.nid)
                self.o(f"FAULT({site});")
                return Val("0", "i", tct)
            if op not in ("+", "-"):
                raise NLError("NL-PTR-COMPOUND", op)
            ri = f"rp_d2i({rhs.ref})" if rhs.cls == "f" else rhs.ref
            self.o(f"cy8 += {_cy8('lea')};")
            nt = self.t()
            self.o(f"{nt} = {old.ref} {op} ({ri}) * {esize};")
            new = Val(nt, "i", tct)
            self.store_value(at, new, tct, cheap, guarded=True)
            return self.conv(new, tct)
        lt = tct.decay() if tct is not None else None
        rt = e.value.ctype.decay() if e.value.ctype is not None else None
        new = self.binop_apply(op, old, rhs, tct, None, lt, rt)
        self.store_value(at, new, tct, cheap, guarded=True)
        return self.conv(new, tct)

    def _x_cond(self, e):
        self.o("ins += 1;")
        self.o(f"cy8 += {_cy8('alu')};")
        c = self.expr(e.cond)
        # one carrier must hold either branch's value: ints promote to
        # double when the classes mix (documented >2^53 divergence),
        # but differing 64-bit signedness has no shared carrier
        tct = e.then.ctype
        ect = e.els.ctype
        tcls = cls_of(tct)
        ecls = cls_of(ect)
        if "s" in (tcls, ecls) or "v" in (tcls, ecls):
            raise NLError("NL-COND-CLASS", f"{tcls}/{ecls}")
        merged = "f" if "f" in (tcls, ecls) else "i"
        if merged == "i" and is_u64(tct) != is_u64(ect):
            raise NLError("NL-COND-SIGN")
        t = self.t("double" if merged == "f" else "int64_t")
        self.o(f"if ({self.truth(c)}) {{")
        tv = self.expr(e.then)
        self.o(f"{t} = {self.to_double(tv) if merged == 'f' else tv.ref};")
        self.o("} else {")
        ev = self.expr(e.els)
        self.o(f"{t} = {self.to_double(ev) if merged == 'f' else ev.ref};")
        self.o("}")
        ct = tct if cls_of(tct) == merged else ect
        return Val(t, merged, ct)

    def _x_index(self, e):
        b = self.expr(e.base)
        i = self.expr(e.index)
        if b.cls != "i" or i.cls != "i":
            raise NLError("NL-INDEX")
        esize = e.ctype.size
        if esize is None:
            raise NLError("NL-INCOMPLETE")
        a = self.t()
        self.o(f"{a} = {b.ref} + {i.ref} * {esize};")
        self.o("ins += 1;")
        return self.load_value(a, e.ctype, self.is_reg_slot(e), guarded=True)

    def _x_member(self, e):
        if e.arrow:
            st = e.base.ctype.decay().pointee
            fld = st.field(e.name)
            b = self.expr(e.base)
            a = self.t()
            self.o(f"{a} = {b.ref} + {fld.offset};")
        else:
            fld = e.base.ctype.field(e.name)
            base = self.addr_of(e.base)
            a = self.t()
            self.o(f"{a} = {base} + {fld.offset};")
        self.o("ins += 1;")
        return self.load_value(a, e.ctype, self.is_reg_slot(e), guarded=True)

    def _x_cast(self, e):
        v = self.expr(e.expr)
        self.o("ins += 1;")
        to = e.to_type
        if isinstance(to, IntType):
            return self.conv(v, to)
        if isinstance(to, FloatType):
            return self.conv(v, to)
        if isinstance(to, PointerType):
            # the walker does int(v) with NO mask: negative ints stay
            # negative (carrier identity); floats truncate
            if v.cls == "f":
                return Val(f"rp_d2i({v.ref})", "i", to)
            if v.cls != "i":
                raise NLError("NL-CAST", v.cls)
            return Val(v.ref, "i", to)
        return Val(v.ref, v.cls, to)

    def _x_sizeof_type(self, e):
        if e.of_type.size is None:
            raise NLError("NL-SIZEOF")
        self.o("ins += 1;")
        return Val(_ilit(e.of_type.size), "i", e.ctype)

    def _x_sizeof_expr(self, e):
        ct = e.expr.ctype
        if ct is None or ct.size is None:
            raise NLError("NL-SIZEOF")
        self.o("ins += 1;")
        return Val(_ilit(ct.size), "i", e.ctype)

    def _x_comma(self, e):
        self.o("ins += 1;")
        self.expr(e.left)
        return self.expr(e.right)

    # -- calls -------------------------------------------------------------
    def _arg_spec(self, v: Val):
        if v.cls == "i":
            return ("i", is_u64(v.ct))
        if v.cls == "f":
            return ("f",)
        if v.cls == "s":
            return ("s", v.ct.size)
        raise NLError("NL-ARG-CLASS", v.cls)

    def _encode_args(self, vals):
        specs = []
        if len(vals) > 16:
            raise NLError("NL-ARGC", str(len(vals)))
        for i, v in enumerate(vals):
            spec = self._arg_spec(v)
            specs.append(spec)
            if spec[0] == "f":
                self.o(f"E->dargs[{i}] = {v.ref};")
            else:
                self.o(f"E->args[{i}] = {v.ref};")
        return tuple(specs)

    def _decode_result(self, ct) -> Val:
        rcls = cls_of(ct)
        if rcls == "f":
            t = self.t("double")
            self.o(f"{t} = E->dargs[0];")
            return Val(t, "f", ct)
        if rcls == "i":
            t = self.t()
            self.o(f"{t} = E->args[0];")
            return Val(t, "i", ct)
        if rcls == "v":
            return Val("0", "v", ct)
        raise NLError("NL-RET-CLASS", rcls)

    def _callfb(self, fn_or_name, e, vals) -> Val:
        """Route one call site through the Python machine (exact
        semantics for anything the native ABI cannot carry)."""
        specs = self._encode_args(vals)
        rcls = cls_of(e.ctype)
        if rcls == "s":
            raise NLError("NL-RET-BLOB-FB")
        kind = "builtin" if isinstance(fn_or_name, str) else "user"
        name = fn_or_name if kind == "builtin" else fn_or_name.name
        site = self.call_site(kind, name, e.nid, specs, rcls)
        self.o(f"CB({OP_CALLFB if kind == 'user' else OP_BUILTIN}, "
               f"{site}, 0);")
        return self._decode_result(e.ctype)

    def _native_math(self, name, e, vals) -> Val:
        """Emit a math builtin as plain C with guards that divert to
        the Python implementation wherever it would raise (domain
        errors -> ValueError, overflow -> OverflowError)."""
        cfunc, cost_key = _NATIVE_MATH[name]
        nargs = 2 if name == "pow" else 1
        if len(vals) < nargs:
            raise NLError("NL-MATH-ARGC", name)
        args = [self.to_double(v) for v in vals[:nargs]]
        a0 = self.t("double")
        self.o(f"{a0} = {args[0]};")
        if nargs == 2:
            a1 = self.t("double")
            self.o(f"{a1} = {args[1]};")
        t = self.t("double")
        fallback = None
        if name == "sqrt":
            fallback = f"{a0} < 0.0"
        elif name == "log":
            fallback = f"{a0} <= 0.0"
        elif name in ("sin", "cos", "floor", "ceil"):
            fallback = f"!isfinite({a0})"
        self.o("{")
        if fallback is not None:
            self.o(f"if ({fallback}) goto NM{e.nid}_fb;")
        if nargs == 2:
            self.o(f"{t} = {cfunc}({a0}, {a1});")
            self.o(f"if (!isfinite({t}) && isfinite({a0}) && "
                   f"isfinite({a1})) goto NM{e.nid}_fb;")
        else:
            self.o(f"{t} = {cfunc}({a0});")
            if name in ("exp",):
                self.o(f"if (!isfinite({t}) && isfinite({a0})) "
                       f"goto NM{e.nid}_fb;")
        self.o(f"cy8 += {_cy8(cost_key)};")
        self.o(f"goto NM{e.nid}_done;")
        self.label(f"NM{e.nid}_fb")
        # re-encode through the Python impl so the exception (and its
        # cost charge) is exactly the interpreter's
        specs = self._encode_args(vals)
        site = self.call_site("builtin", name, e.nid, specs, "f")
        self.o(f"CB({OP_BUILTIN}, {site}, 0);")
        self.o(f"{t} = E->dargs[0];")
        self.label(f"NM{e.nid}_done")
        self.o("}")
        return Val(t, "f", e.ctype)

    def _x_call(self, e):
        name = e.callee_name
        sema = self.low.sema
        if name is not None and name not in sema.functions:
            impl = BUILTIN_IMPLS.get(name)
            if impl is None:
                self.o("ins += 1;")
                site = self.fault_site(
                    "interp", f"unknown function {name!r}", e.nid)
                self.o(f"FAULT({site});")
                return Val("0", "v", e.ctype)
            self.o("ins += 1;")
            vals = [self.expr(a) for a in e.args]
            self.o(f"cy8 += {_cy8('builtin')};")
            if name in _NATIVE_MATH:
                return self._native_math(name, e, vals)
            if name in ("abs", "labs"):
                if not vals:
                    raise NLError("NL-MATH-ARGC", name)
                v = vals[0]
                vi = f"rp_d2i({v.ref})" if v.cls == "f" else v.ref
                self.o(f"cy8 += {_cy8('alu')};")
                t = self.t()
                self.o(f"{t} = {vi} < 0 ? -({vi}) : ({vi});")
                return Val(t, "i", e.ctype)
            return self._callfb(name, e, vals)
        fn = sema.functions.get(name) if name else None
        if fn is None:
            raise NLError("NL-FNPTR")
        self.o("ins += 1;")
        vals = [self.expr(a) for a in e.args]
        meta = self.low.native_fns.get(fn.nid)
        if meta is None or len(vals) < len(fn.params):
            # callee not lowered, or zip-truncation would leave params
            # without storage: the Python machine reproduces it exactly
            return self._callfb(fn, e, vals)
        cargs = []
        for v, pcls in zip(vals, meta.params):
            if pcls == "f":
                cargs.append(self.to_double(v))
            elif pcls == "i":
                cargs.append(f"rp_d2i({v.ref})" if v.cls == "f" else v.ref)
            else:  # 's': source address carrier
                if v.cls != "s":
                    raise NLError("NL-STRUCT-ARG", v.cls)
                cargs.append(v.ref)
        self.callees.add(fn.nid)
        rcls = meta.ret_cls
        t = self.t("double" if rcls == "f" else "int64_t")
        # commit local cost counters so a fault inside the callee (which
        # longjmps past this frame) reports exact totals; reload M in
        # case the callee grew the backing buffer
        self.o("FLUSH;")
        self.o(f"{t} = {meta.cname}(E{''.join(', ' + a for a in cargs)});"
               f" M = E->M;")
        if rcls == "s":
            return Val(t, "s", e.ctype)
        if rcls == "v":
            return Val(t, "v", e.ctype)
        return Val(t, rcls, e.ctype)

    # ======================================================================
    # statements
    # ======================================================================
    def emit_init(self, base: str, ct, init, off: int):
        """Flattened initializer stores (mirrors ``_gather_init``)."""
        if isinstance(init, list):
            if isinstance(ct, ArrayType):
                esize = ct.elem.size
                for i, item in enumerate(init):
                    self.emit_init(base, ct.elem, item, off + i * esize)
            elif isinstance(ct, StructType):
                for item, field in zip(init, ct.fields):
                    self.emit_init(base, field.type, item,
                                   off + field.offset)
            else:
                raise NLError("NL-BAD-INIT")
        else:
            v = self.expr(init)
            addr = f"({base} + {off})" if off else base
            self.store_value(addr, v, ct, cheap=False, guarded=True)

    def emit_decl(self, d: ast.VarDecl):
        ct = d.ctype
        if ct.size is None and d.vla_length is not None:
            cnt = self.expr(d.vla_length)
            ci = f"rp_d2i({cnt.ref})" if cnt.cls == "f" else cnt.ref
            n = self.t()
            self.o(f"{n} = {ci};")
            sz = self.t()
            self.o(f"{sz} = {ct.elem.size} * ({n} < 1 ? 1 : {n});")
            size_ref = sz
        elif ct.size is None:
            raise NLError("NL-INCOMPLETE-LOCAL", d.name)
        else:
            size_ref = str(ct.size)
        a = self.t()
        self.alloca(size_ref, a)
        self.bound[d] = a
        if d.init is not None:
            self.emit_init(a, ct, d.init, 0)

    def _backstop(self, site: int):
        self.o(f"E->steps += 1; if (E->steps > E->max_steps) "
               f"FAULT({site});")

    def _loop_site(self, s) -> int:
        return self.fault_site(
            "interp", "step budget exceeded (runaway program?)", s.nid)

    def emit_while(self, s):
        self.loop_nids.add(s.nid)
        site = self._loop_site(s)
        top, brk = f"W{s.nid}_c", f"W{s.nid}_b"
        self.loops.append((brk, top))
        self.label(top)
        self.o(f"cy8 += {_cy8('alu')};")
        c = self.expr(s.cond)
        self.o(f"if (!{self.truth(c)}) goto {brk};")
        self._backstop(site)
        self.stmt(s.body)
        self.o(f"goto {top};")
        self.label(brk)
        self.loops.pop()

    def emit_dowhile(self, s):
        self.loop_nids.add(s.nid)
        site = self._loop_site(s)
        top, cont, brk = f"D{s.nid}_s", f"D{s.nid}_c", f"D{s.nid}_b"
        self.loops.append((brk, cont))
        self.label(top)
        self._backstop(site)
        self.stmt(s.body)
        self.label(cont)
        self.o(f"cy8 += {_cy8('alu')};")
        c = self.expr(s.cond)
        self.o(f"if ({self.truth(c)}) goto {top};")
        self.label(brk)
        self.loops.pop()

    def emit_for(self, s):
        self.loop_nids.add(s.nid)
        site = self._loop_site(s)
        top, cont, brk = f"F{s.nid}_s", f"F{s.nid}_c", f"F{s.nid}_b"
        if s.init is not None:
            self.stmt(s.init)
        self.loops.append((brk, cont))
        self.label(top)
        if s.cond is not None:
            self.o(f"cy8 += {_cy8('alu')};")
            c = self.expr(s.cond)
            self.o(f"if (!{self.truth(c)}) goto {brk};")
        self._backstop(site)
        self.stmt(s.body)
        self.label(cont)
        if s.step is not None:
            self.expr(s.step)
        self.o(f"goto {top};")
        self.label(brk)
        self.loops.pop()

    def emit_return(self, s):
        v = self.expr(s.expr) if s.expr is not None else None
        if self.in_function:
            rc = self.ret_cls
            if v is None:
                self.o("E->rnone = 1;")
                carrier = "0.0" if rc == "f" else "0"
            else:
                self.o("E->rnone = 0;")
                if rc == "f":
                    if v.cls == "s":
                        raise NLError("NL-RET-MISMATCH", "s->f")
                    # int return exprs in a float fn promote through
                    # double (documented >2^53 divergence)
                    carrier = self.to_double(v)
                elif rc == "i":
                    # the walker returns the *raw* expr value without
                    # converting to the declared type, so the carrier
                    # reinterpretation must already agree
                    if v.cls != "i" or is_u64(v.ct) != self.ret_u64:
                        raise NLError("NL-RET-MISMATCH",
                                      f"{v.cls}->{rc}")
                    carrier = v.ref
                elif rc == "s":
                    if v.cls != "s" or self.ret_ct is None or \
                            v.ct.size != self.ret_ct.size:
                        raise NLError("NL-RET-MISMATCH",
                                      f"{v.cls}->{rc}")
                    carrier = v.ref
                elif rc == "v":
                    # value discarded; any consumer NLs at probe time
                    carrier = f"rp_d2i({v.ref})" if v.cls == "f" else v.ref
                else:  # pragma: no cover
                    raise NLError("NL-RET-CLASS", rc)
            self.o(f"E->depth -= 1; cy8 += {_cy8('ret')};")
            self.o(f"FLUSH; return {carrier};")
            return
        # statement-unit return: encode the semantic value for Python
        if v is None or v.cls == "v":
            self.o(f"E->args[1] = {RET_NONE};")
        elif v.cls == "f":
            self.o(f"E->dargs[0] = {v.ref}; E->args[1] = {RET_F64};")
        elif v.cls == "s":
            self.o(f"E->args[0] = {v.ref}; E->args[1] = {RET_BLOB}; "
                   f"E->args[2] = {v.ct.size};")
        else:
            kind = RET_U64 if is_u64(v.ct) else RET_I64
            self.o(f"E->args[0] = {v.ref}; E->args[1] = {kind};")
        self.o(f"FLUSH; E->jbp = oldjb; return {RC_RETURN};")

    def stmt(self, s):
        t = type(s)
        if t is ast.Block:
            for child in s.stmts:
                self.stmt(child)
        elif t is ast.ExprStmt:
            self.expr(s.expr)
        elif t is ast.DeclStmt:
            for d in s.decls:
                self.emit_decl(d)
        elif t is ast.If:
            self.o(f"cy8 += {_cy8('alu')};")
            c = self.expr(s.cond)
            self.o(f"if ({self.truth(c)}) {{")
            self.stmt(s.then)
            if s.els is not None:
                self.o("} else {")
                self.stmt(s.els)
            self.o("}")
        elif t is ast.While:
            self.emit_while(s)
        elif t is ast.DoWhile:
            self.emit_dowhile(s)
        elif t is ast.For:
            self.emit_for(s)
        elif t is ast.Return:
            self.emit_return(s)
        elif t is ast.Break:
            if self.loops:
                self.o(f"goto {self.loops[-1][0]};")
            elif self.in_function:
                raise NLError("NL-STRAY-BREAK")
            else:
                self.o(f"FLUSH; E->jbp = oldjb; return {RC_BREAK};")
        elif t is ast.Continue:
            if self.loops:
                self.o(f"goto {self.loops[-1][1]};")
            elif self.in_function:
                raise NLError("NL-STRAY-CONTINUE")
            else:
                self.o(f"FLUSH; E->jbp = oldjb; return {RC_CONTINUE};")
        else:
            raise NLError("NL-STMT", t.__name__)


_EMIT_BUGS = (AttributeError, KeyError, TypeError, IndexError)


def _unit_prologue(cname: str) -> List[str]:
    return [
        f"int64_t {cname}(void *ep) {{",
        "  Env *E = (Env *)ep;",
        "  char *M = E->M;",
        "  int64_t cy8 = 0, ins = 0, lds = 0, sts = 0;",
        "  jmp_buf jb; void *oldjb = E->jbp;",
        "  (void)M; (void)cy8; (void)ins; (void)lds; (void)sts;",
        f"  if (setjmp(jb)) {{ E->jbp = oldjb; return {RC_FAULT}; }}",
        "  E->jbp = (void *)&jb;",
    ]


class Lowerer:
    """Drives lowering of one analyzed program to a C translation unit.

    Pass 1 probes every function body against an optimistic registry
    (all functions assumed lowerable) and iterates to a fixpoint:
    removing a function may invalidate callers (their native call
    becomes a callback, which has its own limits).  Pass 2 re-emits the
    survivors — plus per-statement units and per-DOALL chunk drivers —
    into the final :class:`Lowering` with clean fault/call registries.
    """

    def __init__(self, program: ast.Program, sema):
        self.program = program
        self.sema = sema
        self.tid_decl = sema.thread_context.get("__tid")
        self.nthreads_decl = sema.thread_context.get("__nthreads")
        self.global_idx: Dict[ast.VarDecl, int] = {
            d: i for i, d in enumerate(sema.globals)
        }
        self.native_fns: Dict[int, FnMeta] = {}
        self.result = Lowering()
        self._nl: Dict[str, str] = {}

    # -- function scaffolding ---------------------------------------------
    def _fn_meta(self, fn: ast.FunctionDef) -> FnMeta:
        params = []
        for p in fn.params:
            if p.vla_length is not None:
                raise NLError("NL-VLA-PARAM", p.name)
            if isinstance(p.ctype, ArrayType):
                raise NLError("NL-ARRAY-PARAM", p.name)
            c = cls_of(p.ctype)
            if c == "v":
                raise NLError("NL-PARAM-CLASS", p.name)
            params.append(c)
        rct = fn.ret_type
        runner = None
        if all(c in ("i", "f") for c in params) and len(params) <= 16:
            runner = f"r_{fn.nid}"
        return FnMeta(fn.nid, fn.name, f"f_{fn.nid}", runner,
                      tuple(params), cls_of(rct), is_u64(rct))

    def _fn_sig(self, meta: FnMeta) -> str:
        parts = ["Env *E"]
        for i, pcls in enumerate(meta.params):
            ctype = "double" if pcls == "f" else "int64_t"
            parts.append(f"{ctype} p{i}")
        ret = "double" if meta.ret_cls == "f" else "int64_t"
        return f"static {ret} {meta.cname}({', '.join(parts)})"

    def _emit_fn_body(self, fn: ast.FunctionDef, meta: FnMeta) -> _Emit:
        em = _Emit(self)
        em.in_function = True
        em.ret_cls = meta.ret_cls
        em.ret_u64 = meta.ret_u64
        em.ret_ct = fn.ret_type
        site = em.fault_site(
            "interp", f"call stack overflow in {fn.name}", None)
        em.o(f"if (E->depth > 250) FAULT({site});")
        em.o(f"cy8 += {_cy8('call')};")
        em.o("E->depth += 1;")
        for i, (p, pcls) in enumerate(zip(fn.params, meta.params)):
            a = em.t()
            em.alloca(str(p.ctype.size), a)
            em.bound[p] = a
            em.store_value(a, Val(f"p{i}", pcls, p.ctype), p.ctype,
                           cheap=False, guarded=True)
        em.stmt(fn.body)
        # implicit fall-off-the-end return (the walker returns None)
        em.o("E->rnone = 1;")
        em.o(f"E->depth -= 1; cy8 += {_cy8('ret')};")
        em.o(f"FLUSH; return {'0.0' if meta.ret_cls == 'f' else '0'};")
        if em.free_order:  # pragma: no cover - var_addr_ref NLs first
            raise NLError("NL-FREE-VAR", em.free_order[0].name)
        return em

    def _probe_functions(self):
        """Optimistic registry, then remove failures to a fixpoint."""
        bodies = {}
        for name, fn in self.sema.functions.items():
            if fn.body is None:
                self._nl[f"fn:{name}"] = "NL-NO-BODY"
                continue
            try:
                self.native_fns[fn.nid] = self._fn_meta(fn)
                bodies[fn.nid] = fn
            except NLError as err:
                self._nl[f"fn:{name}"] = err.reason
        while True:
            failed = []
            for nid, fn in bodies.items():
                if nid not in self.native_fns:
                    continue
                self.result = Lowering()  # throwaway probe registries
                try:
                    self._emit_fn_body(fn, self.native_fns[nid])
                except NLError as err:
                    failed.append((nid, fn.name, err.reason))
                except _EMIT_BUGS:
                    failed.append((nid, fn.name, "NL-EMIT"))
            if not failed:
                break
            for nid, name, reason in failed:
                del self.native_fns[nid]
                self._nl[f"fn:{name}"] = reason

    # -- final emission ----------------------------------------------------
    def _finish_fn(self, fn: ast.FunctionDef, meta: FnMeta,
                   em: _Emit) -> List[str]:
        meta.loop_nids = set(em.loop_nids)
        meta.callees = set(em.callees)
        self.result.fns[fn.nid] = meta
        self.result.fn_by_name[fn.name] = fn.nid
        return [self._fn_sig(meta) + " {",
                "  int64_t cy8 = 0, ins = 0, lds = 0, sts = 0;",
                "  char *M = E->M;",
                "  (void)M; (void)cy8; (void)ins; (void)lds; (void)sts;",
                ] + em.lines + ["}"]

    def _emit_runner(self, fn: ast.FunctionDef, meta: FnMeta) -> List[str]:
        args = []
        for i, pcls in enumerate(meta.params):
            args.append(f"E->dargs[{i}]" if pcls == "f"
                        else f"E->args[{i}]")
        call = f"{meta.cname}(E{''.join(', ' + a for a in args)})"
        rtype = "double" if meta.ret_cls == "f" else "int64_t"
        lines = [
            f"int64_t {meta.runner}(void *ep) {{",
            "  Env *E = (Env *)ep;",
            "  jmp_buf jb; void *oldjb = E->jbp;",
            f"  if (setjmp(jb)) {{ E->jbp = oldjb; return {RC_FAULT}; }}",
            "  E->jbp = (void *)&jb;",
            f"  {rtype} r;",
            f"  r = {call};",
            f"  if (E->rnone) {{ E->args[1] = {RET_NONE}; }}",
        ]
        if meta.ret_cls == "f":
            lines.append(f"  else {{ E->dargs[0] = r; "
                         f"E->args[1] = {RET_F64}; }}")
        elif meta.ret_cls == "s":
            lines.append(f"  else {{ E->args[0] = r; "
                         f"E->args[1] = {RET_BLOB}; "
                         f"E->args[2] = {fn.ret_type.size}; }}")
        else:
            kind = RET_U64 if meta.ret_u64 else RET_I64
            lines.append(f"  else {{ E->args[0] = r; "
                         f"E->args[1] = {kind}; }}")
        lines += [
            "  E->jbp = oldjb;",
            f"  return {RC_OK};",
            "}",
        ]
        return lines

    def _emit_unit(self, s: ast.Stmt) -> List[str]:
        cname = f"u_{s.nid}"
        em = _Emit(self)
        em.stmt(s)
        meta = UnitMeta(s.nid, cname, tuple(em.free_order))
        meta.loop_nids = set(em.loop_nids)
        meta.callees = set(em.callees)
        self.result.units[s.nid] = meta
        return (_unit_prologue(cname) + em.lines +
                [f"  FLUSH; E->jbp = oldjb; return {RC_OK};", "}"])

    @staticmethod
    def _control_of(s: ast.For) -> Optional[ast.VarDecl]:
        init = s.init
        if isinstance(init, ast.DeclStmt) and len(init.decls) == 1:
            return init.decls[0]
        if isinstance(init, ast.ExprStmt) and \
                isinstance(init.expr, ast.Assign) and \
                init.expr.op == "=" and \
                isinstance(init.expr.target, ast.Ident) and \
                isinstance(init.expr.target.decl, ast.VarDecl):
            return init.expr.target.decl
        return None

    def _emit_chunk(self, s: ast.For,
                    control: ast.VarDecl) -> List[str]:
        """DOALL chunk driver: replays ``_task_doall``'s per-iteration
        protocol — eval cond (cost only), body, eval step — for k in
        [args[0], args[1]), with the iteration counter mirrored to the
        heartbeat slot at args[4] and reported back via args[6]."""
        cname = f"k_{s.nid}"
        em = _Emit(self)
        brk_lbl, cont_lbl = f"KB_{s.nid}", f"KC_{s.nid}"
        em.loops.append((brk_lbl, cont_lbl))
        em.o("for (k_ = E->args[0]; k_ < E->args[1]; k_++) {")
        if s.cond is not None:
            em.expr(s.cond)
        em.stmt(s.body)
        em.label(cont_lbl)
        if s.step is not None:
            em.expr(s.step)
        em.o("iters_ += 1;")
        em.o("if (hb_) *hb_ = iters_;")
        em.o("}")
        em.o(f"E->args[6] = iters_; FLUSH; E->jbp = oldjb; "
             f"return {RC_OK};")
        em.label(brk_lbl)
        em.o(f"E->args[6] = iters_; FLUSH; E->jbp = oldjb; "
             f"return {RC_BREAK};")
        em.loops.pop()
        meta = ChunkMeta(s.nid, cname, tuple(em.free_order), control)
        meta.loop_nids = set(em.loop_nids)
        meta.callees = set(em.callees)
        self.result.chunks[s.nid] = meta
        prologue = _unit_prologue(cname)
        prologue += [
            "  { int64_t k_, iters_ = 0; volatile int64_t *hb_;",
            "  hb_ = E->args[4] ? (volatile int64_t *)(intptr_t)"
            "E->args[4] : (volatile int64_t *)0;",
        ]
        return prologue + em.lines + ["  }", "}"]

    # -- driver ------------------------------------------------------------
    def lower(self) -> Lowering:
        self._probe_functions()
        while True:  # final pass; restart if a survivor regresses
            self.result = Lowering()
            chunks_src: List[str] = []
            units_src: List[str] = []
            fns_src: List[str] = []
            runners_src: List[str] = []
            regressed = None
            for name, fn in self.sema.functions.items():
                meta = self.native_fns.get(fn.nid)
                if meta is None:
                    continue
                try:
                    em = self._emit_fn_body(fn, meta)
                except (NLError, *_EMIT_BUGS) as err:  # pragma: no cover
                    reason = err.reason if isinstance(err, NLError) \
                        else "NL-EMIT"
                    regressed = (fn.nid, name, reason)
                    break
                fns_src += self._finish_fn(fn, meta, em)
                if meta.runner:
                    runners_src += self._emit_runner(fn, meta)
            if regressed is not None:
                nid, name, reason = regressed
                del self.native_fns[nid]
                self._nl[f"fn:{name}"] = reason
                continue
            for root in self._unit_roots():
                try:
                    units_src += self._emit_unit(root)
                except NLError as err:
                    self._nl[f"unit:{root.nid}"] = err.reason
                except _EMIT_BUGS:
                    self._nl[f"unit:{root.nid}"] = "NL-EMIT"
            for loop in ast.iter_loops(self.program):
                if not isinstance(loop, ast.For):
                    continue
                control = self._control_of(loop)
                if control is None:
                    self._nl[f"chunk:{loop.nid}"] = "NL-CONTROL"
                    continue
                try:
                    chunks_src += self._emit_chunk(loop, control)
                except NLError as err:
                    self._nl[f"chunk:{loop.nid}"] = err.reason
                except _EMIT_BUGS:
                    self._nl[f"chunk:{loop.nid}"] = "NL-EMIT"
            break
        res = self.result
        res.sema = self.sema
        res.globals_order = tuple(self.sema.globals)
        res.nl = dict(self._nl)
        res.node_by_nid = {n.nid: n for n in self.program.walk()}
        fwd = [self._fn_sig(m) + ";" for m in
               (res.fns[k] for k in sorted(res.fns))]
        res.exports = (
            [res.units[k].cname for k in sorted(res.units)] +
            [res.chunks[k].cname for k in sorted(res.chunks)] +
            [m.runner for m in res.fns.values() if m.runner]
        )
        res.source = "\n".join(
            [_PRELUDE] + fwd + [""] + fns_src + [""] + units_src +
            [""] + chunks_src + [""] + runners_src + [""]
        )
        res.fingerprint = hashlib.sha256(
            (f"abi{NATIVE_ABI_VERSION}\n" + res.source).encode()
        ).hexdigest()[:16]
        return res

    def _unit_roots(self):
        """Statements the runtime may dispatch through ``exec_stmt``:
        loops, loop bodies, and DOACROSS stage candidates (immediate
        children of loop body blocks).  DeclStmt roots are excluded —
        their bindings must outlive the unit (the Python fallback binds
        them in the machine frame where sibling stages can see them)."""
        seen: Set[int] = set()
        roots: List[ast.Stmt] = []

        def add(s):
            if s.nid in seen or isinstance(s, ast.DeclStmt):
                return
            seen.add(s.nid)
            roots.append(s)

        for loop in ast.iter_loops(self.program):
            add(loop)
            add(loop.body)
            if isinstance(loop.body, ast.Block):
                for child in loop.body.stmts:
                    add(child)
        return roots


def lower_program(program: ast.Program, sema) -> Lowering:
    """Lower ``program`` to a C translation unit + dispatch metadata."""
    return Lowerer(program, sema).lower()


_X = {
    ast.IntLit: _Emit._x_intlit,
    ast.FloatLit: _Emit._x_floatlit,
    ast.StrLit: _Emit._x_strlit,
    ast.Ident: _Emit._x_ident,
    ast.Unary: _Emit._x_unary,
    ast.Binary: _Emit._x_binary,
    ast.Assign: _Emit._x_assign,
    ast.Cond: _Emit._x_cond,
    ast.Call: _Emit._x_call,
    ast.Index: _Emit._x_index,
    ast.Member: _Emit._x_member,
    ast.Cast: _Emit._x_cast,
    ast.SizeofType: _Emit._x_sizeof_type,
    ast.SizeofExpr: _Emit._x_sizeof_expr,
    ast.Comma: _Emit._x_comma,
}
