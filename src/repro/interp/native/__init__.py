"""Native execution tier: lower analyzed loops to C, run on the segment.

Public surface:

- :func:`native_backend_available` — capability probe with ``NL-*``
  reason codes (mirrors ``process_backend_available``)
- :class:`NativeMachine` — Machine subclass dispatching into the
  compiled ``.so`` (falls back per-construct to ``bytecode-bare``)
- :func:`lower_program` — pure codegen (no compiler needed)
- :data:`NATIVE_ABI_VERSION` — folds into every cache key
"""

from .backend import (  # noqa: F401
    COMPILER_INVOCATIONS, NativeContext, compile_source,
    native_backend_available, native_context_for, so_cache_key,
)
from .codegen import NATIVE_ABI_VERSION, Lowering, lower_program  # noqa: F401
from .runtime import NativeMachine  # noqa: F401
