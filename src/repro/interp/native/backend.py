"""Native tier backend: capability probe, C compilation, .so loading.

Mirrors :func:`repro.runtime.multicore.process_backend_available`: a
cached ``native_backend_available()`` probe with structured ``NL-*``
reason codes, so callers (CLI, service, tests) can degrade gracefully
to ``bytecode-bare`` with a diagnostic instead of erroring.

Compilation runs ``cc -shared -O2 -fPIC -fwrapv`` (cffi's API mode
needs the same C compiler, so the compiler's presence is the real
gate); binding prefers cffi's ABI-mode ``dlopen`` when cffi is
importable and falls back to ``ctypes.CDLL``.  Compiled artifacts are
cached on disk keyed by source hash, ABI version, flags and compiler
identity — a warm cache hit never invokes the C compiler (asserted by
the serve smoke test via :data:`COMPILER_INVOCATIONS` /
``$REPRO_NATIVE_CC_LOG``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, Optional, Tuple

from .codegen import NATIVE_ABI_VERSION, Lowering, lower_program

#: total C compiler invocations in this process (serve-smoke gate)
COMPILER_INVOCATIONS = 0

#: process-wide .so cache accounting (the bench harness diffs these
#: around a benchmark to attribute compiles/hits to it)
SO_CACHE_HITS = 0
SO_CACHE_MISSES = 0
COMPILE_SECONDS = 0.0

#: appended with one line per compiler invocation when set
CC_LOG_ENV = "REPRO_NATIVE_CC_LOG"

#: override the on-disk .so cache directory
CACHE_ENV = "REPRO_NATIVE_CACHE"

CFLAGS = ("-shared", "-O2", "-fPIC", "-fwrapv")

_AVAILABLE: Optional[Tuple[bool, str]] = None
_CC_IDENTITY: Optional[str] = None


def _find_cc() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def cc_identity() -> str:
    """Compiler path + version line (part of the .so cache key)."""
    global _CC_IDENTITY
    if _CC_IDENTITY is not None:
        return _CC_IDENTITY
    cc = _find_cc()
    if cc is None:
        _CC_IDENTITY = "no-cc"
        return _CC_IDENTITY
    try:
        out = subprocess.run([cc, "--version"], capture_output=True,
                             text=True, timeout=30)
        version = (out.stdout or out.stderr).splitlines()[0].strip()
    except Exception:  # pragma: no cover - host-dependent
        version = "unknown"
    _CC_IDENTITY = f"{cc} {version}"
    return _CC_IDENTITY


def native_backend_available(recheck: bool = False) -> Tuple[bool, str]:
    """Whether this host can compile and load the native tier.

    Returns ``(ok, reason)`` where ``reason`` is an ``NL-*`` structured
    code on failure (``NL-PLATFORM``, ``NL-NO-CC``, ``NL-LOAD``).  A
    missing cffi is *not* fatal (the ctypes loader covers it) — it is
    surfaced as the informational suffix of the ok-reason instead."""
    global _AVAILABLE
    if _AVAILABLE is not None and not recheck:
        return _AVAILABLE
    if not (sys.platform.startswith("linux")
            or sys.platform == "darwin"):
        _AVAILABLE = (False, "NL-PLATFORM: native tier needs a POSIX "
                             f"dlopen host, got {sys.platform}")
        return _AVAILABLE
    if _find_cc() is None:
        _AVAILABLE = (False, "NL-NO-CC: no C compiler on PATH "
                             "(tried $CC, cc, gcc, clang)")
        return _AVAILABLE
    try:
        probe = compile_source(
            "#include <stdint.h>\n"
            "int64_t rp_probe(void *e) { (void)e; return 42; }\n",
            ["rp_probe"], tag="probe")
    except Exception as exc:  # pragma: no cover - host-dependent
        _AVAILABLE = (False, f"NL-LOAD: toolchain probe failed: {exc}")
        return _AVAILABLE
    if probe.handles["rp_probe"](0) != 42:  # pragma: no cover
        _AVAILABLE = (False, "NL-LOAD: probe entry returned garbage")
        return _AVAILABLE
    note = "" if _has_cffi() else " (cffi absent: NL-NO-CFFI, using ctypes)"
    _AVAILABLE = (True, "cc+dlopen ok" + note)
    return _AVAILABLE


def _has_cffi() -> bool:
    try:
        import cffi  # noqa: F401
        return True
    except ImportError:
        return False


class CompiledLib:
    """A loaded .so: uniform ``int64_t f(void *)`` entry handles."""

    def __init__(self, path: str, handles: Dict, cache_hit: bool,
                 compile_seconds: float, binder: str):
        self.path = path
        self.handles = handles
        self.cache_hit = cache_hit
        self.compile_seconds = compile_seconds
        self.binder = binder  # "cffi" | "ctypes"

    def __repr__(self):  # pragma: no cover - debug aid
        hit = "hit" if self.cache_hit else "miss"
        return (f"<CompiledLib {os.path.basename(self.path)} "
                f"{self.binder} cache-{hit}>")


def _cache_dir(explicit: Optional[str]) -> str:
    path = explicit or os.environ.get(CACHE_ENV)
    if not path:
        path = os.path.join(tempfile.gettempdir(),
                            f"repro-native-{os.getuid()}")
    os.makedirs(path, exist_ok=True)
    return path


def so_cache_key(source: str) -> str:
    """Cache key chain: C source (which already folds the program's
    lowered shape + ABI version) + opt flags + compiler identity."""
    blob = "\x00".join([
        f"abi{NATIVE_ABI_VERSION}", " ".join(CFLAGS), cc_identity(),
        source,
    ])
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _bind(path: str, exports) -> Tuple[Dict, str]:
    """Bind exports as ``callable(env_address_int) -> int`` uniformly
    across both loaders (callers pass a raw integer address)."""
    if _has_cffi():
        import cffi
        ffi = cffi.FFI()
        ffi.cdef("".join(f"int64_t {name}(void *);\n"
                         for name in exports))
        lib = ffi.dlopen(path)
        handles = {}
        for name in exports:
            raw = getattr(lib, name)

            def call(addr, _raw=raw, _ffi=ffi):
                return _raw(_ffi.cast("void *", addr))

            handles[name] = call
        # keep the FFI object alive alongside the handles
        handles["__ffi__"] = (ffi, lib)
        return handles, "cffi"
    import ctypes
    lib = ctypes.CDLL(path)
    handles = {}
    for name in exports:
        fn = getattr(lib, name)
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.c_void_p]
        handles[name] = fn
    handles["__lib__"] = lib
    return handles, "ctypes"


def compile_source(source: str, exports, cache_dir: Optional[str] = None,
                   tag: str = "native") -> CompiledLib:
    """Compile ``source`` to a cached .so and bind ``exports``."""
    global COMPILER_INVOCATIONS, SO_CACHE_HITS, SO_CACHE_MISSES
    global COMPILE_SECONDS
    key = so_cache_key(source)
    directory = _cache_dir(cache_dir)
    so_path = os.path.join(directory, f"{tag}-{key}.so")
    hit = os.path.exists(so_path)
    seconds = 0.0
    if not hit:
        cc = _find_cc()
        if cc is None:
            raise RuntimeError("NL-NO-CC: no C compiler on PATH")
        c_path = os.path.join(directory, f"{tag}-{key}.c")
        with open(c_path, "w") as fh:
            fh.write(source)
        tmp_so = so_path + f".tmp{os.getpid()}"
        t0 = time.perf_counter()
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp_so, c_path],
            capture_output=True, text=True)
        seconds = time.perf_counter() - t0
        COMPILER_INVOCATIONS += 1
        log = os.environ.get(CC_LOG_ENV)
        if log:
            with open(log, "a") as fh:
                fh.write(f"{tag}-{key} rc={proc.returncode} "
                         f"{seconds:.3f}s\n")
        if proc.returncode != 0:
            raise RuntimeError(
                f"NL-CC-FAIL: {cc} exited {proc.returncode}: "
                f"{proc.stderr[-2000:]}")
        os.replace(tmp_so, so_path)  # atomic vs concurrent builders
    if hit:
        SO_CACHE_HITS += 1
    else:
        SO_CACHE_MISSES += 1
        COMPILE_SECONDS += seconds
    handles, binder = _bind(so_path, exports)
    return CompiledLib(so_path, handles, hit, seconds, binder)


# ---------------------------------------------------------------------------
# per-program lowering registry (fork-inherited: the parent lowers and
# compiles before spawning workers, so warm forks never touch cc)
# ---------------------------------------------------------------------------

class NativeContext:
    """Lowering + compiled library for one program."""

    def __init__(self, lowering: Lowering, lib: CompiledLib):
        self.lowering = lowering
        self.lib = lib


_CONTEXTS: Dict[int, Tuple[object, NativeContext]] = {}


def native_context_for(program, sema,
                       cache_dir: Optional[str] = None) -> NativeContext:
    """The (lowered, compiled, bound) native context for ``program``.

    Raises ``RuntimeError`` with an ``NL-*`` reason when the backend is
    unavailable.  Results are memoized per program object and inherited
    by forked workers."""
    entry = _CONTEXTS.get(id(program))
    if entry is not None and entry[0] is program:
        return entry[1]
    ok, reason = native_backend_available()
    if not ok:
        raise RuntimeError(reason)
    lowering = lower_program(program, sema)
    lib = compile_source(lowering.source, lowering.exports,
                         cache_dir=cache_dir,
                         tag=f"prog-{lowering.fingerprint}")
    ctx = NativeContext(lowering, lib)
    _CONTEXTS[id(program)] = (program, ctx)
    return ctx
