"""Memory-access observation utilities.

Observers attach to a :class:`~repro.interp.machine.Machine` and
receive one ``on_access(site, addr, size, is_store)`` call per memory
access.  ``site`` is the AST node id of the access expression — the
vertex identity in the paper's loop-level data dependence graph.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple


class AccessEvent(NamedTuple):
    site: int
    addr: int
    size: int
    is_store: bool


class RecordingObserver:
    """Stores every access; for tests and small-scale debugging only."""

    def __init__(self):
        self.events: List[AccessEvent] = []

    def on_access(self, site: int, addr: int, size: int, is_store: bool):
        self.events.append(AccessEvent(site, addr, size, is_store))


class FootprintObserver:
    """Per-site byte footprints (reads/writes); cheap enough to keep on
    for whole-benchmark runs."""

    def __init__(self):
        self.reads: Dict[int, int] = {}
        self.writes: Dict[int, int] = {}

    def on_access(self, site: int, addr: int, size: int, is_store: bool):
        bucket = self.writes if is_store else self.reads
        bucket[site] = bucket.get(site, 0) + size


class RaceChecker:
    """Cross-thread conflict detector for simulated parallel runs.

    The parallel runtime switches ``current_thread`` as it schedules
    virtual threads; afterwards :meth:`races` reports addresses written
    by one thread and touched by another.  A correct expansion
    transform must produce an empty report for DOALL loops — this is
    the reproduction's substitute for the paper's "runs correctly on
    real hardware" evidence.
    """

    def __init__(self):
        self.current_thread = 0
        #: only accesses inside a parallel region are checked: a value
        #: written before the loop and read by every thread is sharing,
        #: not racing.  Controllers call begin_region()/end_region().
        self.enabled = False
        #: byte address -> set of (thread, was_write)
        self._writers: Dict[int, Set[int]] = {}
        self._readers: Dict[int, Set[int]] = {}
        #: addresses exempt from checking (loop control variables the
        #: scheduler itself rebinds per chunk)
        self.exempt: Set[int] = set()

    def on_access(self, site: int, addr: int, size: int, is_store: bool):
        if not self.enabled:
            return
        for byte in range(addr, addr + size):
            if byte in self.exempt:
                continue
            bucket = self._writers if is_store else self._readers
            bucket.setdefault(byte, set()).add(self.current_thread)

    def begin_region(self) -> None:
        """Start checking a parallel region (clears per-region state)."""
        self._writers.clear()
        self._readers.clear()
        self.enabled = True

    def end_region(self) -> List[Tuple[int, str]]:
        """Stop checking; returns the region's conflicts."""
        found = self.races()
        self.enabled = False
        return found

    def races(self) -> List[Tuple[int, str]]:
        """(address, kind) pairs where threads conflict."""
        out: List[Tuple[int, str]] = []
        for addr, writers in self._writers.items():
            if len(writers) > 1:
                out.append((addr, "write-write"))
                continue
            readers = self._readers.get(addr)
            if readers and (readers - writers):
                out.append((addr, "read-write"))
        return out
