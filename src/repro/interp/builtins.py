"""Builtin function implementations for the MiniC machine.

Each builtin takes ``(machine, args, call_node)`` and returns the call's
value.  Signatures live in :data:`repro.frontend.sema.BUILTIN_SIGNATURES`;
keep the two tables in sync.

``malloc``/``free``/``realloc`` are the allocation routines the paper's
Table 1 expansion rules hook into; ``memset``/``memcpy`` generate traced
byte-range accesses so the dependence profiler sees them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from . import memory as mem


def _trace(machine, site: int, addr: int, size: int, is_store: bool) -> None:
    for obs in machine.observers:
        obs.on_access(site, addr, size, is_store)


def _bi_malloc(machine, args, node):
    size = int(args[0])
    machine.cost.cycles += machine_costs(machine)["malloc"]
    return machine.memory.alloc(size, mem.HEAP, label=f"malloc@L{node.loc[0]}:{node.loc[1]}", tag=node.nid)


def _bi_calloc(machine, args, node):
    count, size = int(args[0]), int(args[1])
    total = count * size
    machine.cost.cycles += machine_costs(machine)["malloc"]
    machine.cost.cycles += total * machine_costs(machine)["byte_op"]
    addr = machine.memory.alloc(total, mem.HEAP, label=f"calloc@L{node.loc[0]}:{node.loc[1]}", tag=node.nid)
    machine.memory.write_bytes(addr, b"\0" * max(total, 1))
    _trace(machine, node.nid, addr, total, True)
    return addr


def _bi_realloc(machine, args, node):
    addr, size = int(args[0]), int(args[1])
    machine.cost.cycles += machine_costs(machine)["malloc"]
    return machine.memory.realloc(addr, size)


def _bi_free(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["free"]
    addr = int(args[0])
    for hook in machine.free_hooks:
        hook(addr)
    machine.memory.free(addr)
    return None


def _bi_memset(machine, args, node):
    addr, byte, size = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    machine.cost.cycles += size * machine_costs(machine)["byte_op"] + 20
    if machine.redirector is not None:
        addr = machine.redirector(node.nid, addr, size, True)
    machine.memory.write_bytes(addr, bytes([byte]) * size)
    machine.cost.stores += 1
    _trace(machine, node.nid, addr, size, True)
    return addr


def _bi_memcpy(machine, args, node):
    dst, src, size = int(args[0]), int(args[1]), int(args[2])
    machine.cost.cycles += size * machine_costs(machine)["byte_op"] + 20
    if machine.redirector is not None:
        src = machine.redirector(node.nid, src, size, False)
        dst = machine.redirector(node.nid, dst, size, True)
    if dst + size <= src or src + size <= dst:
        # disjoint ranges: move through a transient view, no staging copy
        payload = machine.memory.view(src, size)
        machine.memory.write_bytes(dst, payload)
        payload.release()
    else:
        # overlap (memmove semantics): stage through bytes
        machine.memory.write_bytes(dst, machine.memory.read_bytes(src, size))
    machine.cost.loads += 1
    machine.cost.stores += 1
    _trace(machine, node.nid, src, size, False)
    _trace(machine, node.nid, dst, size, True)
    return dst


def _bi_strlen(machine, args, node):
    addr = int(args[0])
    text = machine.memory.read_cstring(addr)
    machine.cost.cycles += len(text) * machine_costs(machine)["byte_op"] + 10
    _trace(machine, node.nid, addr, len(text) + 1, False)
    return len(text)


def _math1(fn: Callable[[float], float], cost_key: str = "fmath"):
    def impl(machine, args, node):
        machine.cost.cycles += machine_costs(machine)[cost_key]
        return fn(float(args[0]))
    return impl


def _bi_pow(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["fmath"]
    return math.pow(float(args[0]), float(args[1]))


def _bi_abs(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["alu"]
    return abs(int(args[0]))


def _bi_print_int(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["print"]
    machine.output.append(str(int(args[0])))
    return None


def _bi_print_double(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["print"]
    machine.output.append(f"{float(args[0]):.6g}")
    return None


def _bi_print_str(machine, args, node):
    machine.cost.cycles += machine_costs(machine)["print"]
    machine.output.append(machine.memory.read_cstring(int(args[0])))
    return None


def _bi_exit(machine, args, node):
    from .machine import ExitSignal
    raise ExitSignal(int(args[0]))


def _bi_assert_true(machine, args, node):
    from .machine import InterpError
    if not int(args[0]):
        raise InterpError("assert_true failed", node)
    return None


def machine_costs(machine) -> Dict[str, float]:
    from .machine import COSTS
    return COSTS


BUILTIN_IMPLS: Dict[str, Callable] = {
    "malloc": _bi_malloc,
    "calloc": _bi_calloc,
    "realloc": _bi_realloc,
    "free": _bi_free,
    "memset": _bi_memset,
    "memcpy": _bi_memcpy,
    "memmove": _bi_memcpy,
    "strlen": _bi_strlen,
    "abs": _bi_abs,
    "labs": _bi_abs,
    "sqrt": _math1(math.sqrt),
    "fabs": _math1(abs, "alu"),
    "floor": _math1(math.floor, "falu"),
    "ceil": _math1(math.ceil, "falu"),
    "exp": _math1(math.exp),
    "log": _math1(math.log),
    "sin": _math1(math.sin),
    "cos": _math1(math.cos),
    "pow": _bi_pow,
    "print_int": _bi_print_int,
    "print_double": _bi_print_double,
    "print_str": _bi_print_str,
    "exit": _bi_exit,
    "assert_true": _bi_assert_true,
}
