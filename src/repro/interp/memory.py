"""Flat byte-addressable memory for the MiniC machine.

One linear address space backed by a growable ``bytearray`` — or, in
*buffer mode*, by a caller-supplied writable buffer (the multi-core
backend maps one ``multiprocessing.shared_memory`` segment into every
process and hands each machine a ``memoryview`` of it, so redirected
accesses from all workers hit the same bytes):

* address 0 is NULL; the first page is never allocated so stray
  dereferences of small offsets fault;
* a bump allocator serves globals, string literals, stack frames and
  the heap; freed blocks are marked dead but not reused (allocation
  identity is stable, which the analyses rely on);
* every allocation is recorded, so loads/stores can be checked against
  live blocks (memory safety violations in transformed programs are
  bugs we want to *catch*, not mask);
* live-byte and peak accounting per segment kind feeds the paper's
  Figure 14 (memory usage multiples).

The byte-level layout is faithful on purpose: the paper's span
arithmetic (``tid * span / sizeof(*p)``) and benchmarks that recast
buffers between element sizes (256.bzip2's ``zptr``) only make sense
against real byte offsets.
"""

from __future__ import annotations

import bisect
import struct as _struct
from typing import Dict, List, Optional

#: allocation kinds (segments)
GLOBAL = "global"
RODATA = "rodata"
STACK = "stack"
HEAP = "heap"

_NULL_GUARD = 4096  # first page reserved; address 0 is NULL

#: pre-compiled little-endian codecs, one per scalar struct format.  The
#: set of formats is the closed set of CType.fmt values ("b"/"h"/"i"/"q"
#: and unsigned/float variants), so the cache never grows past a dozen
#: entries; the fat-pointer span slot ("q") shares the same codec on the
#: redirect path.
_CODECS: Dict[str, _struct.Struct] = {}


def scalar_codec(fmt: str) -> _struct.Struct:
    """The compiled ``struct.Struct`` for one little-endian scalar."""
    codec = _CODECS.get(fmt)
    if codec is None:
        codec = _CODECS[fmt] = _struct.Struct("<" + fmt)
    return codec


class MemoryError_(Exception):
    """Raised on invalid memory operations (OOB, use-after-free...)."""


class Allocation:
    __slots__ = ("addr", "size", "end", "kind", "live", "label", "tag")

    def __init__(self, addr: int, size: int, kind: str, label: str = "",
                 tag: int = 0):
        self.addr = addr
        self.size = size
        #: one past the last byte; precomputed (``size`` never changes
        #: after construction — realloc makes a new record), because the
        #: containment checks in :meth:`Memory.check_access` /
        #: :meth:`Memory.find` read it on every machine memory access
        self.end = addr + size
        self.kind = kind
        self.live = True
        self.label = label
        #: AST node id of the allocation site (malloc Call node for heap,
        #: VarDecl node for globals/stack); object identity for analyses
        self.tag = tag

    def __repr__(self) -> str:
        state = "live" if self.live else "dead"
        return f"<Alloc {self.kind} @{self.addr}+{self.size} {state} {self.label}>"


class Memory:
    """The machine's address space."""

    def __init__(self, check_bounds: bool = True, reuse_heap: bool = True,
                 buffer=None, base: int = 0, limit: Optional[int] = None):
        if buffer is not None:
            # buffer mode: fixed-capacity region [base, limit) of a
            # caller-owned writable buffer (typically a shared-memory
            # segment).  The buffer must be zero-filled on arrival —
            # bytearray mode zero-extends, and NULL-guard semantics
            # rely on page zero staying clean.
            view = buffer if isinstance(buffer, memoryview) \
                else memoryview(buffer)
            self.data = view
            self.shared = True
            self.limit: Optional[int] = \
                len(view) if limit is None else limit
            self.brk = max(base, _NULL_GUARD)
        else:
            self.data = bytearray(_NULL_GUARD)
            self.shared = False
            self.limit = None
            self.brk = _NULL_GUARD
        self.check_bounds = check_bounds
        #: allocations sorted by start address (bump allocator => append order)
        self._allocs: List[Allocation] = []
        self._starts: List[int] = []
        #: exact-size free lists for heap blocks.  Address reuse is
        #: deliberate fidelity: the paper's motivating loops (dijkstra's
        #: queue nodes) only exhibit loop-carried anti/output dependences
        #: because real malloc hands back freed addresses.
        self.reuse_heap = reuse_heap
        self._freelist: Dict[int, List[Allocation]] = {}
        # accounting
        self.live_bytes: Dict[str, int] = {GLOBAL: 0, RODATA: 0, STACK: 0, HEAP: 0}
        self.peak_bytes: Dict[str, int] = dict(self.live_bytes)
        self.total_allocs = 0
        #: two-entry last-hit lookup cache: tight loops touch one block
        #: many times in a row (and copy loops alternate between two),
        #: so remembering the last allocations that satisfied a lookup
        #: skips the bisect.  Killed on free/realloc and on snapshot
        #: restore (:meth:`invalidate_lookup_cache`).
        self._hit: Optional[Allocation] = None
        self._hit2: Optional[Allocation] = None

    # -- allocation -------------------------------------------------------
    def alloc(self, size: int, kind: str = HEAP, label: str = "",
              tag: int = 0) -> int:
        """Allocate ``size`` bytes (8-byte aligned); returns the address."""
        if size < 0:
            raise MemoryError_(f"negative allocation size {size}")
        size = max(size, 1)
        if kind == HEAP and self.reuse_heap:
            bucket = self._freelist.get(size)
            if bucket:
                record = bucket.pop()
                record.live = True
                record.label = label
                record.tag = tag
                self.data[record.addr:record.end] = b"\0" * record.size
                live = self.live_bytes[kind] + size
                self.live_bytes[kind] = live
                if live > self.peak_bytes[kind]:
                    self.peak_bytes[kind] = live
                self.total_allocs += 1
                self._hit = record
                return record.addr
        addr = (self.brk + 7) & ~7
        end = addr + size
        if self.limit is not None:
            # buffer mode: the region is fixed — no extend.  Exhaustion
            # is a recoverable runtime condition (the parallel runtime
            # rolls back and falls back to a smaller footprint).
            if end > self.limit:
                raise MemoryError_(
                    f"memory region exhausted: need {end} bytes, "
                    f"region capacity {self.limit}"
                )
        elif end > len(self.data):
            self.data.extend(b"\0" * max(end - len(self.data), 65536))
        self.brk = end
        record = Allocation(addr, size, kind, label, tag)
        self._allocs.append(record)
        self._starts.append(addr)
        live = self.live_bytes[kind] + size
        self.live_bytes[kind] = live
        if live > self.peak_bytes[kind]:
            self.peak_bytes[kind] = live
        self.total_allocs += 1
        self._hit = record
        return addr

    def reset_region(self, base: int = 0) -> None:
        """Rewind the allocator to an empty region starting at ``base``,
        zeroing everything allocated so far (buffer mode: worker arenas
        are reset between tasks so fresh allocations see zero bytes,
        exactly like a freshly extended bytearray)."""
        floor = max(base, _NULL_GUARD)
        if self.brk > floor:
            self.data[floor:self.brk] = bytes(self.brk - floor)
        self.brk = floor
        self._allocs.clear()
        self._starts.clear()
        self._freelist.clear()
        for kind in self.live_bytes:
            self.live_bytes[kind] = 0
        self.peak_bytes = dict(self.live_bytes)
        self.total_allocs = 0
        self.invalidate_lookup_cache()

    def detach(self) -> None:
        """Buffer mode: replace the shared backing with a private
        bytearray copy of the region so the address space stays
        inspectable after the owning segment is closed.  No-op in
        bytearray mode."""
        if not self.shared:
            return
        snap = bytearray(self.data[:self.limit])
        self.data = snap
        self.shared = False
        self.limit = None

    def free(self, addr: int) -> None:
        """Free a heap block; must be the start of a live heap allocation."""
        if addr == 0:
            return  # free(NULL) is a no-op, like C
        record = self.find(addr)
        if record is None or not record.live or record.addr != addr:
            raise MemoryError_(f"invalid free({addr})")
        if record.kind not in (HEAP,):
            raise MemoryError_(f"free of non-heap address {addr} ({record.kind})")
        self._kill(record)

    def _kill(self, record: Allocation) -> None:
        record.live = False
        if self._hit is record:
            self._hit = None
        if self._hit2 is record:
            self._hit2 = None
        self.live_bytes[record.kind] -= record.size
        if record.kind == HEAP and self.reuse_heap:
            self._freelist.setdefault(record.size, []).append(record)

    def release_stack(self, records: List[Allocation]) -> None:
        """Free a frame's stack allocations on function return."""
        for record in records:
            if record.live:
                self._kill(record)

    def realloc(self, addr: int, new_size: int) -> int:
        """C realloc: grow/shrink by copy; realloc(NULL, n) == malloc."""
        if addr == 0:
            return self.alloc(new_size, HEAP)
        record = self.find(addr)
        if record is None or not record.live or record.addr != addr:
            raise MemoryError_(f"invalid realloc({addr})")
        new_addr = self.alloc(new_size, HEAP, record.label, record.tag)
        keep = min(record.size, new_size)
        self.data[new_addr:new_addr + keep] = self.data[addr:addr + keep]
        self._kill(record)
        return new_addr

    # -- lookup -------------------------------------------------------------
    def invalidate_lookup_cache(self) -> None:
        """Drop the last-hit cache.  Must be called whenever the
        allocation table is rewritten wholesale (snapshot restore
        truncates ``_allocs``), since a cached record may no longer be
        part of the address space."""
        self._hit = None
        self._hit2 = None

    def find(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, or None."""
        hit = self._hit
        if hit is not None and hit.addr <= addr < hit.end:
            return hit
        hit = self._hit2
        if hit is not None and hit.addr <= addr < hit.end:
            self._hit2 = self._hit
            self._hit = hit
            return hit
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        record = self._allocs[i]
        if addr >= record.end:
            return None
        self._hit2 = self._hit
        self._hit = record
        return record

    def check_access(self, addr: int, size: int) -> Allocation:
        """Validate that [addr, addr+size) lies in one live allocation."""
        hit = self._hit
        if hit is not None and hit.live and hit.addr <= addr \
                and addr + size <= hit.end:
            return hit
        hit = self._hit2
        if hit is not None and hit.live and hit.addr <= addr \
                and addr + size <= hit.end:
            self._hit2 = self._hit
            self._hit = hit
            return hit
        if addr == 0:
            raise MemoryError_("NULL dereference")
        record = self.find(addr)
        if record is None:
            raise MemoryError_(f"wild access at {addr} (size {size})")
        if not record.live:
            raise MemoryError_(f"use-after-free at {addr} in {record!r}")
        if addr + size > record.end:
            raise MemoryError_(
                f"out-of-bounds access at {addr}+{size} in {record!r}"
            )
        return record

    # -- raw byte access -------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        if self.check_bounds:
            self.check_access(addr, size)
        return bytes(self.data[addr:addr + size])

    def view(self, addr: int, size: int) -> memoryview:
        """Zero-copy window over ``[addr, addr+size)``.  The view must
        stay *transient*: in bytearray mode a live export pins the
        backing store against growth, so callers read/copy and drop it
        within the same operation (memcpy, struct blob moves)."""
        if self.check_bounds:
            self.check_access(addr, size)
        data = self.data
        if type(data) is bytearray:
            return memoryview(data)[addr:addr + size]
        return data[addr:addr + size]

    def write_bytes(self, addr: int, payload) -> None:
        """Write a bytes-like object (bytes/bytearray/memoryview —
        buffer payloads land without an intermediate copy)."""
        if self.check_bounds:
            self.check_access(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def read_scalar(self, addr: int, fmt: str, size: int):
        """Read one scalar with struct format ``fmt`` (no bounds check
        here; the machine checks before tracing)."""
        codec = _CODECS.get(fmt)
        if codec is None:
            codec = _CODECS[fmt] = _struct.Struct("<" + fmt)
        return codec.unpack_from(self.data, addr)[0]

    def write_scalar(self, addr: int, fmt: str, value) -> None:
        codec = _CODECS.get(fmt)
        if codec is None:
            codec = _CODECS[fmt] = _struct.Struct("<" + fmt)
        codec.pack_into(self.data, addr, value)

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> str:
        """Read a NUL-terminated string (for print_str and errors)."""
        if limit <= 0:
            return ""
        data = self.data
        end = addr + limit
        if type(data) is bytearray:
            nul = data.find(0, addr, end)
            if nul >= 0:
                return data[addr:nul].decode("latin-1")
            if end <= len(data):
                # no terminator within the limit: return exactly
                # ``limit`` characters, like the historical per-byte walk
                return data[addr:end].decode("latin-1")
            # unterminated string running off the end of memory
            raise IndexError("bytearray index out of range")
        # buffer mode: memoryview has no .find — scan in chunks without
        # materializing the whole prefix
        stop = min(end, len(data))
        pieces = []
        pos = addr
        while pos < stop:
            chunk = bytes(data[pos:min(pos + 512, stop)])
            nul = chunk.find(0)
            if nul >= 0:
                pieces.append(chunk[:nul])
                return b"".join(pieces).decode("latin-1")
            pieces.append(chunk)
            pos += len(chunk)
        if end <= len(data):
            return b"".join(pieces).decode("latin-1")
        raise IndexError("bytearray index out of range")

    # -- accounting -------------------------------------------------------------
    def peak_footprint(self) -> int:
        """Peak live bytes across globals + heap (Figure 14's measure;
        stack is excluded as the paper measures data-structure memory)."""
        return self.peak_bytes[GLOBAL] + self.peak_bytes[HEAP] + \
            self.peak_bytes[RODATA]

    def live_allocations(self, kind: Optional[str] = None) -> List[Allocation]:
        return [
            a for a in self._allocs
            if a.live and (kind is None or a.kind == kind)
        ]
