"""The bytecode-tier machine: a drop-in ``Machine`` subclass.

``BytecodeMachine`` keeps the walker's entire state model (memory,
frames, cost sinks, watchdog stack, observers, redirector, free hooks,
loop controllers) and overrides only the four execution entry points —
``exec_stmt`` / ``eval`` / ``addr_of`` / ``call_function`` — to
dispatch into lazily compiled per-node closures.  Everything that
consumes the public machine API (the parallel runtime's controllers,
the profiler, the fault injectors, builtins, permissive recovery)
works unchanged.

Fault-injection hook points (the bytecode equivalents of the three
monkey-patch surfaces :mod:`repro.runtime.faults` uses on the walker):

* ``_stmt_hook`` — called with each statement node before it executes
  (equivalent of wrapping ``exec_stmt``; used by ThreadAborter);
* ``_tid_hook`` — called with ``(ident_node, tid)`` on every ``__tid``
  read (equivalent of replacing ``_eval_dispatch[Ident]``; used by
  CopyIndexSkew);
* ``_store_taps`` — ``{assign_nid: fn(value) -> value}`` consulted by
  Member-target assignments before the store (equivalent of wrapping
  ``store``; used by SpanCorruptor).

All three are instrumented-variant only; the bare variant compiles
them out along with observer fan-out and per-statement watchdog
accounting.
"""

from __future__ import annotations

from typing import List, Optional

from ...frontend import ast
from ...frontend.sema import SemaResult
from ..machine import Machine, resolve_engine
from .compiler import BARE, INSTRUMENTED, compiler_for


class BytecodeMachine(Machine):
    """Drop-in ``Machine`` executing compiled closures."""

    def __init__(
        self,
        program: ast.Program,
        sema: SemaResult,
        check_bounds: bool = True,
        max_steps: int = 500_000_000,
        max_loop_steps: Optional[int] = None,
        engine: Optional[str] = None,
        tracer=None,
        memory=None,
    ):
        super().__init__(program, sema, check_bounds, max_steps,
                         max_loop_steps, memory=memory)
        name = resolve_engine(engine)
        if name == "ast":  # direct construction without an engine request
            name = "bytecode"
        self.engine = name
        variant = BARE if name == "bytecode-bare" else INSTRUMENTED
        self.compiler = compiler_for(program, sema, variant, tracer)
        self._code_exprs = self.compiler.exprs
        self._code_addrs = self.compiler.addrs
        self._code_stmts = self.compiler.stmts
        self._code_fns = self.compiler.fns
        # fault-injection hook points (see module docstring)
        self._stmt_hook = None
        self._tid_hook = None
        self._store_taps = None

    # -- compiled dispatch -------------------------------------------------
    def exec_stmt(self, stmt: ast.Stmt) -> None:
        code = self._code_stmts.get(stmt.nid)
        if code is None:
            code = self.compiler.stmt(stmt)
        code(self)

    def eval(self, expr: ast.Expr):
        code = self._code_exprs.get(expr.nid)
        if code is None:
            code = self.compiler.expr(expr)
        return code(self)

    def addr_of(self, expr: ast.Expr) -> int:
        code = self._code_addrs.get(expr.nid)
        if code is None:
            code = self.compiler.addr(expr)
        return code(self)

    def call_function(self, fn: ast.FunctionDef, args: List) -> object:
        code = self._code_fns.get(fn.nid)
        if code is None:
            code = self.compiler.function(fn)
        return code(self, args)
