"""Compiler driver and per-program code caches for the bytecode tier.

A :class:`Compiler` owns the compiled-code tables for one (program,
sema, variant) triple: nid-keyed closures for expressions, lvalues and
statements, and fn-nid-keyed function runners.  Compiled code is
machine-independent — closures fetch ``m.cost`` / ``m.memory`` /
``m.redirector`` / ``m.observers`` from the machine on every call — so
one Compiler is shared by every machine executing that program (the
parallel runtime, the profiler and the harness all construct several
machines per program; compiling once amortizes the lowering).

Caches are keyed weakly by the Program object.  Transforms clone
programs before rewriting, so a compiled program's AST is stable; the
one in-place mutator in the tree (:mod:`repro.lint.mutate`) calls
:func:`invalidate_code` after corrupting an AST.

Robustness: per-node compilation is wrapped — if lowering a node
raises (malformed AST that the walker would only fault on when
executed), the node gets a fallback closure that defers to the walker
dispatch at run time, preserving the walker's error behavior and
timing.  ``Compiler.fallbacks`` counts these for tests.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional

from ...frontend import ast
from ...frontend.sema import SemaResult
from ..machine import InterpError, Machine
from .exprs import compile_addr, compile_expr
from .stmts import compile_function, compile_stmt

#: compile-time variants
INSTRUMENTED = "instrumented"
BARE = "bare"


class Compiler:
    """Lazily lowers one analyzed program to closures, memoized by nid."""

    def __init__(self, program: ast.Program, sema: SemaResult,
                 variant: str = INSTRUMENTED, tracer=None):
        self.program = program
        self.sema = sema
        self.variant = variant
        self.instrumented = variant != BARE
        self.tracer = tracer
        self.exprs: Dict[int, object] = {}
        self.addrs: Dict[int, object] = {}
        self.stmts: Dict[int, object] = {}
        self.fns: Dict[int, object] = {}
        #: nodes that fell back to walker dispatch (0 for well-formed
        #: programs; asserted by the differential tests)
        self.fallbacks = 0
        tc = getattr(sema, "thread_context", None) or {}
        self.tid_decl = tc.get("__tid")
        self.nthreads_decl = tc.get("__nthreads")

    # -- compile entry points (memoized) ---------------------------------
    def expr(self, e):
        code = self.exprs.get(e.nid)
        if code is None:
            try:
                code = compile_expr(self, e)
            except Exception:
                code = self._fallback_expr(e)
            self.exprs[e.nid] = code
        return code

    def addr(self, e):
        code = self.addrs.get(e.nid)
        if code is None:
            try:
                code = compile_addr(self, e)
            except Exception:
                code = self._fallback_addr(e)
            self.addrs[e.nid] = code
        return code

    def stmt(self, s):
        code = self.stmts.get(s.nid)
        if code is None:
            try:
                code = compile_stmt(self, s)
            except Exception:
                code = self._fallback_stmt(s)
            self.stmts[s.nid] = code
        return code

    def function(self, fn):
        code = self.fns.get(fn.nid)
        if code is None:
            tracer = self.tracer
            if tracer:
                with tracer.phase("compile-bytecode", cat="compile",
                                  function=fn.name, variant=self.variant):
                    code = compile_function(self, fn)
            else:
                code = compile_function(self, fn)
            self.fns[fn.nid] = code
        return code

    # -- fallbacks --------------------------------------------------------
    def _fallback_expr(self, e):
        self.fallbacks += 1

        def run(m):
            m.cost.instructions += 1
            return m._eval_dispatch[type(e)](e)
        return run

    def _fallback_addr(self, e):
        self.fallbacks += 1

        def run(m):
            return Machine.addr_of(m, e)
        return run

    def _fallback_stmt(self, s):
        self.fallbacks += 1
        instrumented = self.instrumented

        def run(m):
            if instrumented:
                h = m._stmt_hook
                if h is not None:
                    h(s)
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                dl = m._watchdog_deadline
                if dl is not None and steps > dl:
                    m._watchdog_trip(s)
            m._stmt_dispatch[type(s)](s)
        return run


# ---------------------------------------------------------------------------
# program-level cache
# ---------------------------------------------------------------------------

#: Program -> {(id(sema), variant): Compiler}.  The Compiler holds the
#: sema strongly, so the id() key cannot be recycled while the entry
#: lives; the outer mapping dies with the Program.
_CODE_CACHE: "weakref.WeakKeyDictionary[ast.Program, dict]" = \
    weakref.WeakKeyDictionary()


def compiler_for(program: ast.Program, sema: SemaResult, variant: str,
                 tracer=None) -> Compiler:
    """The shared Compiler for (program, sema, variant); created on
    first use.  ``tracer`` (when truthy) is adopted so subsequent lazy
    compiles emit ``compile-bytecode`` phases."""
    entry = _CODE_CACHE.get(program)
    if entry is None:
        entry = _CODE_CACHE[program] = {}
    key = (id(sema), variant)
    comp = entry.get(key)
    if comp is None:
        comp = entry[key] = Compiler(program, sema, variant, tracer)
    elif tracer:
        comp.tracer = tracer
    return comp


#: (source fingerprint, variant) -> Compiler, held *strongly*.  Worker
#: processes key compiled code on the hash of the program text they
#: were forked with: tasks carry only the fingerprint (no pickled
#: program state), and a warm worker reuses its lowered closures across
#: every task and loop of the same program.
_HASH_CACHE: Dict[tuple, Compiler] = {}


def source_fingerprint(text: str) -> str:
    """Stable content hash for compile memoization across processes."""
    import hashlib
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def compiler_for_hash(fingerprint: str, program: ast.Program,
                      sema: SemaResult, variant: str,
                      tracer=None) -> Compiler:
    """The Compiler for a (source hash, variant) pair.  ``program`` /
    ``sema`` supply the AST on a cache miss (or when the hash collides
    with a different in-memory program object)."""
    key = (fingerprint, variant)
    comp = _HASH_CACHE.get(key)
    if comp is None or comp.program is not program:
        comp = compiler_for(program, sema, variant, tracer)
        _HASH_CACHE[key] = comp
    return comp


def precompile(program: ast.Program, sema: SemaResult, variant: str,
               tracer=None, fingerprint: Optional[str] = None) -> Compiler:
    """Eagerly lower every function body of ``program`` (the service's
    ``lower`` stage).  The lazy per-node memo stays the steady-state
    path; pre-compiling up front moves all closure-building cost into
    the cacheable compile step so warm jobs execute without lowering
    work.  Registers under ``fingerprint`` when given, so forked
    workers resolve the same object via :func:`compiler_for_hash`."""
    if fingerprint is not None:
        comp = compiler_for_hash(fingerprint, program, sema, variant,
                                 tracer)
    else:
        comp = compiler_for(program, sema, variant, tracer)
    for fn in program.functions():
        comp.function(fn)
        comp.stmt(fn.body)
    return comp


def invalidate_code(program: Optional[ast.Program] = None) -> None:
    """Drop compiled code for ``program`` (or all programs).  Callers
    that mutate an AST in place after it may have been executed (the
    lint mutators) must invalidate, or stale closures would keep the
    pre-mutation semantics alive."""
    if program is None:
        _CODE_CACHE.clear()
        _HASH_CACHE.clear()
    else:
        _CODE_CACHE.pop(program, None)
        for key in [k for k, c in _HASH_CACHE.items()
                    if c.program is program]:
            del _HASH_CACHE[key]
