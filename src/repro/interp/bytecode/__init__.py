"""Bytecode compilation tier for the MiniC machine (DESIGN.md §12).

Lowers each analyzed function, lazily on first call, to a tree of
Python closures with all static decisions — dispatch, variable frame
placement, struct field offsets, element sizes, integer wrap masks,
``struct.Struct`` scalar codecs, cost constants, register-slot
classification — resolved at compile time.  The result is
subroutine-threaded code: each node's closure calls its children
directly, replacing the walker's two dict dispatches and type tests
per node.

Two compile-time variants:

* ``instrumented`` (engine ``"bytecode"``) — bit-identical cost,
  observer, watchdog and diagnostic behavior vs the tree walker; used
  for profiling, race-checked parallel runs and fault injection.
* ``bare`` (engine ``"bytecode-bare"``) — same cost model (cycles /
  instructions / loads / stores still match the walker exactly), but
  no observer fan-out and no per-statement step/watchdog accounting;
  used for baseline and verified re-runs.

Select with ``Machine(..., engine="bytecode")``, the CLI ``--engine``
flag, or ``$REPRO_ENGINE``.
"""

from .compiler import BARE, INSTRUMENTED, Compiler, compiler_for, \
    invalidate_code
from .machine import BytecodeMachine

__all__ = [
    "BARE", "INSTRUMENTED", "Compiler", "compiler_for",
    "invalidate_code", "BytecodeMachine",
]
