"""Expression compilation for the bytecode tier.

Every compiler here takes the :class:`~repro.interp.bytecode.compiler.
Compiler` ``c`` and an AST node and returns a closure over the machine
``m``:

* value closures ``run(m) -> value`` mirror ``Machine.eval`` exactly —
  including the ``instructions += 1`` charge *before* dispatch and the
  position of every cycle charge relative to operations that can raise;
* address closures ``run(m) -> addr`` mirror ``Machine.addr_of`` (which
  charges nothing for the address node itself);
* access closures ``load(m, addr)`` / ``store(m, addr, value)`` mirror
  ``Machine.load`` / ``Machine.store`` with the type dispatch, struct
  field offsets, element sizes, integer wrap masks, conversion rules
  and ``struct.Struct`` codecs all resolved at compile time.

Compile-time resolution must never *raise* at compile time for
conditions the walker reports at run time: a function is compiled
whole on its first call, including statements that never execute, so
every error case becomes a closure that raises when (and only when)
the walker would have.

Values that change identity at run time (``m.cost`` is swapped per
virtual thread, ``m.memory.data`` is replaced on snapshot restore,
``m.redirector`` is installed per loop) are fetched from the machine on
every call — never captured.  Within one closure, ``m.cost`` may only
be cached across code that cannot re-enter a controller (i.e. not
across child-closure calls).
"""

from __future__ import annotations

from ...frontend import ast
from ...frontend.ctypes import (
    ArrayType, FloatType, IntType, PointerType, StructType,
)
from ..machine import COSTS, InterpError
from ..builtins import BUILTIN_IMPLS
from .. import memory as mem
from ..memory import scalar_codec

# cost constants baked into closures (no test or runtime path mutates
# COSTS after import; DESIGN.md §12 documents the restriction)
ALU = COSTS["alu"]
IMUL = COSTS["imul"]
IDIV = COSTS["idiv"]
FALU = COSTS["falu"]
FDIV = COSTS["fdiv"]
LOAD = COSTS["load"]
STORE = COSTS["store"]
REG = COSTS["reg"]
LEA = COSTS["lea"]
PTRDIFF = COSTS["ptrdiff"]
CALL = COSTS["call"]
RET = COSTS["ret"]
BUILTIN = COSTS["builtin"]
BYTE_OP = COSTS["byte_op"]


# ---------------------------------------------------------------------------
# static classification
# ---------------------------------------------------------------------------

def is_reg_slot(c, expr) -> bool:
    """Static version of ``Machine._is_reg_slot`` (the predicate is a
    pure function of the AST and the thread-context decls)."""
    if isinstance(expr, ast.Ident):
        decl = expr.decl
        return isinstance(decl, ast.VarDecl) and \
            decl.storage in ("local", "param") and \
            not isinstance(decl.ctype, ArrayType)
    if isinstance(expr, ast.Index):
        idx = expr.index
        fixed = isinstance(idx, ast.IntLit) or (
            isinstance(idx, ast.Ident)
            and (idx.decl is c.tid_decl or idx.decl is c.nthreads_decl)
        )
        if not fixed:
            return False
        base = expr.base
        return isinstance(base, ast.Ident) and \
            isinstance(base.decl, ast.VarDecl) and \
            base.decl.storage in ("local", "param")
    if isinstance(expr, ast.Member) and not expr.arrow:
        return is_reg_slot(c, expr.base)
    return False


def _wrap_consts(int_t):
    """(mask, half, span) for two's-complement wrapping with one branch:
    ``v &= mask; v -= span if v >= half``.  For unsigned types ``half``
    is placed above ``mask`` so the branch never fires and one closure
    body serves both signednesses."""
    bits = 8 * int_t.size
    mask = (1 << bits) - 1
    span = 1 << bits
    half = (1 << (bits - 1)) if int_t.signed else span + 1
    return mask, half, span


def make_convert(ctype):
    """Static ``Machine._convert`` for one target type."""
    if isinstance(ctype, IntType):
        # inline IntType.wrap: the conversion runs on every scalar store
        mask, half, span = _wrap_consts(ctype)

        def conv(v):
            v = int(v) & mask
            return v - span if v >= half else v
        return conv
    if isinstance(ctype, FloatType):
        return float
    if isinstance(ctype, PointerType):
        def conv(v):
            v = int(v)
            return v & 0xFFFFFFFFFFFFFFFF if v < 0 else v
        return conv
    return lambda v: v


def make_var_addr(c, decl):
    """Address getter for one VarDecl.  Frame placement is static
    (globals live in ``globals_frame``, locals/params in the top
    frame); the miss path defers to ``Machine.var_addr`` so the error
    is identical."""
    if decl.storage == "global":
        def get(m):
            addr = m.globals_frame.vars.get(decl)
            return addr if addr is not None else m.var_addr(decl)
    else:
        def get(m):
            addr = m.frames[-1].vars.get(decl)
            return addr if addr is not None else m.var_addr(decl)
    return get


# ---------------------------------------------------------------------------
# memory access closures
# ---------------------------------------------------------------------------

def _load_array(m, addr):
    return addr  # decay: the "value" of an array is its address


def make_load(c, ctype, site, cheap):
    """Compile ``Machine.load(addr, ctype, site, cheap)``."""
    if isinstance(ctype, ArrayType):
        return _load_array
    size = ctype.size
    instrumented = c.instrumented
    if isinstance(ctype, StructType):
        if cheap:
            cyc = 2 * REG
        else:
            cyc = LOAD + size * BYTE_OP

        def load(m, addr):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            blob = m.memory.read_bytes(addr, size)
            cost = m.cost
            cost.cycles += cyc
            if not cheap:
                cost.loads += 1
            if instrumented:
                for obs in m.observers:
                    obs.on_access(site, addr, size, False)
            return blob
        return load
    unpack = scalar_codec(ctype.fmt).unpack_from
    if cheap:
        if instrumented:
            def load(m, addr):
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, False)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                value = unpack(memory.data, addr)[0]
                for obs in m.observers:
                    obs.on_access(site, addr, size, False)
                return value
        else:
            def load(m, addr):
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, False)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                return unpack(memory.data, addr)[0]
        return load
    if instrumented:
        def load(m, addr):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            for obs in m.observers:
                obs.on_access(site, addr, size, False)
            return value
    else:
        def load(m, addr):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            return value
    return load


def make_store(c, ctype, site, cheap):
    """Compile ``Machine.store(addr, ctype, value, site, cheap)``."""
    instrumented = c.instrumented
    if isinstance(ctype, ArrayType):
        def store(m, addr, value):
            raise InterpError("cannot store into array value")
        return store
    size = ctype.size
    if isinstance(ctype, StructType):
        name = ctype.name
        if cheap:
            cyc = 2 * REG
        else:
            cyc = STORE + size * BYTE_OP

        def store(m, addr, value):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, True)
            if not isinstance(value, (bytes, bytearray)):
                raise InterpError(f"storing non-blob into struct {name}")
            m.memory.write_bytes(addr, bytes(value))
            cost = m.cost
            cost.cycles += cyc
            if not cheap:
                cost.stores += 1
            if instrumented:
                for obs in m.observers:
                    obs.on_access(site, addr, size, True)
        return store
    conv = make_convert(ctype)
    pack = scalar_codec(ctype.fmt).pack_into
    if cheap:
        if instrumented:
            def store(m, addr, value):
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, True)
                value = conv(value)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                pack(memory.data, addr, value)
                for obs in m.observers:
                    obs.on_access(site, addr, size, True)
        else:
            def store(m, addr, value):
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, True)
                value = conv(value)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                pack(memory.data, addr, value)
        return store
    if instrumented:
        def store(m, addr, value):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, True)
            value = conv(value)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            pack(memory.data, addr, value)
            cost = m.cost
            cost.cycles += STORE
            cost.stores += 1
            for obs in m.observers:
                obs.on_access(site, addr, size, True)
    else:
        def store(m, addr, value):
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, True)
            value = conv(value)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            pack(memory.data, addr, value)
            cost = m.cost
            cost.cycles += STORE
            cost.stores += 1
    return store


def make_scalar_value(c, ctype, site, cheap, ao):
    """Fused value closure for an lvalue read of scalar type:
    ``instructions += 1; addr = ao(m); <inline scalar load>``.  Saves
    the separate load-closure call per Index/Member evaluation."""
    size = ctype.size
    unpack = scalar_codec(ctype.fmt).unpack_from
    if cheap:
        if c.instrumented:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, False)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                value = unpack(memory.data, addr)[0]
                for obs in m.observers:
                    obs.on_access(site, addr, size, False)
                return value
        else:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                r = m.redirector
                if r is not None:
                    addr = r(site, addr, size, False)
                memory = m.memory
                if memory.check_bounds:
                    memory.check_access(addr, size)
                return unpack(memory.data, addr)[0]
        return run
    if c.instrumented:
        def run(m):
            m.cost.instructions += 1
            addr = ao(m)
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            for obs in m.observers:
                obs.on_access(site, addr, size, False)
            return value
    else:
        def run(m):
            m.cost.instructions += 1
            addr = ao(m)
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            return value
    return run


# ---------------------------------------------------------------------------
# binary operator application (shared by Binary and compound Assign)
# ---------------------------------------------------------------------------

def _raising(exc_factory):
    def apply(m, l, r):
        raise exc_factory()
    return apply


def make_binop_apply(c, op, lt, rt, result_t, left_ct, node):
    """Compile ``Machine._apply_binop`` for one (op, types) shape.
    Returns ``apply(m, left, right) -> value``.  ``node`` is the error
    anchor (None for compound assigns, whose synthesized Binary carries
    a placeholder loc — same rendered message)."""
    if isinstance(lt, PointerType) and op in ("+", "-"):
        if isinstance(rt, PointerType):
            esize = lt.pointee.size or 1

            def apply(m, l, r):
                m.cost.cycles += PTRDIFF
                return (int(l) - int(r)) // esize
            return apply
        esize = lt.pointee.size
        if esize is None:
            return _raising(lambda: InterpError("arithmetic on void*", node))
        if op == "+":
            def apply(m, l, r):
                m.cost.cycles += LEA
                return int(l) + int(r) * esize
        else:
            def apply(m, l, r):
                m.cost.cycles += LEA
                return int(l) - int(r) * esize
        return apply
    if isinstance(rt, PointerType) and op == "+":
        esize = rt.pointee.size
        if esize is None:
            return _raising(lambda: InterpError("arithmetic on void*", node))

        def apply(m, l, r):
            m.cost.cycles += LEA
            return int(r) + int(l) * esize
        return apply
    if op in ("==", "!=", "<", ">", "<=", ">="):
        if op == "==":
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l == r else 0
        elif op == "!=":
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l != r else 0
        elif op == "<":
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l < r else 0
        elif op == ">":
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l > r else 0
        elif op == "<=":
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l <= r else 0
        else:
            def apply(m, l, r):
                m.cost.cycles += ALU
                return 1 if l >= r else 0
        return apply
    if isinstance(result_t, FloatType):
        fwrap = result_t.wrap
        if op == "+":
            def apply(m, l, r):
                m.cost.cycles += FALU
                return fwrap(float(l) + float(r))
        elif op == "-":
            def apply(m, l, r):
                m.cost.cycles += FALU
                return fwrap(float(l) - float(r))
        elif op == "*":
            def apply(m, l, r):
                m.cost.cycles += FALU
                return fwrap(float(l) * float(r))
        elif op == "/":
            def apply(m, l, r):
                m.cost.cycles += FDIV
                rf = float(r)
                if rf == 0.0:
                    raise InterpError("float division by zero", node)
                return fwrap(float(l) / rf)
        else:  # pragma: no cover - sema rejects
            return _raising(lambda: InterpError(f"float op {op}", node))
        return apply
    if not isinstance(result_t, IntType):
        return _raising(lambda: AssertionError((op, result_t)))
    wrap = result_t.wrap
    if op == "+":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) + int(r))
    elif op == "-":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) - int(r))
    elif op == "*":
        def apply(m, l, r):
            m.cost.cycles += IMUL
            return wrap(int(l) * int(r))
    elif op in ("/", "%"):
        modulo = op == "%"

        def apply(m, l, r):
            m.cost.cycles += IDIV
            li, ri = int(l), int(r)
            if ri == 0:
                raise InterpError("integer division by zero", node)
            q = abs(li) // abs(ri)
            if (li < 0) != (ri < 0):
                q = -q
            if modulo:
                return wrap(li - q * ri)  # C: sign follows dividend
            return wrap(q)
    elif op == "<<":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) << (int(r) & 63))
    elif op == ">>":
        mask = None
        if isinstance(left_ct, IntType) and not left_ct.signed:
            mask = (1 << (8 * left_ct.size)) - 1
        if mask is None:
            def apply(m, l, r):
                m.cost.cycles += ALU
                return wrap(int(l) >> (int(r) & 63))
        else:
            def apply(m, l, r):
                m.cost.cycles += ALU
                return wrap((int(l) & mask) >> (int(r) & 63))
    elif op == "&":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) & int(r))
    elif op == "|":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) | int(r))
    elif op == "^":
        def apply(m, l, r):
            m.cost.cycles += ALU
            return wrap(int(l) ^ int(r))
    else:  # pragma: no cover - sema rejects
        return _raising(lambda: InterpError(f"unknown binop {op}", node))
    return apply


# ---------------------------------------------------------------------------
# lvalue (address) compilation — mirrors Machine.addr_of
# ---------------------------------------------------------------------------

def compile_addr(c, expr):
    if isinstance(expr, ast.Ident):
        decl = expr.decl
        if decl is c.tid_decl or decl is c.nthreads_decl:
            def run(m):
                raise InterpError("thread context variable is not addressable")
            return run
        if not isinstance(decl, ast.VarDecl):
            def run(m):
                assert isinstance(decl, ast.VarDecl)
            return run
        return make_var_addr(c, decl)
    if isinstance(expr, ast.Unary) and expr.op == "*":
        vo = c.expr(expr.operand)

        def run(m):
            return int(vo(m))
        return run
    if isinstance(expr, ast.Index):
        bo = c.expr(expr.base)
        io = c.expr(expr.index)
        elem = expr.ctype
        if elem is None or elem.size is None:
            def run(m):
                bo(m)
                io(m)
                assert elem is not None and elem.size is not None
            return run
        esize = elem.size

        def run(m):
            base = int(bo(m))  # array decays to address
            # base+index*scale folds into the x86 addressing mode: free
            return base + int(io(m)) * esize
        return run
    if isinstance(expr, ast.Member):
        if expr.arrow:
            bo = c.expr(expr.base)
            stype = expr.base.ctype.decay().pointee
        else:
            bo = c.addr(expr.base)
            stype = expr.base.ctype
        if not isinstance(stype, StructType):
            def run(m):
                bo(m)
                assert isinstance(stype, StructType)
            return run
        offset = stype.field(expr.name).offset
        if expr.arrow:
            def run(m):
                # constant displacement folds into the addressing mode
                return int(bo(m)) + offset
        else:
            def run(m):
                return bo(m) + offset
        return run
    if isinstance(expr, ast.Cast):
        # (T)lvalue as lvalue: used by transformed code for recasts
        return c.addr(expr.expr)
    if isinstance(expr, ast.Comma):
        lo = c.expr(expr.left)
        ro = c.addr(expr.right)

        def run(m):
            lo(m)
            return ro(m)
        return run

    def run(m):
        raise InterpError(f"not an lvalue: {expr!r}", expr)
    return run


# ---------------------------------------------------------------------------
# rvalue compilation — mirrors Machine.eval / _eval_*
# ---------------------------------------------------------------------------

def _c_lit(c, e):
    v = e.value

    def run(m):
        m.cost.instructions += 1
        return v
    return run


def _c_strlit(c, e):
    data = e.value.encode("latin-1") + b"\0"
    size = len(data)
    nid = e.nid

    def run(m):
        m.cost.instructions += 1
        addr = m._strlit_cache.get(nid)
        if addr is None:
            addr = m.memory.alloc(size, mem.RODATA, label="strlit")
            m.memory.write_bytes(addr, data)
            m._strlit_cache[nid] = addr
        return addr
    return run


def _c_ident(c, e):
    decl = e.decl
    if decl is c.tid_decl:
        if c.instrumented:
            def run(m):
                m.cost.instructions += 1
                h = m._tid_hook
                return m.tid if h is None else h(e, m.tid)
        else:
            def run(m):
                m.cost.instructions += 1
                return m.tid
        return run
    if decl is c.nthreads_decl:
        def run(m):
            m.cost.instructions += 1
            return m.nthreads
        return run
    if isinstance(decl, ast.FunctionDef):
        def run(m):
            m.cost.instructions += 1
            return decl  # function designator
        return run
    if not isinstance(decl, ast.VarDecl):
        def run(m):
            m.cost.instructions += 1
            assert isinstance(decl, ast.VarDecl)
        return run
    getaddr = make_var_addr(c, decl)
    ctype = decl.ctype
    if isinstance(ctype, ArrayType):
        def run(m):
            m.cost.instructions += 1
            return getaddr(m)  # decay, zero cost
        return run
    cheap = decl.storage in ("local", "param")
    if not isinstance(ctype, (IntType, FloatType, PointerType)):
        loadf = make_load(c, ctype, e.nid, cheap)

        def run(m):
            m.cost.instructions += 1
            return loadf(m, getaddr(m))
        return run
    # scalar variable read — the single hottest node shape; fully fused
    # (frame lookup + redirect + bounds + unpack + observers in one
    # closure, mirroring eval -> _eval_ident -> var_addr -> load)
    site = e.nid
    size = ctype.size
    unpack = scalar_codec(ctype.fmt).unpack_from
    if cheap:
        # a local scalar slot is provably in-bounds while its frame is
        # live (stack allocations die only on frame pop, free() rejects
        # non-heap, and the slot spans its whole allocation), and
        # check_access has no observable effect besides its perf cache —
        # so the bounds check is elided unless a redirector may have
        # moved the address
        if c.instrumented:
            def run(m):
                m.cost.instructions += 1
                addr = m.frames[-1].vars.get(decl)
                if addr is None:
                    addr = m.var_addr(decl)
                r = m.redirector
                memory = m.memory
                if r is not None:
                    addr = r(site, addr, size, False)
                    if memory.check_bounds:
                        memory.check_access(addr, size)
                value = unpack(memory.data, addr)[0]
                for obs in m.observers:
                    obs.on_access(site, addr, size, False)
                return value
        else:
            def run(m):
                m.cost.instructions += 1
                addr = m.frames[-1].vars.get(decl)
                if addr is None:
                    addr = m.var_addr(decl)
                r = m.redirector
                memory = m.memory
                if r is not None:
                    addr = r(site, addr, size, False)
                    if memory.check_bounds:
                        memory.check_access(addr, size)
                return unpack(memory.data, addr)[0]
        return run
    if c.instrumented:
        def run(m):
            m.cost.instructions += 1
            addr = m.globals_frame.vars.get(decl)
            if addr is None:
                addr = m.var_addr(decl)
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            for obs in m.observers:
                obs.on_access(site, addr, size, False)
            return value
    else:
        def run(m):
            m.cost.instructions += 1
            addr = m.globals_frame.vars.get(decl)
            if addr is None:
                addr = m.var_addr(decl)
            r = m.redirector
            if r is not None:
                addr = r(site, addr, size, False)
            memory = m.memory
            if memory.check_bounds:
                memory.check_access(addr, size)
            value = unpack(memory.data, addr)[0]
            cost = m.cost
            cost.cycles += LOAD
            cost.loads += 1
            return value
    return run


def _fused_incdec(c, e, decl, ctype, delta, post):
    """``++``/``--`` on a local scalar variable, fully fused (the loop
    counter pattern).  Load site is the operand's nid, store site the
    Unary's, exactly as the generic path; the bounds check on the
    unredirected slot is elided (see the Ident read fusion for why
    that is invisible)."""
    lsite = e.operand.nid
    ssite = e.nid
    size = ctype.size
    codec = scalar_codec(ctype.fmt)
    unpack = codec.unpack_from
    pack = codec.pack_into
    conv = make_convert(ctype)
    if c.instrumented:
        def run(m):
            m.cost.instructions += 1
            addr = m.frames[-1].vars.get(decl)
            if addr is None:
                addr = m.var_addr(decl)
            r = m.redirector
            memory = m.memory
            if r is None:
                old = unpack(memory.data, addr)[0]
                for obs in m.observers:
                    obs.on_access(lsite, addr, size, False)
                m.cost.cycles += ALU
                v = conv(old + delta)
                pack(memory.data, addr, v)
                for obs in m.observers:
                    obs.on_access(ssite, addr, size, True)
                return old if post else v
            la = r(lsite, addr, size, False)
            if memory.check_bounds:
                memory.check_access(la, size)
            old = unpack(memory.data, la)[0]
            for obs in m.observers:
                obs.on_access(lsite, la, size, False)
            m.cost.cycles += ALU
            sa = r(ssite, addr, size, True)
            v = conv(old + delta)
            if memory.check_bounds:
                memory.check_access(sa, size)
            pack(memory.data, sa, v)
            for obs in m.observers:
                obs.on_access(ssite, sa, size, True)
            return old if post else v
    else:
        def run(m):
            m.cost.instructions += 1
            addr = m.frames[-1].vars.get(decl)
            if addr is None:
                addr = m.var_addr(decl)
            r = m.redirector
            memory = m.memory
            if r is None:
                old = unpack(memory.data, addr)[0]
                m.cost.cycles += ALU
                v = conv(old + delta)
                pack(memory.data, addr, v)
                return old if post else v
            la = r(lsite, addr, size, False)
            if memory.check_bounds:
                memory.check_access(la, size)
            old = unpack(memory.data, la)[0]
            m.cost.cycles += ALU
            sa = r(ssite, addr, size, True)
            v = conv(old + delta)
            if memory.check_bounds:
                memory.check_access(sa, size)
            pack(memory.data, sa, v)
            return old if post else v
    return run


def _c_unary(c, e):
    op = e.op
    if op == "&":
        ao = c.addr(e.operand)

        def run(m):
            m.cost.instructions += 1
            return ao(m)
        return run
    if op == "*":
        vo = c.expr(e.operand)
        ctype = e.ctype
        if isinstance(ctype, (IntType, FloatType, PointerType)):
            # scalar deref: fuse the load tail (always a costed load)
            site = e.nid
            size = ctype.size
            unpack = scalar_codec(ctype.fmt).unpack_from
            if c.instrumented:
                def run(m):
                    m.cost.instructions += 1
                    addr = int(vo(m))
                    r = m.redirector
                    if r is not None:
                        addr = r(site, addr, size, False)
                    memory = m.memory
                    if memory.check_bounds:
                        memory.check_access(addr, size)
                    value = unpack(memory.data, addr)[0]
                    cost = m.cost
                    cost.cycles += LOAD
                    cost.loads += 1
                    for obs in m.observers:
                        obs.on_access(site, addr, size, False)
                    return value
            else:
                def run(m):
                    m.cost.instructions += 1
                    addr = int(vo(m))
                    r = m.redirector
                    if r is not None:
                        addr = r(site, addr, size, False)
                    memory = m.memory
                    if memory.check_bounds:
                        memory.check_access(addr, size)
                    value = unpack(memory.data, addr)[0]
                    cost = m.cost
                    cost.cycles += LOAD
                    cost.loads += 1
                    return value
            return run
        loadf = make_load(c, ctype, e.nid, False)

        def run(m):
            m.cost.instructions += 1
            return loadf(m, int(vo(m)))
        return run
    if op in ("++", "--", "p++", "p--"):
        target = e.operand
        ctype = target.ctype
        ao = c.addr(target)
        cheap = is_reg_slot(c, target)
        loadf = make_load(c, ctype, target.nid, cheap)
        if isinstance(ctype, PointerType):
            delta = ctype.pointee.size
        else:
            delta = 1
        if delta is None:
            def run(m):
                m.cost.instructions += 1
                loadf(m, ao(m))
                raise InterpError("arithmetic on void*", e)
            return run
        if not op.endswith("++"):
            delta = -delta
        post = op.startswith("p")
        if cheap and isinstance(target, ast.Ident) and \
                isinstance(ctype, (IntType, FloatType, PointerType)):
            return _fused_incdec(c, e, target.decl, ctype, delta, post)
        storef = make_store(c, ctype, e.nid, cheap)
        conv = make_convert(ctype)
        if post:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                old = loadf(m, addr)
                m.cost.cycles += ALU
                storef(m, addr, old + delta)
                return old
        else:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                old = loadf(m, addr)
                m.cost.cycles += ALU
                new = old + delta
                storef(m, addr, new)
                return conv(new)
        return run
    vo = c.expr(e.operand)
    if op == "-":
        ctype = e.ctype
        if isinstance(ctype, IntType):
            wrap = ctype.wrap

            def run(m):
                m.cost.instructions += 1
                v = vo(m)
                m.cost.cycles += ALU
                return wrap(int(-v))
        else:
            def run(m):
                m.cost.instructions += 1
                v = vo(m)
                m.cost.cycles += ALU
                return -v
        return run
    if op == "!":
        def run(m):
            m.cost.instructions += 1
            v = vo(m)
            m.cost.cycles += ALU
            return 0 if v else 1
        return run
    if op == "~":
        wrap = e.ctype.wrap

        def run(m):
            m.cost.instructions += 1
            v = vo(m)
            m.cost.cycles += ALU
            return wrap(~int(v))
        return run

    def run(m):  # pragma: no cover - sema rejects
        m.cost.instructions += 1
        vo(m)
        m.cost.cycles += ALU
        raise InterpError(f"unknown unary {op}", e)
    return run


def _c_binary(c, e):
    op = e.op
    if op in ("&&", "||"):
        lo = c.expr(e.left)
        ro = c.expr(e.right)
        if op == "&&":
            def run(m):
                m.cost.instructions += 1
                m.cost.cycles += ALU
                if not lo(m):
                    return 0
                return 1 if ro(m) else 0
        else:
            def run(m):
                m.cost.instructions += 1
                m.cost.cycles += ALU
                if lo(m):
                    return 1
                return 1 if ro(m) else 0
        return run
    lo = c.expr(e.left)
    ro = c.expr(e.right)
    lt = e.left.ctype.decay()
    rt = e.right.ctype.decay()
    result_t = e.ctype
    # inline the hottest integer shapes; everything else goes through
    # the shared apply closure
    if not isinstance(lt, PointerType) and not isinstance(rt, PointerType):
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if op == "<":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l < r else 0
            elif op == ">":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l > r else 0
            elif op == "<=":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l <= r else 0
            elif op == ">=":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l >= r else 0
            elif op == "==":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l == r else 0
            else:
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    return 1 if l != r else 0
            return run
        if isinstance(result_t, IntType) and op in ("+", "-", "*"):
            # IntType.wrap inlined; see _wrap_consts for the one-branch
            # signed/unsigned trick
            mask, half, span = _wrap_consts(result_t)
            if op == "+":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    v = (int(l) + int(r)) & mask
                    return v - span if v >= half else v
            elif op == "-":
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += ALU
                    v = (int(l) - int(r)) & mask
                    return v - span if v >= half else v
            else:
                def run(m):
                    m.cost.instructions += 1
                    l = lo(m)
                    r = ro(m)
                    m.cost.cycles += IMUL
                    v = (int(l) * int(r)) & mask
                    return v - span if v >= half else v
            return run
    apply = make_binop_apply(c, op, lt, rt, result_t, e.left.ctype, e)

    def run(m):
        m.cost.instructions += 1
        l = lo(m)
        r = ro(m)
        return apply(m, l, r)
    return run


def _c_assign(c, e):
    target = e.target
    target_t = target.ctype
    ao = c.addr(target)
    cheap = is_reg_slot(c, target)
    # fat-pointer span corruption taps hang off Member-target assigns
    # (the only sites SpanCorruptor registers); instrumented only
    tapped = c.instrumented and isinstance(target, ast.Member)
    nid = e.nid
    storef = make_store(c, target_t, nid, cheap)
    if e.op == "=":
        vo = c.expr(e.value)
        if not tapped and cheap and isinstance(target, ast.Ident) and \
                isinstance(target_t, (IntType, FloatType, PointerType)):
            # plain store to a local scalar — fully fused (frame lookup +
            # redirect + convert + bounds + pack + observers).  Walker
            # parity: address resolves before the rhs evaluates, the
            # redirector applies at store time, and the expression
            # yields the *unconverted* rhs value.
            decl = target.decl
            size = target_t.size
            pack = scalar_codec(target_t.fmt).pack_into
            conv = make_convert(target_t)
            if c.instrumented:
                def run(m):
                    m.cost.instructions += 1
                    addr = m.frames[-1].vars.get(decl)
                    if addr is None:
                        addr = m.var_addr(decl)
                    value = vo(m)
                    r = m.redirector
                    memory = m.memory
                    if r is not None:
                        addr = r(nid, addr, size, True)
                        v = conv(value)
                        if memory.check_bounds:
                            memory.check_access(addr, size)
                        pack(memory.data, addr, v)
                    else:
                        pack(memory.data, addr, conv(value))
                    for obs in m.observers:
                        obs.on_access(nid, addr, size, True)
                    return value
            else:
                def run(m):
                    m.cost.instructions += 1
                    addr = m.frames[-1].vars.get(decl)
                    if addr is None:
                        addr = m.var_addr(decl)
                    value = vo(m)
                    r = m.redirector
                    memory = m.memory
                    if r is not None:
                        addr = r(nid, addr, size, True)
                        v = conv(value)
                        if memory.check_bounds:
                            memory.check_access(addr, size)
                        pack(memory.data, addr, v)
                    else:
                        pack(memory.data, addr, conv(value))
                    return value
            return run
        if tapped:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                value = vo(m)
                stored = value
                taps = m._store_taps
                if taps is not None:
                    tap = taps.get(nid)
                    if tap is not None:
                        # the tap corrupts only what lands in memory;
                        # the assignment expression still yields the
                        # uncorrupted value (walker parity: the fault
                        # wrapper rebinds its own local, not the
                        # evaluator's)
                        stored = tap(value)
                storef(m, addr, stored)
                return value
        else:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                value = vo(m)
                storef(m, addr, value)
                return value
        return run
    # compound assignment: load-modify-store
    base_op = e.op[:-1]
    loadf = make_load(c, target_t, target.nid, cheap)
    vo = c.expr(e.value)
    conv = make_convert(target_t)
    struct_result = isinstance(target_t, StructType)
    if isinstance(target_t, PointerType):
        esize = target_t.pointee.size
        if esize is None:
            def run(m):
                m.cost.instructions += 1
                addr = ao(m)
                loadf(m, addr)
                vo(m)
                raise InterpError("arithmetic on void*", e)
            return run
        plus = base_op == "+"

        def compute(m, old, rhs):
            m.cost.cycles += LEA
            return old + int(rhs) * esize if plus else old - int(rhs) * esize
    else:
        result_t = target_t if isinstance(target_t, FloatType) else \
            target.ctype
        compute = make_binop_apply(
            c, base_op, target.ctype.decay(), e.value.ctype.decay(),
            result_t, target.ctype, None,
        )
    if tapped:
        def run(m):
            m.cost.instructions += 1
            addr = ao(m)
            old = loadf(m, addr)
            rhs = vo(m)
            new = compute(m, old, rhs)
            stored = new
            taps = m._store_taps
            if taps is not None:
                tap = taps.get(nid)
                if tap is not None:
                    stored = tap(new)  # corrupts storage, not the result
            storef(m, addr, stored)
            return new if struct_result else conv(new)
    else:
        def run(m):
            m.cost.instructions += 1
            addr = ao(m)
            old = loadf(m, addr)
            rhs = vo(m)
            new = compute(m, old, rhs)
            storef(m, addr, new)
            return new if struct_result else conv(new)
    return run


def _c_cond(c, e):
    co = c.expr(e.cond)
    to = c.expr(e.then)
    eo = c.expr(e.els)

    def run(m):
        m.cost.instructions += 1
        m.cost.cycles += ALU
        if co(m):
            return to(m)
        return eo(m)
    return run


def _c_call(c, e):
    name = e.callee_name
    arg_ops = tuple(c.expr(a) for a in e.args)
    if name is not None and name not in c.sema.functions:
        impl = BUILTIN_IMPLS.get(name)
        if impl is None:
            def run(m):
                m.cost.instructions += 1
                raise InterpError(f"unknown function {name!r}", e)
            return run

        def run(m):
            m.cost.instructions += 1
            args = [a(m) for a in arg_ops]
            m.cost.cycles += BUILTIN
            return impl(m, args, e)
        return run
    fns = c.fns
    fn = c.sema.functions.get(name) if name else None
    if fn is not None:
        fnid = fn.nid

        def run(m):
            m.cost.instructions += 1
            args = [a(m) for a in arg_ops]
            code = fns.get(fnid)
            if code is None:
                code = c.function(fn)
            return code(m, args)
        return run
    fo = c.expr(e.func)

    def run(m):
        m.cost.instructions += 1
        value = fo(m)
        if not isinstance(value, ast.FunctionDef):
            raise InterpError("call of non-function value", e)
        args = [a(m) for a in arg_ops]
        code = fns.get(value.nid)
        if code is None:
            code = c.function(value)
        return code(m, args)
    return run


def _c_index(c, e):
    ao = c.addr(e)
    cheap = is_reg_slot(c, e)
    ctype = e.ctype
    if isinstance(ctype, (IntType, FloatType, PointerType)):
        return make_scalar_value(c, ctype, e.nid, cheap, ao)
    loadf = make_load(c, ctype, e.nid, cheap)

    def run(m):
        m.cost.instructions += 1
        return loadf(m, ao(m))
    return run


_c_member = _c_index  # identical shape: addr_of + typed load


def _c_cast(c, e):
    vo = c.expr(e.expr)
    to = e.to_type
    if isinstance(to, IntType):
        wrap = to.wrap

        def run(m):
            m.cost.instructions += 1
            return wrap(int(vo(m)))
    elif isinstance(to, FloatType):
        fwrap = to.wrap

        def run(m):
            m.cost.instructions += 1
            return fwrap(float(vo(m)))
    elif isinstance(to, PointerType):
        def run(m):
            m.cost.instructions += 1
            return int(vo(m))
    else:
        def run(m):
            m.cost.instructions += 1
            return vo(m)  # void cast, struct cast passthrough
    return run


def _c_sizeof_type(c, e):
    v = e.of_type.size

    def run(m):
        m.cost.instructions += 1
        return v
    return run


def _c_sizeof_expr(c, e):
    ctype = e.expr.ctype
    if ctype is None or ctype.size is None:
        def run(m):
            m.cost.instructions += 1
            assert ctype is not None and ctype.size is not None
        return run
    v = ctype.size

    def run(m):
        m.cost.instructions += 1
        return v
    return run


def _c_comma(c, e):
    lo = c.expr(e.left)
    ro = c.expr(e.right)

    def run(m):
        m.cost.instructions += 1
        lo(m)
        return ro(m)
    return run


EXPR_COMPILERS = {
    ast.IntLit: _c_lit,
    ast.FloatLit: _c_lit,
    ast.StrLit: _c_strlit,
    ast.Ident: _c_ident,
    ast.Unary: _c_unary,
    ast.Binary: _c_binary,
    ast.Assign: _c_assign,
    ast.Cond: _c_cond,
    ast.Call: _c_call,
    ast.Index: _c_index,
    ast.Member: _c_member,
    ast.Cast: _c_cast,
    ast.SizeofType: _c_sizeof_type,
    ast.SizeofExpr: _c_sizeof_expr,
    ast.Comma: _c_comma,
}


def compile_expr(c, e):
    compiler = EXPR_COMPILERS.get(type(e))
    if compiler is None:
        # unknown node type: defer to the walker dispatch at run time so
        # the error (KeyError) is identical to the tree-walker's
        def run(m):
            m.cost.instructions += 1
            return m._eval_dispatch[type(e)](e)
        return run
    return compiler(c, e)
