"""Statement and function compilation for the bytecode tier.

Statement closures come in two compile-time variants:

* **instrumented** — every statement closure begins with the same
  prologue as ``Machine.exec_stmt``: the fault-injection hook
  (``m._stmt_hook``, the bytecode equivalent of wrapping
  ``exec_stmt``), then the step counter, ``max_steps`` check, and
  watchdog-deadline check, in the walker's order (hook first, because
  the walker's wrapper runs before the original method body).
* **bare** — no per-statement prologue.  Loops keep a per-*iteration*
  step backstop against ``max_steps`` so runaway programs still
  terminate with a structured error, but ``max_loop_steps`` watchdog
  budgets are not honored (bare machines are for baseline/verified
  re-runs that never install a watchdog).

Loop closures check ``m.loop_controllers`` at run time in both
variants, so the profiler and the parallel runtime drive candidate
loops exactly as they do on the tree walker.
"""

from __future__ import annotations

from ...frontend import ast
from ...frontend.ctypes import ArrayType, StructType
from ..machine import (
    BreakSignal, ContinueSignal, Frame, InterpError, ReturnSignal,
)
from .. import memory as mem
from .exprs import ALU, CALL, RET, make_store


# ---------------------------------------------------------------------------
# declarations and initializers
# ---------------------------------------------------------------------------

def _make_init_op(vo, storef, off):
    """One initializer slot: evaluate, then store at base+offset."""
    if off:
        def op(m, base):
            value = vo(m)
            storef(m, base + off, value)
    else:
        def op(m, base):
            value = vo(m)
            storef(m, base, value)
    return op


def _bad_init_op(m, base):
    raise InterpError("brace initializer on scalar")


def _gather_init(c, ctype, init, off, ops):
    """Flatten ``Machine._init_storage`` into (offset, store) slots at
    compile time.  Walker order: nested brace lists are walked
    depth-first, so ops are appended in exactly the walker's store
    order (including a mid-list scalar-brace error at its position)."""
    if isinstance(init, list):
        if isinstance(ctype, ArrayType):
            esize = ctype.elem.size
            for i, item in enumerate(init):
                _gather_init(c, ctype.elem, item, off + i * esize, ops)
        elif isinstance(ctype, StructType):
            for item, field in zip(init, ctype.fields):
                _gather_init(c, field.type, item, off + field.offset, ops)
        else:
            ops.append(_bad_init_op)
    else:
        vo = c.expr(init)
        storef = make_store(c, ctype, init.nid, False)
        ops.append(_make_init_op(vo, storef, off))


def _make_decl_op(c, decl):
    """Allocate + initialize one local declaration (mirrors
    ``Machine._alloc_local`` + ``_init_storage``)."""
    ctype = decl.ctype
    size = ctype.size
    vla = None
    elem_size = None
    if size is None and decl.vla_length is not None:
        vla = c.expr(decl.vla_length)
        elem_size = ctype.elem.size
    name = decl.name
    tag = decl.nid
    init_ops = None
    if decl.init is not None:
        init_ops = []
        _gather_init(c, ctype, decl.init, 0, init_ops)
        init_ops = tuple(init_ops)

    def op(m, frame):
        if vla is not None:
            count = int(vla(m))
            sz = elem_size * max(count, 1)
        elif size is None:
            raise InterpError(f"local {name} has incomplete type", decl)
        else:
            sz = size
        memory = m.memory
        addr = memory.alloc(sz, mem.STACK, label=name, tag=tag)
        frame.vars[decl] = addr
        # alloc seeds the lookup cache with the new record
        frame.stack_allocs.append(memory._hit)
        if init_ops is not None:
            for io_ in init_ops:
                io_(m, addr)
    return op


# ---------------------------------------------------------------------------
# statement bodies (no prologue; wrapped below)
# ---------------------------------------------------------------------------

def _c_block(c, s):
    ops = [c.stmt(child) for child in s.stmts]
    if not ops:
        def body(m):
            pass
        return body
    if len(ops) == 1:
        return _call1(ops[0])
    ops = tuple(ops)

    def body(m):
        for op in ops:
            op(m)
    return body


def _call1(op):
    def body(m):
        op(m)
    return body


def _c_expr_stmt(c, s):
    vo = c.expr(s.expr)

    def body(m):
        vo(m)
    return body


def _c_decl_stmt(c, s):
    ops = [_make_decl_op(c, d) for d in s.decls]
    if len(ops) == 1:
        op0 = ops[0]

        def body(m):
            op0(m, m.frames[-1])
        return body
    ops = tuple(ops)

    def body(m):
        frame = m.frames[-1]
        for op in ops:
            op(m, frame)
    return body


def _c_if(c, s):
    co = c.expr(s.cond)
    to = c.stmt(s.then)
    if s.els is None:
        def body(m):
            m.cost.cycles += ALU
            if co(m):
                to(m)
        return body
    eo = c.stmt(s.els)

    def body(m):
        m.cost.cycles += ALU
        if co(m):
            to(m)
        else:
            eo(m)
    return body


def _wrap_loop(c, s, drive):
    """Controller check + watchdog push/pop around a loop driver
    (mirrors ``_check_controller`` + ``_guarded_loop``)."""
    nid = s.nid
    label = s.label
    if c.instrumented:
        def body(m):
            ctrl = m.loop_controllers.get(nid)
            if ctrl is not None:
                ctrl(m, s)
                return
            mls = m.max_loop_steps
            if mls is None:
                drive(m)
                return
            m.push_watchdog(mls, label)
            try:
                drive(m)
            finally:
                m.pop_watchdog()
    else:
        def body(m):
            ctrl = m.loop_controllers.get(nid)
            if ctrl is not None:
                ctrl(m, s)
                return
            drive(m)
    return body


def _c_while(c, s):
    co = c.expr(s.cond)
    bo = c.stmt(s.body)
    if c.instrumented:
        def drive(m):
            while True:
                m.cost.cycles += ALU
                if not co(m):
                    break
                try:
                    bo(m)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
    else:
        def drive(m):
            while True:
                m.cost.cycles += ALU
                if not co(m):
                    break
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                try:
                    bo(m)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
    return _wrap_loop(c, s, drive)


def _c_dowhile(c, s):
    co = c.expr(s.cond)
    bo = c.stmt(s.body)
    if c.instrumented:
        def drive(m):
            while True:
                try:
                    bo(m)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                m.cost.cycles += ALU
                if not co(m):
                    break
    else:
        def drive(m):
            while True:
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                try:
                    bo(m)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                m.cost.cycles += ALU
                if not co(m):
                    break
    return _wrap_loop(c, s, drive)


def _c_for(c, s):
    io_ = c.stmt(s.init) if s.init is not None else None
    co = c.expr(s.cond) if s.cond is not None else None
    so = c.expr(s.step) if s.step is not None else None
    bo = c.stmt(s.body)
    backstop = not c.instrumented

    def drive(m):
        if io_ is not None:
            io_(m)
        while True:
            if co is not None:
                m.cost.cycles += ALU
                if not co(m):
                    break
            if backstop:
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
            try:
                bo(m)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if so is not None:
                so(m)
    return _wrap_loop(c, s, drive)


def _c_return(c, s):
    if s.expr is None:
        def body(m):
            raise ReturnSignal(None)
        return body
    vo = c.expr(s.expr)

    def body(m):
        raise ReturnSignal(vo(m))
    return body


def _c_break(c, s):
    def body(m):
        raise BreakSignal()
    return body


def _c_continue(c, s):
    def body(m):
        raise ContinueSignal()
    return body


STMT_COMPILERS = {
    ast.Block: _c_block,
    ast.ExprStmt: _c_expr_stmt,
    ast.DeclStmt: _c_decl_stmt,
    ast.If: _c_if,
    ast.While: _c_while,
    ast.DoWhile: _c_dowhile,
    ast.For: _c_for,
    ast.Return: _c_return,
    ast.Break: _c_break,
    ast.Continue: _c_continue,
}


def compile_stmt(c, s):
    t = type(s)
    if c.instrumented:
        # the hottest statement shapes get the exec_stmt prologue fused
        # into their own closure (one call per statement saved); the
        # rest are wrapped generically below
        if t is ast.ExprStmt:
            vo = c.expr(s.expr)

            def run(m):
                h = m._stmt_hook
                if h is not None:
                    h(s)
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                dl = m._watchdog_deadline
                if dl is not None and steps > dl:
                    m._watchdog_trip(s)
                vo(m)
            return run
        if t is ast.Block:
            ops = tuple(c.stmt(child) for child in s.stmts)

            def run(m):
                h = m._stmt_hook
                if h is not None:
                    h(s)
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                dl = m._watchdog_deadline
                if dl is not None and steps > dl:
                    m._watchdog_trip(s)
                for op in ops:
                    op(m)
            return run
        if t is ast.If:
            co = c.expr(s.cond)
            to = c.stmt(s.then)
            eo = c.stmt(s.els) if s.els is not None else None

            def run(m):
                h = m._stmt_hook
                if h is not None:
                    h(s)
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                dl = m._watchdog_deadline
                if dl is not None and steps > dl:
                    m._watchdog_trip(s)
                m.cost.cycles += ALU
                if co(m):
                    to(m)
                elif eo is not None:
                    eo(m)
            return run
        if t is ast.DeclStmt:
            ops = tuple(_make_decl_op(c, d) for d in s.decls)

            def run(m):
                h = m._stmt_hook
                if h is not None:
                    h(s)
                steps = m._steps + 1
                m._steps = steps
                if steps > m.max_steps:
                    raise InterpError(
                        "step budget exceeded (runaway program?)", s)
                dl = m._watchdog_deadline
                if dl is not None and steps > dl:
                    m._watchdog_trip(s)
                frame = m.frames[-1]
                for op in ops:
                    op(m, frame)
            return run
    compiler = STMT_COMPILERS.get(t)
    if compiler is None:
        # unknown statement type: defer to the walker dispatch so the
        # run-time error (KeyError) is identical
        def inner(m):
            m._stmt_dispatch[type(s)](s)
        inner_body = inner
    else:
        inner_body = compiler(c, s)
    if not c.instrumented:
        return inner_body

    def run(m):
        h = m._stmt_hook
        if h is not None:
            h(s)
        steps = m._steps + 1
        m._steps = steps
        if steps > m.max_steps:
            raise InterpError("step budget exceeded (runaway program?)", s)
        dl = m._watchdog_deadline
        if dl is not None and steps > dl:
            m._watchdog_trip(s)
        inner_body(m)
    return run


# ---------------------------------------------------------------------------
# functions
# ---------------------------------------------------------------------------

def _make_param_op(c, p):
    """Allocate + bind-and-store one parameter (mirrors
    ``_alloc_local`` + the ``store(..., site=param.nid)`` in
    ``call_function``; runs in the *caller's* frame context, before the
    callee frame is pushed)."""
    ctype = p.ctype
    size = ctype.size
    vla = None
    elem_size = None
    if size is None and p.vla_length is not None:
        vla = c.expr(p.vla_length)
        elem_size = ctype.elem.size
    name = p.name
    tag = p.nid
    storef = make_store(c, ctype, p.nid, False)

    def op(m, frame, value):
        if vla is not None:
            count = int(vla(m))
            sz = elem_size * max(count, 1)
        elif size is None:
            raise InterpError(f"local {name} has incomplete type", p)
        else:
            sz = size
        memory = m.memory
        addr = memory.alloc(sz, mem.STACK, label=name, tag=tag)
        frame.vars[p] = addr
        # alloc seeds the lookup cache with the new record
        frame.stack_allocs.append(memory._hit)
        storef(m, addr, value)
    return op


def compile_function(c, fn):
    """Compile a whole function to ``run(m, args) -> result`` (mirrors
    ``Machine.call_function``)."""
    body_op = c.stmt(fn.body)
    param_ops = tuple(_make_param_op(c, p) for p in fn.params)
    name = fn.name

    def run(m, args):
        if len(m.frames) > 250:
            raise InterpError(f"call stack overflow in {name}")
        m.cost.cycles += CALL
        frame = Frame(fn)
        for op, value in zip(param_ops, args):
            op(m, frame, value)
        m.frames.append(frame)
        try:
            body_op(m)
            result = None
        except ReturnSignal as sig:
            result = sig.value
        finally:
            m.frames.pop()
            m.memory.release_stack(frame.stack_allocs)
        m.cost.cycles += RET
        return result
    return run
