"""Tree-walking interpreter for analyzed MiniC programs.

The machine executes the same AST the transforms rewrite, so the
expansion pass is exercised end-to-end: transformed programs really
run, private accesses really land in per-thread copies, and the race
checker can observe that they do.

Execution features the reproduction depends on:

* **Cycle cost model** — every operation adds to the active
  :class:`CostSink`.  Speedups are ratios of modeled cycles, replacing
  the paper's wall-clock measurements (see DESIGN.md).
* **Thread context** — ``__tid`` / ``__nthreads`` evaluate to the
  machine's current ``tid``/``nthreads``; the parallel runtime swaps
  them per virtual thread.
* **Loop controllers** — the profiler and the parallel runtime
  register a controller for a candidate loop; when control reaches that
  loop the controller drives iteration execution through the public
  ``exec_stmt`` / ``eval`` API.
* **Access observers** — tracing hooks receive every scalar memory
  access with its *site* (AST node id), feeding the dependence
  profiler and the race checker.
* **Access redirector** — an optional address translation applied to
  loads/stores; the SpiceC-style runtime-privatization baseline is
  implemented as a redirector.
"""

from __future__ import annotations

import os
import sys

from typing import Callable, Dict, List, Optional

# each MiniC frame costs many Python frames; give tree-walking headroom
if sys.getrecursionlimit() < 40000:
    sys.setrecursionlimit(40000)

from ..diagnostics import DiagnosableError
from ..frontend import ast
from ..frontend.ctypes import (
    ArrayType, CType, FloatType, IntType, PointerType, StructType,
)
from ..frontend.sema import SemaResult
from . import memory as mem
from .builtins import BUILTIN_IMPLS

# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

#: cycles per abstract operation, loosely calibrated to the paper's
#: Opteron testbed (what matters for the reproduction is the *ratio*
#: between redirection arithmetic, loads/stores, and runtime calls).
COSTS = {
    "alu": 1,          # add/sub/bit/cmp/branch
    "imul": 3,
    "idiv": 20,
    "falu": 1,         # pipelined FP add/mul throughput
    "fdiv": 15,
    "fmath": 30,       # sqrt/exp/...
    "load": 4,
    "store": 4,
    "reg": 0,          # register-allocated slot (local scalars, fixed
                       # VLA copy slots, SRoA'd small structs): reading
                       # or writing a register operand costs nothing
                       # beyond the ALU op already charged
    "lea": 1,          # pointer +/- integer (one lea)
    "ptrdiff": 2,      # pointer difference (sub + shift)
    "call": 15,        # user function call overhead
    "ret": 5,
    "builtin": 10,     # builtin dispatch
    "malloc": 60,
    "free": 40,
    "print": 50,
    "byte_op": 0.125,  # per byte of memset/memcpy/struct copy
}


class CostSink:
    """Mutable cycle/instruction counters; the runtime swaps sinks to
    attribute cost per virtual thread and per category."""

    __slots__ = ("cycles", "instructions", "loads", "stores")

    def __init__(self):
        self.cycles = 0.0
        self.instructions = 0
        self.loads = 0
        self.stores = 0

    def add(self, other: "CostSink") -> None:
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.loads += other.loads
        self.stores += other.stores

    def copy(self) -> "CostSink":
        out = CostSink()
        out.add(self)
        return out

    def __repr__(self) -> str:
        return (
            f"<CostSink cycles={self.cycles:.0f} instrs={self.instructions} "
            f"ld={self.loads} st={self.stores}>"
        )


# ---------------------------------------------------------------------------
# Control-flow signals
# ---------------------------------------------------------------------------


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


class ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class ExitSignal(Exception):
    def __init__(self, code: int):
        self.code = code


class InterpError(DiagnosableError):
    default_code = "INTERP-FAULT"
    default_phase = "interp"

    def __init__(self, message: str, node: Optional[ast.Node] = None,
                 code: Optional[str] = None, loop: Optional[str] = None):
        loc = node.loc if node is not None else None
        if loc == (0, 0):  # synthesized nodes carry a placeholder loc
            loc = None
        if loc is not None:
            message = f"line {loc[0]}:{loc[1]}: {message}"
        super().__init__(message, code=code, loc=loc, loop=loop)


class WatchdogTimeout(InterpError):
    """A loop execution exceeded its step budget (the runtime guard
    that turns runaway loops into structured errors instead of hangs)."""

    default_code = "INTERP-WATCHDOG"

    def __init__(self, message: str, node: Optional[ast.Node] = None,
                 loop: Optional[str] = None, budget: Optional[int] = None):
        super().__init__(message, node, loop=loop)
        self.budget = budget
        self.diagnostic.data["budget"] = budget


class Frame:
    __slots__ = ("fn", "vars", "stack_allocs")

    def __init__(self, fn: Optional[ast.FunctionDef]):
        self.fn = fn
        #: VarDecl -> address
        self.vars: Dict[ast.VarDecl, int] = {}
        self.stack_allocs: List[mem.Allocation] = []


def scalar_fmt(ctype: CType) -> str:
    """struct format char for a scalar type."""
    return ctype.fmt  # IntType/FloatType/PointerType all carry .fmt


# ---------------------------------------------------------------------------
# Execution engines
# ---------------------------------------------------------------------------

#: available interpreter engines: the tree walker ("ast"), the
#: instrumented bytecode tier ("bytecode" — observers/watchdog/cost
#: identical to the walker), the bare bytecode tier
#: ("bytecode-bare" — same cost model, no observer fan-out and no
#: per-statement watchdog accounting; for baseline/verified re-runs),
#: and the native tier ("native" — lowered to C and run at hardware
#: speed on the segment; per-construct fallback to bytecode-bare).
ENGINES = ("ast", "bytecode", "bytecode-bare", "native")

_ENGINE_ALIASES = {"bare": "bytecode-bare", "walker": "ast", "tree": "ast"}

#: environment variable consulted when no explicit engine is requested
ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine request: explicit arg > $REPRO_ENGINE > "ast"."""
    name = engine or os.environ.get(ENGINE_ENV) or "ast"
    name = _ENGINE_ALIASES.get(name, name)
    if name not in ENGINES:
        raise ValueError(
            f"unknown interpreter engine {name!r}; "
            f"choose from {', '.join(ENGINES)}"
        )
    return name


class Machine:
    """Interpreter for one analyzed program.

    ``Machine(...)`` is also the engine selector: constructing it with
    ``engine="bytecode"`` (or ``$REPRO_ENGINE`` set) returns a
    :class:`repro.interp.bytecode.BytecodeMachine`, a drop-in subclass
    that executes lazily compiled per-function closures instead of
    walking the AST.  All public contracts (``observers``,
    ``redirector``, ``free_hooks``, ``loop_controllers``, watchdog,
    cost sinks) are engine-independent.
    """

    engine = "ast"

    def __new__(cls, *args, engine: Optional[str] = None, **kwargs):
        if cls is Machine:
            name = resolve_engine(engine)
            if name == "native":
                from .native import NativeMachine
                return object.__new__(NativeMachine)
            if name != "ast":
                from .bytecode import BytecodeMachine
                return object.__new__(BytecodeMachine)
        return object.__new__(cls)

    def __init__(
        self,
        program: ast.Program,
        sema: SemaResult,
        check_bounds: bool = True,
        max_steps: int = 500_000_000,
        max_loop_steps: Optional[int] = None,
        engine: Optional[str] = None,
        tracer=None,
        memory: Optional[mem.Memory] = None,
    ):
        self.program = program
        self.sema = sema
        # an injected Memory lets the multi-core backend run the machine
        # against a shared-segment buffer instead of a private bytearray
        self.memory = memory if memory is not None \
            else mem.Memory(check_bounds=check_bounds)
        self.cost = CostSink()
        self.output: List[str] = []
        self.frames: List[Frame] = []
        self.globals_frame = Frame(None)
        self.max_steps = max_steps
        self._steps = 0
        #: per-loop-execution watchdog: when set, every loop execution
        #: (including controller-driven parallel regions, which push
        #: their own budget) may run at most this many statements
        self.max_loop_steps = max_loop_steps
        #: stack of (absolute step deadline, loop label)
        self._watchdog_stack: List[tuple] = []
        self._watchdog_deadline: Optional[int] = None

        # thread context
        self.tid = 0
        self.nthreads = 1
        self._tid_decl = sema.thread_context.get("__tid")
        self._nthreads_decl = sema.thread_context.get("__nthreads")

        # hooks
        self.observers: List = []
        self.redirector: Optional[Callable[[int, int, int, bool], int]] = None
        self.loop_controllers: Dict[int, Callable] = {}
        #: called with the address passed to free() before release
        self.free_hooks: List[Callable[[int], None]] = []

        self._strlit_cache: Dict[int, int] = {}
        self._globals_ready = False

        self._eval_dispatch = {
            ast.IntLit: self._eval_intlit,
            ast.FloatLit: self._eval_floatlit,
            ast.StrLit: self._eval_strlit,
            ast.Ident: self._eval_ident,
            ast.Unary: self._eval_unary,
            ast.Binary: self._eval_binary,
            ast.Assign: self._eval_assign,
            ast.Cond: self._eval_cond,
            ast.Call: self._eval_call,
            ast.Index: self._eval_index,
            ast.Member: self._eval_member,
            ast.Cast: self._eval_cast,
            ast.SizeofType: self._eval_sizeof_type,
            ast.SizeofExpr: self._eval_sizeof_expr,
            ast.Comma: self._eval_comma,
        }
        self._stmt_dispatch = {
            ast.Block: self._exec_block,
            ast.ExprStmt: self._exec_expr_stmt,
            ast.DeclStmt: self._exec_decl_stmt,
            ast.If: self._exec_if,
            ast.While: self._exec_while,
            ast.DoWhile: self._exec_dowhile,
            ast.For: self._exec_for,
            ast.Return: self._exec_return,
            ast.Break: self._exec_break,
            ast.Continue: self._exec_continue,
        }

    # -- setup ---------------------------------------------------------------
    def setup_globals(self) -> None:
        """Allocate and initialize global variables (idempotent)."""
        if self._globals_ready:
            return
        self._globals_ready = True
        for decl in self.sema.globals:
            size = decl.ctype.size
            if size is None:
                raise InterpError(f"global {decl.name} has incomplete type", decl)
            addr = self.memory.alloc(size, mem.GLOBAL, label=decl.name, tag=decl.nid)
            self.globals_frame.vars[decl] = addr
        # initializers may reference other globals; run after all allocated
        self.frames.append(self.globals_frame)
        try:
            for decl in self.sema.globals:
                if decl.init is not None:
                    self._init_storage(
                        self.globals_frame.vars[decl], decl.ctype, decl.init
                    )
        finally:
            self.frames.pop()

    def _init_storage(self, addr: int, ctype: CType, init) -> None:
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                for i, item in enumerate(init):
                    self._init_storage(
                        addr + i * ctype.elem.size, ctype.elem, item
                    )
            elif isinstance(ctype, StructType):
                for item, field in zip(init, ctype.fields):
                    self._init_storage(addr + field.offset, field.type, item)
            else:
                raise InterpError("brace initializer on scalar")
        else:
            value = self.eval(init)
            self.store(addr, ctype, value, site=init.nid)

    # -- running ----------------------------------------------------------
    def run(self, entry: str = "main") -> int:
        """Execute ``entry`` and return its integer result."""
        self.setup_globals()
        fn = self.sema.functions.get(entry)
        if fn is None or fn.body is None:
            raise InterpError(f"no function {entry!r} to run")
        try:
            result = self.call_function(fn, [])
        except ExitSignal as sig:
            return sig.code
        return int(result) if result is not None else 0

    def call_function(self, fn: ast.FunctionDef, args: List) -> object:
        if len(self.frames) > 250:
            raise InterpError(f"call stack overflow in {fn.name}")
        self.cost.cycles += COSTS["call"]
        frame = Frame(fn)
        for param, value in zip(fn.params, args):
            addr = self._alloc_local(frame, param)
            self.store(addr, param.ctype, value, site=param.nid)
        self.frames.append(frame)
        try:
            self.exec_stmt(fn.body)
            result = None
        except ReturnSignal as sig:
            result = sig.value
        finally:
            self.frames.pop()
            self.memory.release_stack(frame.stack_allocs)
        self.cost.cycles += COSTS["ret"]
        return result

    def _alloc_local(self, frame: Frame, decl: ast.VarDecl) -> int:
        size = decl.ctype.size
        if size is None and decl.vla_length is not None:
            count = int(self.eval(decl.vla_length))
            elem = decl.ctype.elem
            size = elem.size * max(count, 1)
        if size is None:
            raise InterpError(f"local {decl.name} has incomplete type", decl)
        addr = self.memory.alloc(size, mem.STACK, label=decl.name, tag=decl.nid)
        frame.vars[decl] = addr
        record = self.memory.find(addr)
        assert record is not None
        frame.stack_allocs.append(record)
        return addr

    def _is_reg_slot(self, expr: ast.Expr) -> bool:
        """Would a native compiler keep this lvalue in a register?
        Local scalar variables, and fixed slots of local aggregates
        (constant or __tid index — the shape VLA scalar expansion
        produces), are register-allocated by any optimizing compiler."""
        if isinstance(expr, ast.Ident):
            # local scalars and small local structs (fat pointers!) are
            # register-allocated / SRoA'd by optimizing compilers
            decl = expr.decl
            return isinstance(decl, ast.VarDecl) and \
                decl.storage in ("local", "param") and \
                not isinstance(decl.ctype, ArrayType)
        if isinstance(expr, ast.Index):
            idx = expr.index
            fixed = isinstance(idx, ast.IntLit) or (
                isinstance(idx, ast.Ident)
                and (idx.decl is self._tid_decl
                     or idx.decl is self._nthreads_decl)
            )
            if not fixed:
                return False
            base = expr.base
            return isinstance(base, ast.Ident) and \
                isinstance(base.decl, ast.VarDecl) and \
                base.decl.storage in ("local", "param")
        if isinstance(expr, ast.Member) and not expr.arrow:
            return self._is_reg_slot(expr.base)
        return False

    # -- variable addressing ---------------------------------------------------
    def var_addr(self, decl: ast.VarDecl) -> int:
        for frame in (self.frames[-1], self.globals_frame):
            addr = frame.vars.get(decl)
            if addr is not None:
                return addr
        # fall back: enclosing frames are NOT searched (C has no closures);
        # a miss means the decl was never executed on this path.
        raise InterpError(f"variable {decl.name!r} has no storage here", decl)

    # -- memory access with tracing/redirection ----------------------------------
    def load(self, addr: int, ctype: CType, site: int,
             cheap: bool = False):
        if isinstance(ctype, ArrayType):
            return addr  # decay: the "value" of an array is its address
        if self.redirector is not None:
            addr = self.redirector(site, addr, ctype.size, False)
        if isinstance(ctype, StructType):
            blob = self.memory.read_bytes(addr, ctype.size)
            if cheap:
                self.cost.cycles += 2 * COSTS["reg"]
            else:
                self.cost.cycles += COSTS["load"] + \
                    ctype.size * COSTS["byte_op"]
                self.cost.loads += 1
            for obs in self.observers:
                obs.on_access(site, addr, ctype.size, False)
            return blob
        if self.memory.check_bounds:
            self.memory.check_access(addr, ctype.size)
        value = self.memory.read_scalar(addr, ctype.fmt, ctype.size)
        if cheap:
            self.cost.cycles += COSTS["reg"]
        else:
            self.cost.cycles += COSTS["load"]
            self.cost.loads += 1
        for obs in self.observers:
            obs.on_access(site, addr, ctype.size, False)
        return value

    def store(self, addr: int, ctype: CType, value, site: int,
              cheap: bool = False) -> None:
        if self.redirector is not None:
            addr = self.redirector(site, addr, ctype.size, True)
        if isinstance(ctype, StructType):
            if not isinstance(value, (bytes, bytearray)):
                raise InterpError(f"storing non-blob into struct {ctype.name}")
            self.memory.write_bytes(addr, bytes(value))
            if cheap:
                self.cost.cycles += 2 * COSTS["reg"]
            else:
                self.cost.cycles += COSTS["store"] + \
                    ctype.size * COSTS["byte_op"]
                self.cost.stores += 1
            for obs in self.observers:
                obs.on_access(site, addr, ctype.size, True)
            return
        if isinstance(ctype, ArrayType):
            raise InterpError("cannot store into array value")
        value = self._convert(value, ctype)
        if self.memory.check_bounds:
            self.memory.check_access(addr, ctype.size)
        self.memory.write_scalar(addr, ctype.fmt, value)
        if cheap:
            self.cost.cycles += COSTS["reg"]
        else:
            self.cost.cycles += COSTS["store"]
            self.cost.stores += 1
        for obs in self.observers:
            obs.on_access(site, addr, ctype.size, True)

    def _convert(self, value, ctype: CType):
        """Convert a Python value to fit ``ctype`` storage."""
        if isinstance(ctype, IntType):
            return ctype.wrap(int(value))
        if isinstance(ctype, FloatType):
            return float(value)
        if isinstance(ctype, PointerType):
            return int(value) & 0xFFFFFFFFFFFFFFFF if int(value) < 0 \
                else int(value)
        return value

    # ======================================================================
    # statements
    # ======================================================================
    def exec_stmt(self, stmt: ast.Stmt) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpError("step budget exceeded (runaway program?)", stmt)
        if self._watchdog_deadline is not None and \
                self._steps > self._watchdog_deadline:
            self._watchdog_trip(stmt)
        self._stmt_dispatch[type(stmt)](stmt)

    def _watchdog_trip(self, stmt: ast.Stmt) -> None:
        """Raise the WatchdogTimeout for the deadline that expired
        (shared by both engines' statement prologues)."""
        deadline, label, budget = self._watchdog_stack[-1]
        for entry in self._watchdog_stack:
            if entry[0] == self._watchdog_deadline:
                deadline, label, budget = entry
                break
        raise WatchdogTimeout(
            f"loop {label!r} exceeded its watchdog budget of "
            f"{budget} steps", stmt, loop=label, budget=budget,
        )

    # -- watchdog ----------------------------------------------------------
    def push_watchdog(self, budget: int, label: Optional[str]) -> None:
        """Bound the next ``budget`` statements (one loop execution)."""
        self._watchdog_stack.append((self._steps + budget, label, budget))
        self._watchdog_deadline = min(e[0] for e in self._watchdog_stack)

    def pop_watchdog(self) -> None:
        self._watchdog_stack.pop()
        self._watchdog_deadline = (
            min(e[0] for e in self._watchdog_stack)
            if self._watchdog_stack else None
        )

    def exec_loop_sequential(self, loop: ast.LoopStmt) -> None:
        """Execute a loop statement ignoring any registered controller
        (the parallel runtime's sequential-fallback path)."""
        saved = self.loop_controllers.pop(loop.nid, None)
        try:
            self.exec_stmt(loop)
        finally:
            if saved is not None:
                self.loop_controllers[loop.nid] = saved

    def _exec_block(self, stmt: ast.Block) -> None:
        for s in stmt.stmts:
            self.exec_stmt(s)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        self.eval(stmt.expr)

    def _exec_decl_stmt(self, stmt: ast.DeclStmt) -> None:
        frame = self.frames[-1]
        for decl in stmt.decls:
            addr = self._alloc_local(frame, decl)
            if decl.init is not None:
                self._init_storage(addr, decl.ctype, decl.init)

    def _exec_if(self, stmt: ast.If) -> None:
        self.cost.cycles += COSTS["alu"]
        if self._truthy(self.eval(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.els is not None:
            self.exec_stmt(stmt.els)

    def _check_controller(self, stmt: ast.LoopStmt) -> bool:
        controller = self.loop_controllers.get(stmt.nid)
        if controller is not None:
            controller(self, stmt)
            return True
        return False

    def _guarded_loop(self, stmt: ast.LoopStmt, body) -> None:
        """Run a loop body-driver under the per-loop watchdog."""
        if self.max_loop_steps is None:
            body(stmt)
            return
        self.push_watchdog(self.max_loop_steps, stmt.label)
        try:
            body(stmt)
        finally:
            self.pop_watchdog()

    def _exec_while(self, stmt: ast.While) -> None:
        if self._check_controller(stmt):
            return
        self._guarded_loop(stmt, self._loop_while)

    def _loop_while(self, stmt: ast.While) -> None:
        while True:
            self.cost.cycles += COSTS["alu"]
            if not self._truthy(self.eval(stmt.cond)):
                break
            try:
                self.exec_stmt(stmt.body)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _exec_dowhile(self, stmt: ast.DoWhile) -> None:
        if self._check_controller(stmt):
            return
        self._guarded_loop(stmt, self._loop_dowhile)

    def _loop_dowhile(self, stmt: ast.DoWhile) -> None:
        while True:
            try:
                self.exec_stmt(stmt.body)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            self.cost.cycles += COSTS["alu"]
            if not self._truthy(self.eval(stmt.cond)):
                break

    def _exec_for(self, stmt: ast.For) -> None:
        if self._check_controller(stmt):
            return
        self._guarded_loop(stmt, self._loop_for)

    def _loop_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.exec_stmt(stmt.init)
        while True:
            if stmt.cond is not None:
                self.cost.cycles += COSTS["alu"]
                if not self._truthy(self.eval(stmt.cond)):
                    break
            try:
                self.exec_stmt(stmt.body)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if stmt.step is not None:
                self.eval(stmt.step)

    def _exec_return(self, stmt: ast.Return) -> None:
        value = self.eval(stmt.expr) if stmt.expr is not None else None
        raise ReturnSignal(value)

    def _exec_break(self, stmt: ast.Break) -> None:
        raise BreakSignal()

    def _exec_continue(self, stmt: ast.Continue) -> None:
        raise ContinueSignal()

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)

    # ======================================================================
    # expressions
    # ======================================================================
    def eval(self, expr: ast.Expr):
        self.cost.instructions += 1
        return self._eval_dispatch[type(expr)](expr)

    def addr_of(self, expr: ast.Expr) -> int:
        """Evaluate an lvalue expression to an address."""
        if isinstance(expr, ast.Ident):
            decl = expr.decl
            if decl is self._tid_decl or decl is self._nthreads_decl:
                raise InterpError("thread context variable is not addressable")
            assert isinstance(decl, ast.VarDecl)
            return self.var_addr(decl)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return int(self.eval(expr.operand))
        if isinstance(expr, ast.Index):
            base = int(self.eval(expr.base))  # array decays to address
            index = int(self.eval(expr.index))
            elem = expr.ctype
            assert elem is not None and elem.size is not None
            # base+index*scale folds into the x86 addressing mode: free
            return base + index * elem.size
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = int(self.eval(expr.base))
                stype = expr.base.ctype.decay().pointee
            else:
                base = self.addr_of(expr.base)
                stype = expr.base.ctype
            assert isinstance(stype, StructType)
            # constant displacement folds into the addressing mode: free
            return base + stype.field(expr.name).offset
        if isinstance(expr, ast.Cast):
            # (T)lvalue as lvalue: used by transformed code for recasts
            return self.addr_of(expr.expr)
        if isinstance(expr, ast.Comma):
            self.eval(expr.left)
            return self.addr_of(expr.right)
        raise InterpError(f"not an lvalue: {expr!r}", expr)

    # -- leaves -------------------------------------------------------------
    def _eval_intlit(self, expr: ast.IntLit):
        return expr.value

    def _eval_floatlit(self, expr: ast.FloatLit):
        return expr.value

    def _eval_strlit(self, expr: ast.StrLit):
        addr = self._strlit_cache.get(expr.nid)
        if addr is None:
            data = expr.value.encode("latin-1") + b"\0"
            addr = self.memory.alloc(len(data), mem.RODATA, label="strlit")
            self.memory.write_bytes(addr, data)
            self._strlit_cache[expr.nid] = addr
        return addr

    def _eval_ident(self, expr: ast.Ident):
        decl = expr.decl
        if decl is self._tid_decl:
            return self.tid
        if decl is self._nthreads_decl:
            return self.nthreads
        if isinstance(decl, ast.FunctionDef):
            return decl  # function designator
        assert isinstance(decl, ast.VarDecl)
        addr = self.var_addr(decl)
        cheap = decl.storage in ("local", "param") and \
            not isinstance(decl.ctype, ArrayType)
        return self.load(addr, decl.ctype, site=expr.nid, cheap=cheap)

    # -- operators ------------------------------------------------------------
    def _eval_unary(self, expr: ast.Unary):
        op = expr.op
        if op == "&":
            return self.addr_of(expr.operand)
        if op == "*":
            addr = int(self.eval(expr.operand))
            pointee = expr.ctype
            assert pointee is not None
            return self.load(addr, pointee, site=expr.nid)
        if op in ("++", "--", "p++", "p--"):
            target = expr.operand
            addr = self.addr_of(target)
            ctype = target.ctype
            assert ctype is not None
            cheap = self._is_reg_slot(target)
            old = self.load(addr, ctype, site=target.nid, cheap=cheap)
            if isinstance(ctype, PointerType):
                delta = ctype.pointee.size
                if delta is None:
                    raise InterpError("arithmetic on void*", expr)
            else:
                delta = 1
            self.cost.cycles += COSTS["alu"]
            new = old + delta if op.endswith("++") else old - delta
            self.store(addr, ctype, new, site=expr.nid, cheap=cheap)
            if op.startswith("p"):
                return old
            return self._convert(new, ctype)
        value = self.eval(expr.operand)
        self.cost.cycles += COSTS["alu"]
        if op == "-":
            result = -value
            ctype = expr.ctype
            if isinstance(ctype, IntType):
                return ctype.wrap(int(result))
            return result
        if op == "!":
            return 0 if value else 1
        if op == "~":
            ctype = expr.ctype
            assert isinstance(ctype, IntType)
            return ctype.wrap(~int(value))
        raise InterpError(f"unknown unary {op}", expr)  # pragma: no cover

    def _eval_binary(self, expr: ast.Binary):
        op = expr.op
        if op == "&&":
            self.cost.cycles += COSTS["alu"]
            if not self._truthy(self.eval(expr.left)):
                return 0
            return 1 if self._truthy(self.eval(expr.right)) else 0
        if op == "||":
            self.cost.cycles += COSTS["alu"]
            if self._truthy(self.eval(expr.left)):
                return 1
            return 1 if self._truthy(self.eval(expr.right)) else 0
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return self._apply_binop(op, left, right, expr)

    def _apply_binop(self, op: str, left, right, expr: ast.Binary):
        lt = expr.left.ctype.decay()
        rt = expr.right.ctype.decay()
        # pointer arithmetic
        if isinstance(lt, PointerType) and op in ("+", "-"):
            if isinstance(rt, PointerType):  # p - q
                esize = lt.pointee.size or 1
                self.cost.cycles += COSTS["ptrdiff"]
                return (int(left) - int(right)) // esize
            esize = lt.pointee.size
            if esize is None:
                raise InterpError("arithmetic on void*", expr)
            self.cost.cycles += COSTS["lea"]
            offset = int(right) * esize
            return int(left) + offset if op == "+" else int(left) - offset
        if isinstance(rt, PointerType) and op == "+":
            esize = rt.pointee.size
            if esize is None:
                raise InterpError("arithmetic on void*", expr)
            self.cost.cycles += COSTS["lea"]
            return int(right) + int(left) * esize
        # comparisons
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self.cost.cycles += COSTS["alu"]
            table = {
                "==": left == right, "!=": left != right,
                "<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
            }
            return 1 if table[op] else 0
        result_t = expr.ctype
        if isinstance(result_t, FloatType):
            lf, rf = float(left), float(right)
            if op == "+":
                self.cost.cycles += COSTS["falu"]
                return result_t.wrap(lf + rf)
            if op == "-":
                self.cost.cycles += COSTS["falu"]
                return result_t.wrap(lf - rf)
            if op == "*":
                self.cost.cycles += COSTS["falu"]
                return result_t.wrap(lf * rf)
            if op == "/":
                self.cost.cycles += COSTS["fdiv"]
                if rf == 0.0:
                    raise InterpError("float division by zero", expr)
                return result_t.wrap(lf / rf)
            raise InterpError(f"float op {op}", expr)  # pragma: no cover
        assert isinstance(result_t, IntType), (op, result_t)
        li, ri = int(left), int(right)
        if op == "+":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li + ri)
        if op == "-":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li - ri)
        if op == "*":
            self.cost.cycles += COSTS["imul"]
            return result_t.wrap(li * ri)
        if op in ("/", "%"):
            self.cost.cycles += COSTS["idiv"]
            if ri == 0:
                raise InterpError("integer division by zero", expr)
            q = abs(li) // abs(ri)
            if (li < 0) != (ri < 0):
                q = -q
            if op == "/":
                return result_t.wrap(q)
            return result_t.wrap(li - q * ri)  # C: sign follows dividend
        if op == "<<":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li << (ri & 63))
        if op == ">>":
            self.cost.cycles += COSTS["alu"]
            lt0 = expr.left.ctype
            if isinstance(lt0, IntType) and not lt0.signed:
                li &= (1 << (8 * lt0.size)) - 1
            return result_t.wrap(li >> (ri & 63))
        if op == "&":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li & ri)
        if op == "|":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li | ri)
        if op == "^":
            self.cost.cycles += COSTS["alu"]
            return result_t.wrap(li ^ ri)
        raise InterpError(f"unknown binop {op}", expr)  # pragma: no cover

    def _eval_assign(self, expr: ast.Assign):
        target_t = expr.target.ctype
        assert target_t is not None
        addr = self.addr_of(expr.target)
        cheap = self._is_reg_slot(expr.target)
        if expr.op == "=":
            value = self.eval(expr.value)
            self.store(addr, target_t, value, site=expr.nid, cheap=cheap)
            return value if not isinstance(target_t, StructType) else value
        # compound assignment: load-modify-store
        old = self.load(addr, target_t, site=expr.target.nid, cheap=cheap)
        rhs = self.eval(expr.value)
        base_op = expr.op[:-1]
        if isinstance(target_t, PointerType):
            esize = target_t.pointee.size
            if esize is None:
                raise InterpError("arithmetic on void*", expr)
            self.cost.cycles += COSTS["lea"]
            new = old + int(rhs) * esize if base_op == "+" else \
                old - int(rhs) * esize
        else:
            fake = ast.Binary(base_op, expr.target, expr.value)
            fake.ctype = target_t if isinstance(target_t, FloatType) else \
                expr.target.ctype
            if isinstance(fake.ctype, IntType):
                # compound assign computes in the common type then narrows
                pass
            new = self._apply_binop(base_op, old, rhs, fake)
        self.store(addr, target_t, new, site=expr.nid, cheap=cheap)
        if isinstance(target_t, StructType):
            return new
        return self._convert(new, target_t)

    def _eval_cond(self, expr: ast.Cond):
        self.cost.cycles += COSTS["alu"]
        if self._truthy(self.eval(expr.cond)):
            return self.eval(expr.then)
        return self.eval(expr.els)

    def _eval_call(self, expr: ast.Call):
        name = expr.callee_name
        if name is not None and name not in self.sema.functions:
            impl = BUILTIN_IMPLS.get(name)
            if impl is None:
                raise InterpError(f"unknown function {name!r}", expr)
            args = [self.eval(a) for a in expr.args]
            self.cost.cycles += COSTS["builtin"]
            return impl(self, args, expr)
        func = self.sema.functions.get(name) if name else None
        if func is None:
            value = self.eval(expr.func)
            if not isinstance(value, ast.FunctionDef):
                raise InterpError("call of non-function value", expr)
            func = value
        args = [self.eval(a) for a in expr.args]
        return self.call_function(func, args)

    def _eval_index(self, expr: ast.Index):
        addr = self.addr_of(expr)
        ctype = expr.ctype
        assert ctype is not None
        return self.load(addr, ctype, site=expr.nid,
                         cheap=self._is_reg_slot(expr))

    def _eval_member(self, expr: ast.Member):
        addr = self.addr_of(expr)
        ctype = expr.ctype
        assert ctype is not None
        return self.load(addr, ctype, site=expr.nid,
                         cheap=self._is_reg_slot(expr))

    def _eval_cast(self, expr: ast.Cast):
        value = self.eval(expr.expr)
        to = expr.to_type
        if isinstance(to, IntType):
            return to.wrap(int(value))
        if isinstance(to, FloatType):
            return to.wrap(float(value))
        if isinstance(to, PointerType):
            return int(value)
        return value  # void cast, struct cast passthrough

    def _eval_sizeof_type(self, expr: ast.SizeofType):
        return expr.of_type.size

    def _eval_sizeof_expr(self, expr: ast.SizeofExpr):
        ctype = expr.expr.ctype
        assert ctype is not None and ctype.size is not None
        return ctype.size

    def _eval_comma(self, expr: ast.Comma):
        self.eval(expr.left)
        return self.eval(expr.right)
