"""Execution substrate: byte-addressable memory and the MiniC machine."""

from .machine import (
    COSTS, ENGINE_ENV, ENGINES, BreakSignal, ContinueSignal, CostSink,
    ExitSignal, Frame, InterpError, Machine, ReturnSignal, WatchdogTimeout,
    resolve_engine,
)
from .memory import Allocation, Memory, MemoryError_, scalar_codec
from .trace import AccessEvent, FootprintObserver, RaceChecker, RecordingObserver


def run_source(source: str, entry: str = "main", engine=None):
    """Parse, analyze and run MiniC source; returns the machine
    (inspect ``.output``, ``.cost``, ``.memory``)."""
    from ..frontend import parse_and_analyze

    program, sema = parse_and_analyze(source)
    machine = Machine(program, sema, engine=engine)
    machine.exit_code = machine.run(entry)
    return machine


__all__ = [
    "Machine", "Memory", "MemoryError_", "Allocation", "CostSink", "COSTS",
    "ENGINES", "ENGINE_ENV", "resolve_engine", "scalar_codec",
    "InterpError", "BreakSignal", "ContinueSignal", "ReturnSignal",
    "ExitSignal", "Frame", "WatchdogTimeout", "RecordingObserver", "FootprintObserver",
    "RaceChecker", "AccessEvent", "run_source",
]
