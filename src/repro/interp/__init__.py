"""Execution substrate: byte-addressable memory and the MiniC machine."""

from .machine import (
    COSTS, BreakSignal, ContinueSignal, CostSink, ExitSignal, Frame,
    InterpError, Machine, ReturnSignal, WatchdogTimeout,
)
from .memory import Allocation, Memory, MemoryError_
from .trace import AccessEvent, FootprintObserver, RaceChecker, RecordingObserver


def run_source(source: str, entry: str = "main"):
    """Parse, analyze and run MiniC source; returns the machine
    (inspect ``.output``, ``.cost``, ``.memory``)."""
    from ..frontend import parse_and_analyze

    program, sema = parse_and_analyze(source)
    machine = Machine(program, sema)
    machine.exit_code = machine.run(entry)
    return machine


__all__ = [
    "Machine", "Memory", "MemoryError_", "Allocation", "CostSink", "COSTS",
    "InterpError", "BreakSignal", "ContinueSignal", "ReturnSignal",
    "ExitSignal", "Frame", "WatchdogTimeout", "RecordingObserver", "FootprintObserver",
    "RaceChecker", "AccessEvent", "run_source",
]
