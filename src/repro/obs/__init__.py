"""repro.obs — observability for the expansion toolchain.

A span-based :class:`Tracer` records nested toolchain phases (wall
clock) and a per-virtual-thread runtime timeline (simulated cycles),
plus a :class:`MetricsRegistry` of the counters the paper reports.
Exporters render Chrome trace-event JSON (:func:`write_chrome_trace`)
and a human summary (:func:`trace_summary`).

Tracing is opt-in and near-zero cost when off: subsystems hold the
falsy :data:`NULL_TRACER` singleton and guard hot-path emission with
``if tracer:``.
"""

from .tracer import (
    MetricsRegistry, NULL_TRACER, NullTracer, RuntimeEvent, Span, Tracer,
    WorkerEvent, ensure_tracer,
)
from .export import (
    COMPILE_PID, RUNTIME_PID, SCHEMA_VERSION, WORKER_PID, chrome_trace,
    trace_summary, write_chrome_trace,
)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "ensure_tracer",
    "Span", "RuntimeEvent", "WorkerEvent", "MetricsRegistry",
    "chrome_trace", "write_chrome_trace", "trace_summary",
    "COMPILE_PID", "RUNTIME_PID", "WORKER_PID", "SCHEMA_VERSION",
]
