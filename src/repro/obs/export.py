"""Trace exporters: Chrome trace-event JSON and a human summary table.

The Chrome format (``chrome://tracing`` / Perfetto "JSON object
format") gets three synthetic processes so the clock domains never mix:

* pid 1 — toolchain phase spans, ``ts`` in wall-clock microseconds;
* pid 2 — simulated runtime events, ``ts`` in modeled cycles (one
  "microsecond" per cycle as far as the viewer is concerned), ``tid``
  is the virtual thread;
* pid 3 — multi-core backend worker processes, ``ts`` in wall-clock
  microseconds (same domain as pid 1), ``tid`` is the worker id.
  Only present when the process backend ran.

Metrics are exported both as Chrome counter events (``ph: "C"``) and
verbatim under ``otherData.metrics`` for programmatic consumers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

COMPILE_PID = 1
RUNTIME_PID = 2
WORKER_PID = 3
SCHEMA_VERSION = 1


def chrome_trace(tracer) -> Dict[str, Any]:
    """The full trace as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": COMPILE_PID, "tid": 0,
         "ts": 0, "args": {"name": "toolchain (wall-clock us)"}},
        {"ph": "M", "name": "process_name", "pid": RUNTIME_PID, "tid": 0,
         "ts": 0, "args": {"name": "simulated runtime (cycles)"}},
    ]
    worker_events = list(getattr(tracer, "worker_events", ()) or ())
    if worker_events:
        events.append(
            {"ph": "M", "name": "process_name", "pid": WORKER_PID,
             "tid": 0, "ts": 0,
             "args": {"name": "mc workers (wall-clock us)"}})
    origin = min(
        (s.start_us for s in tracer.spans), default=0.0)
    if worker_events:
        origin = min(origin,
                     min(w.ts_us for w in worker_events))
    for span in tracer.spans:
        events.append({
            "name": span.name, "cat": span.cat, "ph": "X",
            "ts": span.start_us - origin,
            "dur": span.dur_us if span.dur_us is not None else 0.0,
            "pid": COMPILE_PID, "tid": 0, "args": dict(span.args),
        })
    for ev in tracer.events:
        record: Dict[str, Any] = {
            "name": ev.name, "cat": "runtime",
            "ts": ev.ts, "pid": RUNTIME_PID, "tid": ev.tid,
            "args": dict(ev.args),
        }
        if ev.dur is None:
            record["ph"] = "i"
            record["s"] = "t"       # thread-scoped instant
        else:
            record["ph"] = "X"
            record["dur"] = ev.dur
        events.append(record)
    for wev in worker_events:
        events.append({
            "name": wev.name, "cat": "worker", "ph": "X",
            "ts": wev.ts_us - origin, "dur": wev.dur_us,
            "pid": WORKER_PID, "tid": wev.worker,
            "args": dict(wev.args),
        })
    metrics = tracer.metrics.as_dict()
    for name, value in metrics.items():
        if isinstance(value, (int, float)):
            # counter track
            events.append({
                "name": name, "ph": "C", "ts": 0,
                "pid": COMPILE_PID, "tid": 0, "args": {"value": value},
            })
        else:
            # label metrics (e.g. interp.engine) as instant markers —
            # Chrome counter tracks only accept numbers
            events.append({
                "name": name, "ph": "i", "s": "p", "ts": 0,
                "pid": COMPILE_PID, "tid": 0, "args": {"value": value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "schema_version": SCHEMA_VERSION,
            "metrics": metrics,
        },
    }


def write_chrome_trace(tracer, path: str) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# Human-readable summary
# ---------------------------------------------------------------------------

def _table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row):
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def trace_summary(tracer) -> str:
    """Aggregated phase/event/metric tables (the ``--trace-summary``
    rendering)."""
    parts: List[str] = []

    # phases, aggregated by name (self time = total minus child time)
    totals: Dict[str, float] = {}
    selfs: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    order: List[str] = []
    for span in tracer.spans:
        dur = span.dur_us or 0.0
        if span.name not in totals:
            order.append(span.name)
        totals[span.name] = totals.get(span.name, 0.0) + dur
        selfs[span.name] = selfs.get(span.name, 0.0) + dur
        counts[span.name] = counts.get(span.name, 0) + 1
        if span.parent is not None:
            selfs[span.parent.name] = selfs.get(span.parent.name, 0.0) - dur
    if order:
        rows = [
            [name, counts[name], f"{totals[name]:,.0f}",
             f"{max(selfs[name], 0.0):,.0f}"]
            for name in order
        ]
        parts.append("Phases (wall-clock us)\n" + _table(
            ["phase", "count", "total", "self"], rows))

    # runtime events, aggregated by name
    ev_counts: Dict[str, int] = {}
    ev_cycles: Dict[str, float] = {}
    ev_order: List[str] = []
    for ev in tracer.events:
        if ev.name not in ev_counts:
            ev_order.append(ev.name)
        ev_counts[ev.name] = ev_counts.get(ev.name, 0) + 1
        ev_cycles[ev.name] = ev_cycles.get(ev.name, 0.0) + (ev.dur or 0.0)
    if ev_order:
        rows = [
            [name, ev_counts[name], f"{ev_cycles[name]:,.0f}"]
            for name in ev_order
        ]
        parts.append("Runtime events (simulated cycles)\n" + _table(
            ["event", "count", "cycles"], rows))

    # worker-process spans (process backend), aggregated by name
    w_counts: Dict[str, int] = {}
    w_us: Dict[str, float] = {}
    w_order: List[str] = []
    for wev in getattr(tracer, "worker_events", ()) or ():
        if wev.name not in w_counts:
            w_order.append(wev.name)
        w_counts[wev.name] = w_counts.get(wev.name, 0) + 1
        w_us[wev.name] = w_us.get(wev.name, 0.0) + wev.dur_us
    if w_order:
        rows = [
            [name, w_counts[name], f"{w_us[name]:,.0f}"]
            for name in w_order
        ]
        parts.append("Worker spans (wall-clock us)\n" + _table(
            ["span", "count", "us"], rows))

    # supervision counters (process backend fault tolerance), pulled
    # into their own table so restart/retry activity is visible at a
    # glance even among many metrics
    metrics_all = tracer.metrics.as_dict()
    sup_rows = [
        [label, f"{metrics_all[key]:,g}"]
        for label, key in (
            ("worker restarts", "runtime.mc_restart"),
            ("task retries", "runtime.mc_retry"),
            ("degradations", "runtime.mc_degrade"),
            ("sync-token re-issues", "runtime.mc_token_reissues"),
            ("spin-wait backoffs", "runtime.mc_spin_backoffs"),
        ) if key in metrics_all
    ]
    if sup_rows:
        parts.append("Supervision (process backend)\n" + _table(
            ["event", "count"], sup_rows))

    # stage-cache hit/miss counters (the staged pipeline / serve
    # daemon), folded into one per-stage table
    cache_stages: Dict[str, Dict[str, float]] = {}
    for key, value in metrics_all.items():
        if not key.startswith("cache.") or not isinstance(
                value, (int, float)):
            continue
        parts_key = key.split(".")
        if len(parts_key) != 3 or parts_key[2] not in ("hit", "miss"):
            continue
        cache_stages.setdefault(parts_key[1], {})[parts_key[2]] = value
    if cache_stages:
        rows = []
        for stage, hm in cache_stages.items():
            hit = hm.get("hit", 0)
            miss = hm.get("miss", 0)
            total = hit + miss
            rate = f"{hit / total:.0%}" if total else "-"
            rows.append([stage, f"{hit:,g}", f"{miss:,g}", rate])
        parts.append("Stage cache\n" + _table(
            ["stage", "hits", "misses", "hit rate"], rows))

    metrics = metrics_all
    if metrics:
        # values are usually counters, but some are labels (e.g. the
        # interp.engine name)
        rows = [
            [name,
             f"{value:,g}" if isinstance(value, (int, float)) else str(value)]
            for name, value in metrics.items()
        ]
        parts.append("Metrics\n" + _table(["metric", "value"], rows))

    return "\n\n".join(parts) if parts else "(empty trace)"
