"""Span tracer + metrics registry for the expansion toolchain.

Two clock domains, deliberately kept apart (DESIGN.md §10):

* **Phase spans** — wall-clock (microseconds) nesting spans around the
  toolchain stages (parse → sema → profile → DDG → classify → promote →
  expand → redirect → optimize → run).  Recorded with strict stack
  discipline, so every span knows its parent and nesting depth.
* **Runtime events** — *simulated-cycle* timestamps from the
  :class:`~repro.interp.machine.Machine` cost model: iteration
  start/end, DOACROSS token waits/posts, watchdog trips, snapshot
  rollbacks, quarantine fallbacks.  One event per virtual thread
  occurrence, timestamped on the program's modeled clock.

A :class:`MetricsRegistry` rides along for the scalar counters the
paper reports (redirected accesses, span stores inserted/eliminated,
fat-pointer promotions, expansion bytes, races detected/recovered).

When tracing is off, every subsystem holds the :data:`NULL_TRACER`
singleton instead of ``None``: it is *falsy* (``if tracer:`` guards the
per-iteration hot paths) and every method is a no-op, so the disabled
cost is one attribute load and a branch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional


def _wall_us() -> float:
    """Default phase clock: monotonic microseconds."""
    return time.perf_counter_ns() / 1000.0


class Span:
    """One completed (or in-flight) phase span on the wall clock."""

    __slots__ = ("name", "cat", "start_us", "dur_us", "args", "parent",
                 "depth")

    def __init__(self, name: str, cat: str, start_us: float,
                 parent: Optional["Span"], depth: int,
                 args: Dict[str, Any]):
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.dur_us: Optional[float] = None   # None while open
        self.args = args
        self.parent = parent
        self.depth = depth

    @property
    def end_us(self) -> Optional[float]:
        return None if self.dur_us is None else self.start_us + self.dur_us

    def __repr__(self) -> str:
        dur = "open" if self.dur_us is None else f"{self.dur_us:.1f}us"
        return f"<Span {self.name!r} depth={self.depth} {dur}>"


class RuntimeEvent:
    """One simulated-runtime occurrence on a virtual thread.

    ``ts``/``dur`` are modeled cycles (the Machine cost model), not
    wall time; ``dur is None`` marks an instant event.
    """

    __slots__ = ("name", "tid", "ts", "dur", "args")

    def __init__(self, name: str, tid: int, ts: float,
                 dur: Optional[float], args: Dict[str, Any]):
        self.name = name
        self.tid = tid
        self.ts = ts
        self.dur = dur
        self.args = args

    def __repr__(self) -> str:
        return f"<RuntimeEvent {self.name!r} tid={self.tid} ts={self.ts:.0f}>"


class WorkerEvent:
    """One wall-clock span observed on a multi-core backend worker
    process (a DOALL chunk or a DOACROSS strip).  Unlike
    :class:`RuntimeEvent`, timestamps here are real microseconds —
    worker spans live in the phase clock domain, on their own process
    row in the Chrome export."""

    __slots__ = ("name", "worker", "ts_us", "dur_us", "args")

    def __init__(self, name: str, worker: int, ts_us: float,
                 dur_us: float, args: Dict[str, Any]):
        self.name = name
        self.worker = worker
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.args = args

    def __repr__(self) -> str:
        return (
            f"<WorkerEvent {self.name!r} worker={self.worker} "
            f"dur={self.dur_us:.0f}us>"
        )


class MetricsRegistry:
    """Named scalar counters/gauges populated across the toolchain."""

    def __init__(self):
        self._values: Dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self._values[name] = self._values.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        self._values[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, float]:
        return dict(sorted(self._values.items()))

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self):
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._values)} metrics>"


class Tracer:
    """Structured trace of one toolchain run (phases + runtime events +
    metrics).  See :mod:`repro.obs` for the export formats."""

    enabled = True

    def __init__(self, clock=None):
        #: injectable for deterministic tests
        self._clock = clock or _wall_us
        #: completed-or-open spans in *start* order
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        #: simulated-cycle runtime timeline
        self.events: List[RuntimeEvent] = []
        #: wall-clock worker-process timeline (process backend)
        self.worker_events: List[WorkerEvent] = []
        self.metrics = MetricsRegistry()

    def __bool__(self) -> bool:
        return True

    # -- phase spans (wall clock) -----------------------------------------
    def begin(self, name: str, cat: str = "compile", **args) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(name, cat, self._clock(), parent, len(self._stack),
                    args)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None) -> None:
        """Close ``span`` (default: the innermost open one).  Closing a
        non-innermost span closes everything nested inside it too, so
        the stack discipline survives exceptional exits."""
        if not self._stack:
            return
        target = span if span is not None else self._stack[-1]
        if target not in self._stack:
            return  # already closed (cascade or double end)
        while self._stack:
            top = self._stack.pop()
            top.dur_us = self._clock() - top.start_us
            if top is target:
                return

    @contextmanager
    def phase(self, name: str, cat: str = "compile", **args):
        span = self.begin(name, cat, **args)
        try:
            yield span
        finally:
            self.end(span)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def instant(self, name: str, cat: str = "compile", **args) -> None:
        """Zero-duration wall-clock marker at the current nesting."""
        span = Span(name, cat, self._clock(),
                    self.current, len(self._stack), args)
        span.dur_us = 0.0
        self.spans.append(span)

    # -- runtime timeline (simulated cycles) ------------------------------
    def event(self, name: str, tid: int, ts: float,
              dur: Optional[float] = None, **args) -> None:
        self.events.append(RuntimeEvent(name, tid, ts, dur, args))

    # -- worker timeline (wall clock, process backend) --------------------
    def worker_event(self, name: str, worker: int, ts_us: float,
                     dur_us: float, **args) -> None:
        self.worker_events.append(
            WorkerEvent(name, worker, ts_us, dur_us, args))

    # -- introspection -----------------------------------------------------
    def open_spans(self) -> List[Span]:
        return list(self._stack)


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullContext()


class _NullMetrics:
    """No-op metrics sink for the disabled tracer."""

    __slots__ = ()

    def inc(self, name, value=1):
        pass

    def set(self, name, value):
        pass

    def get(self, name, default=0):
        return default

    def as_dict(self):
        return {}

    def __contains__(self, name):
        return False

    def __iter__(self):
        return iter(())

    def __len__(self):
        return 0


class NullTracer:
    """Disabled tracer: falsy, every method a no-op, shared singleton.

    Hot paths guard per-iteration emission with ``if tracer:``; coarse
    once-per-stage calls may go through unconditionally — each costs
    one no-op method call.
    """

    enabled = False
    spans = ()
    events = ()
    worker_events = ()
    metrics = _NullMetrics()

    def __bool__(self) -> bool:
        return False

    def begin(self, name, cat="compile", **args):
        return None

    def end(self, span=None):
        pass

    def phase(self, name, cat="compile", **args):
        return _NULL_CTX

    @property
    def current(self):
        return None

    def instant(self, name, cat="compile", **args):
        pass

    def event(self, name, tid, ts, dur=None, **args):
        pass

    def worker_event(self, name, worker, ts_us, dur_us, **args):
        pass

    def open_spans(self):
        return []


#: process-wide disabled tracer; subsystems default to this, never None
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[object]):
    """Normalize an optional tracer argument (None → disabled)."""
    return tracer if tracer is not None else NULL_TRACER
